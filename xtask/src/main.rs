//! `cargo xtask lint` — offline, lexical enforcement of repo-wide
//! source invariants that the compiler cannot express:
//!
//! 1. **Legacy-oracle containment** — `canonical_of_flat_legacy` is the
//!    §3 reference implementation kept only as a differential-testing
//!    oracle; production code must go through the interning nest
//!    kernel. Allowed in its defining module, the crate re-export,
//!    benches, and tests.
//! 2. **No `unwrap()` in library code** — library crates must surface
//!    errors or state invariants; bare `unwrap()` does neither.
//! 3. **`expect()` messages must state the invariant** — a panic
//!    message like `"8 bytes"` explains nothing at 3 a.m. Messages
//!    need ≥ 2 words and ≥ 8 characters, or an explicit
//!    `// invariant:` waiver comment on the same or preceding line.
//! 4. **`CanonicalRelation` containment** — the single-store canonical
//!    representation is `nf2-core`'s kernel type; other crates consume
//!    the sharded store and must not reach for it directly.
//! 5. **Probe-counter discipline** — the streaming layer's shared
//!    statistics counters (`TopKStats`) are plain tallies, not
//!    synchronization points: every atomic memory ordering in
//!    `stream.rs` must be `Relaxed`.
//! 6. **No `static mut`** — mutable globals are undefined-behavior bait
//!    and invisible to the MVCC protocol; shared state goes through the
//!    engine's interior-mutability types.
//! 7. **Ordering containment** — `nf2-core::mvcc` is the one module
//!    whose correctness may hang on non-`Relaxed` atomic orderings
//!    (its docs say so). Everywhere else, counters are tallies: any
//!    `SeqCst`/`AcqRel`/`Acquire`/`Release` outside `mvcc.rs` is a
//!    finding — synchronization belongs behind the version cell, not
//!    sprinkled through the codebase.
//! 8. **Clock containment** — `std::time::Instant` lives in `nf2-obs`
//!    (whose `Stopwatch` is the sanctioned monotonic clock, honoring
//!    the metrics kill switch pattern) and the bench/measurement crate.
//!    Everywhere else, raw clock reads bypass the observability layer
//!    and its disabled-path guarantees — time through `nf2-obs`.
//! 9. **Lane-lock containment** — the per-shard writer lanes and their
//!    deadlock-freedom discipline (ascending shard order, ≤ 1 lane per
//!    point op) live entirely in `nf2-storage`'s table module. Any
//!    `lock_lane`/`lock_lanes`/`lock_all_lanes` call outside
//!    `crates/storage/src/table.rs` spreads lock-ordering obligations
//!    the checker cannot see — route writes through `NfTable`'s public
//!    methods instead.
//!
//! The checks are purely lexical (comments, string literals, and
//! `#[cfg(test)]` items are blanked before matching) so the tool runs
//! with no dependencies and no network. Exit status 1 on any finding.

use std::fmt;
use std::path::{Path, PathBuf};

/// Library crates subject to the unwrap/expect rules. `crates/bench`
/// is a measurement harness (panicking on malformed fixtures is the
/// right behavior there) and is exempt, like tests and benches.
const LIBRARY_CRATES: &[&str] = &[
    "crates/core",
    "crates/algebra",
    "crates/storage",
    "crates/query",
    "crates/deps",
    "crates/workload",
];

/// Paths (relative, `/`-separated) allowed to name the legacy oracle.
const LEGACY_ALLOWED: &[&str] = &["crates/core/src/nest.rs", "crates/core/src/lib.rs"];

/// Atomic memory orderings that must not appear in the streaming layer
/// (`std::cmp::Ordering` has no variants by these names, so matching
/// the bare tokens is safe).
const NON_RELAXED_ORDERINGS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release"];

/// Per-shard writer-lane lock tokens confined to the storage write
/// module (`lock_lane` also matches `lock_lanes` as a substring).
const LANE_LOCK_TOKENS: &[&str] = &["lock_lane", "lock_all_lanes"];

#[derive(Debug)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = repo_root();
            let findings = lint(&root);
            if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                std::process::exit(1);
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask lint{}",
                other
                    .map(|o| format!(" (unknown task {o:?})"))
                    .unwrap_or_default()
            );
            std::process::exit(2);
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `<root>/xtask`.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Runs every rule over the workspace and returns all findings.
fn lint(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    for path in &files {
        let Ok(raw) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let code = blank_test_items(&blank_comments_and_strings(&raw));
        check_file(&rel, path, &raw, &code, &mut findings);
    }
    findings
}

/// Recursively collects `.rs` files, skipping build artifacts.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True for paths the unwrap/expect/oracle rules treat as test-like.
fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

fn in_library_crate(rel: &str) -> bool {
    LIBRARY_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("{c}/src/")))
}

fn check_file(rel: &str, path: &Path, raw: &str, code: &str, findings: &mut Vec<Finding>) {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let push = |findings: &mut Vec<Finding>, line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: PathBuf::from(rel),
            line,
            rule,
            message,
        });
        let _ = path;
    };

    for (idx, line) in code.lines().enumerate() {
        let lineno = idx + 1;
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");

        // Rule 1: legacy oracle containment.
        if line.contains("canonical_of_flat_legacy")
            && !is_test_path(rel)
            && !rel.starts_with("crates/bench/")
            && !LEGACY_ALLOWED.contains(&rel)
        {
            push(
                findings,
                lineno,
                "legacy-oracle",
                "canonical_of_flat_legacy is a differential-testing oracle; \
                 use the nest kernel in production code"
                    .into(),
            );
        }

        // Rule 4: CanonicalRelation containment.
        if line.contains("CanonicalRelation")
            && !is_test_path(rel)
            && !rel.starts_with("crates/core/")
            && !rel.starts_with("crates/bench/")
        {
            push(
                findings,
                lineno,
                "canonical-containment",
                "CanonicalRelation is nf2-core's kernel type; consume the sharded \
                 store instead"
                    .into(),
            );
        }

        // Rules 2+3: unwrap/expect discipline in library crates.
        if in_library_crate(rel) && !is_test_path(rel) {
            if line.contains(".unwrap()") {
                push(
                    findings,
                    lineno,
                    "no-unwrap",
                    "unwrap() in library code: return an error or use \
                     expect() with the invariant that holds"
                        .into(),
                );
            }
            // `.expect("` distinguishes Option/Result::expect from
            // same-named parser methods taking non-string arguments.
            if line.contains(".expect(") && raw_line.contains(".expect(\"") {
                let waived = raw_line.contains("// invariant:")
                    || idx
                        .checked_sub(1)
                        .and_then(|p| raw_lines.get(p))
                        .is_some_and(|l| l.contains("// invariant:"));
                if !waived && !expect_message_states_invariant(raw_line) {
                    push(
                        findings,
                        lineno,
                        "expect-invariant",
                        "expect() message does not state an invariant \
                         (needs ≥ 2 words and ≥ 8 chars, or a `// invariant:` waiver)"
                            .into(),
                    );
                }
            }
        }

        // Rule 5: probe-counter discipline in the streaming layer.
        if rel == "crates/algebra/src/stream.rs" {
            for ord in NON_RELAXED_ORDERINGS {
                if line.contains(ord) {
                    push(
                        findings,
                        lineno,
                        "probe-counter-relaxed",
                        format!(
                            "atomic ordering {ord} in stream.rs: shared stats \
                             counters are tallies, not synchronization — use Relaxed"
                        ),
                    );
                }
            }
        }

        // Rule 6: no mutable globals, anywhere.
        if line.contains("static mut ") {
            push(
                findings,
                lineno,
                "no-static-mut",
                "static mut is UB-bait and invisible to the MVCC protocol; \
                 use the engine's interior-mutability types"
                    .into(),
            );
        }

        // Rule 8: Instant is confined to nf2-obs (the Stopwatch home)
        // and the bench crate. The token match catches both the `use`
        // and any fully-qualified call.
        if line.contains("Instant")
            && !rel.starts_with("crates/obs/")
            && !rel.starts_with("crates/bench/")
        {
            push(
                findings,
                lineno,
                "clock-containment",
                "std::time::Instant outside nf2-obs/bench: raw clock reads \
                 bypass the observability layer — use nf2_obs::Stopwatch"
                    .into(),
            );
        }

        // Rule 9: the per-shard lane locks (and their ordering
        // discipline) are private to the storage write module. The
        // token match catches definitions and calls alike — table.rs
        // is the one file allowed to contain either.
        if rel != "crates/storage/src/table.rs" {
            for token in LANE_LOCK_TOKENS {
                if line.contains(token) {
                    push(
                        findings,
                        lineno,
                        "lane-lock-containment",
                        format!(
                            "{token} outside crates/storage/src/table.rs: per-shard \
                             lane locking (ascending-order discipline) is confined \
                             to the storage write module"
                        ),
                    );
                }
            }
        }

        // Rule 7: non-Relaxed orderings live in nf2-core::mvcc only
        // (stream.rs already has the more specific rule 5 above).
        if rel != "crates/core/src/mvcc.rs" && rel != "crates/algebra/src/stream.rs" {
            for ord in NON_RELAXED_ORDERINGS {
                if line.contains(ord) {
                    push(
                        findings,
                        lineno,
                        "ordering-containment",
                        format!(
                            "atomic ordering {ord} outside nf2-core::mvcc: \
                             counters are Relaxed tallies; cross-thread \
                             synchronization belongs in the version cell"
                        ),
                    );
                }
            }
        }
    }
}

/// Whether an `.expect("…")` message on this raw line is descriptive:
/// at least two words and eight characters. (Multi-line messages pass
/// trivially — rustfmt only wraps long, hence descriptive, ones.)
fn expect_message_states_invariant(raw_line: &str) -> bool {
    let Some(start) = raw_line.find(".expect(\"") else {
        return true;
    };
    let rest = &raw_line[start + ".expect(\"".len()..];
    let Some(end) = rest.find('"') else {
        return true; // message continues on the next line
    };
    let msg = &rest[..end];
    msg.chars().count() >= 8 && msg.split_whitespace().count() >= 2
}

/// Replaces comments and string/char literals with spaces, preserving
/// line structure so findings keep real line numbers.
fn blank_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal (possibly raw: the opening r#" was
                // consumed as identifier chars — harmless, they carry
                // no rule tokens).
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with a
                // quote within a few bytes.
                let lit_end = (i + 1..bytes.len().min(i + 5)).find(|&j| {
                    bytes[j] == b'\'' && !(j == i + 1 && bytes.get(i + 1) == Some(&b'\\'))
                });
                match lit_end {
                    Some(end) if bytes[i + 1] == b'\\' || end == i + 2 => {
                        out.resize(out.len() + (end - i + 1), b' ');
                        i = end + 1;
                    }
                    _ => {
                        out.push(b'\'');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Blanks the bodies of `#[cfg(test)]`-attributed items (line structure
/// preserved). Lexical brace matching is exact here because comments
/// and strings were already blanked.
fn blank_test_items(src: &str) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let mut keep = vec![true; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            let mut depth: i64 = 0;
            let mut started = false;
            let mut j = i;
            while j < lines.len() {
                keep[j] = false;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                j += 1;
                if started && depth <= 0 {
                    break;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    let mut out = String::with_capacity(src.len());
    for (idx, line) in lines.iter().enumerate() {
        if keep[idx] {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings_preserving_lines() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = 1;\n";
        let out = blank_comments_and_strings(src);
        assert!(!out.contains(".unwrap()"), "{out}");
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn blanks_cfg_test_modules() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let out = blank_test_items(&blank_comments_and_strings(src));
        let unwraps: Vec<usize> = out
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(".unwrap()"))
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(unwraps, vec![1]);
        assert!(out.lines().nth(5).unwrap().contains("fn live2"));
    }

    #[test]
    fn expect_message_rule() {
        assert!(expect_message_states_invariant(
            "x.expect(\"searcht guarantees membership\")"
        ));
        assert!(!expect_message_states_invariant("x.expect(\"8 bytes\")"));
        assert!(!expect_message_states_invariant("x.expect(\"nonempty\")"));
        // Parser-style method calls with non-string args are not
        // Option::expect and never reach the message check.
        assert!(expect_message_states_invariant(
            "self.expect(&Token::LParen)?;"
        ));
    }

    #[test]
    fn lint_flags_planted_violations() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-test-{}", std::process::id()));
        let src_dir = dir.join("crates/core/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("bad.rs"),
            "fn f() { let x: Option<u8> = None; x.unwrap(); }\n\
             fn g() { let x: Option<u8> = None; x.expect(\"oops\"); }\n\
             // invariant: planted waiver below\n\
             fn h() { let x: Option<u8> = None; x.expect(\"ok\"); }\n\
             #[cfg(test)]\nmod t { fn i() { let x: Option<u8> = None; x.unwrap(); } }\n",
        )
        .unwrap();
        let findings = lint(&dir);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["no-unwrap", "expect-invariant"]);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_flags_static_mut_and_stray_orderings() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-conc-{}", std::process::id()));
        let src_dir = dir.join("crates/storage/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("bad.rs"),
            "static mut COUNTER: u64 = 0;\n\
             fn f(a: &std::sync::atomic::AtomicU64) { a.load(std::sync::atomic::Ordering::Acquire); }\n\
             // SeqCst in a comment is fine\n\
             fn g(a: &std::sync::atomic::AtomicU64) { a.load(std::sync::atomic::Ordering::Relaxed); }\n",
        )
        .unwrap();
        // The same tokens inside nf2-core::mvcc are the sanctioned home.
        let mvcc_dir = dir.join("crates/core/src");
        std::fs::create_dir_all(&mvcc_dir).unwrap();
        std::fs::write(
            mvcc_dir.join("mvcc.rs"),
            "fn h(a: &std::sync::atomic::AtomicU64) { a.load(std::sync::atomic::Ordering::Acquire); }\n",
        )
        .unwrap();
        let findings = lint(&dir);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["no-static-mut", "ordering-containment"]);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_confines_instant_to_obs_and_bench() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-clock-{}", std::process::id()));
        // Planted violation: a query-layer file reaching for the raw clock.
        let query_dir = dir.join("crates/query/src");
        std::fs::create_dir_all(&query_dir).unwrap();
        std::fs::write(
            query_dir.join("bad.rs"),
            "use std::time::Instant;\n\
             // Instant in a comment is fine\n\
             fn f() -> u64 { let t = Instant::now(); t.elapsed().as_nanos() as u64 }\n",
        )
        .unwrap();
        // The same token in the sanctioned homes is clean.
        let obs_dir = dir.join("crates/obs/src");
        std::fs::create_dir_all(&obs_dir).unwrap();
        std::fs::write(
            obs_dir.join("clock.rs"),
            "pub struct Stopwatch(std::time::Instant);\n",
        )
        .unwrap();
        let bench_dir = dir.join("crates/bench/src");
        std::fs::create_dir_all(&bench_dir).unwrap();
        std::fs::write(
            bench_dir.join("timing.rs"),
            "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        )
        .unwrap();
        let findings = lint(&dir);
        let rules: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![("clock-containment", 1), ("clock-containment", 3)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_confines_lane_locks_to_the_storage_write_module() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-lanes-{}", std::process::id()));
        // Planted violation: the query layer grabbing writer lanes
        // directly, sidestepping the ascending-order discipline.
        let query_dir = dir.join("crates/query/src");
        std::fs::create_dir_all(&query_dir).unwrap();
        std::fs::write(
            query_dir.join("bad.rs"),
            "fn f(t: &Table) { let _g = t.lock_lane(0); }\n\
             // lock_lanes in a comment is fine\n\
             fn g(t: &Table) { let _g = t.lock_all_lanes(); }\n",
        )
        .unwrap();
        // The same tokens in the sanctioned home are clean.
        let storage_dir = dir.join("crates/storage/src");
        std::fs::create_dir_all(&storage_dir).unwrap();
        std::fs::write(
            storage_dir.join("table.rs"),
            "fn lock_lane(shard: usize) {}\nfn lock_all_lanes() {}\n",
        )
        .unwrap();
        let findings = lint(&dir);
        let rules: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![("lane-lock-containment", 1), ("lane-lock-containment", 3)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repo_is_clean() {
        let root = repo_root();
        let findings = lint(&root);
        assert!(
            findings.is_empty(),
            "lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
