//! # nf2 — Non-First-Normal-Form relational databases
//!
//! A full implementation of Arisawa, Moriya & Miura, *"Operations and the
//! Properties on Non-First-Normal-Form Relational Databases"* (VLDB
//! 1983), as a workspace of focused crates re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `nf2-core` | the NF² model: composition, nest, canonical forms, fixedness, §4 incremental maintenance |
//! | [`deps`] | `nf2-deps` | FDs, MVDs, 3NF synthesis, dependency mining, Theorems 3–5 |
//! | [`algebra`] | `nf2-algebra` | NF² relational algebra with NEST/UNNEST, plus streaming evaluation |
//! | [`storage`] | `nf2-storage` | realization-view storage: pages, heap files, WAL, tables |
//! | [`query`] | `nf2-query` | the NF² engine: SQL-ish DML, sessions, prepared statements, cursors |
//! | [`obs`] | `nf2-obs` | observability: spans, metrics registry, subscribers, the sanctioned clock |
//! | [`workload`] | `nf2-workload` | deterministic experiment workloads |
//!
//! ## Quickstart
//!
//! The engine surface is three-staged: an [`Engine`](query::Engine)
//! owns the tables and dictionary (configure persistence through
//! [`Engine::builder`](query::Engine::builder)), a
//! [`Session`](query::Session) issues statements, and
//! [`prepare`](query::Session::prepare) compiles a statement once for
//! repeated execution with `?` parameters:
//!
//! ```
//! use nf2::query::{Engine, Output};
//!
//! let engine = Engine::builder().build().unwrap();
//! let mut session = engine.session();
//! session.run_script(
//!     "CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course);
//!      INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
//! ).unwrap();
//!
//! // Students taking c1 are stored as ONE NF² tuple: [Student(s1,s2) Course(c1)].
//! let out = session.run("SHOW sc").unwrap();
//! assert!(out.to_text().contains("s1, s2"));
//!
//! // Prepared: parsed + planned once, bound per call — no re-parse.
//! let mut courses = session.prepare("SELECT COUNT(*) FROM sc WHERE Student = ?").unwrap();
//! assert_eq!(courses.execute(&mut session, &["s1"]).unwrap(), Output::Count(2));
//! assert_eq!(courses.execute(&mut session, &["s2"]).unwrap(), Output::Count(1));
//!
//! // Streaming: cursors yield NF² tuples as the scan reaches them.
//! let first = session.query("SELECT * FROM sc").unwrap().next().unwrap();
//! assert!(first.is_zero_copy(), "shared view of the pinned snapshot");
//! ```
//!
//! The original [`Database`](query::Database) type (string in, rendered
//! string out) remains available as a deprecated-but-stable shim over an
//! engine with one implicit session — existing scripts keep working, but
//! parameters, cursors and plan caching only exist on the engine
//! surface.

pub use nf2_algebra as algebra;
pub use nf2_core as core;
pub use nf2_deps as deps;
pub use nf2_obs as obs;
pub use nf2_query as query;
pub use nf2_storage as storage;
pub use nf2_workload as workload;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use nf2_algebra::{Env, Expr};
    pub use nf2_core::prelude::*;
    pub use nf2_deps::{Fd, Mvd};
    pub use nf2_query::{Cursor, Database, Engine, Output, Param, Prepared, Session, NO_PARAMS};
    pub use nf2_storage::{FlatTable, NfTable, SharedDictionary};
}
