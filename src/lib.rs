//! # nf2 — Non-First-Normal-Form relational databases
//!
//! A full implementation of Arisawa, Moriya & Miura, *"Operations and the
//! Properties on Non-First-Normal-Form Relational Databases"* (VLDB
//! 1983), as a workspace of focused crates re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `nf2-core` | the NF² model: composition, nest, canonical forms, fixedness, §4 incremental maintenance |
//! | [`deps`] | `nf2-deps` | FDs, MVDs, 3NF synthesis, dependency mining, Theorems 3–5 |
//! | [`algebra`] | `nf2-algebra` | NF² relational algebra with NEST/UNNEST |
//! | [`storage`] | `nf2-storage` | realization-view storage: pages, heap files, WAL, tables |
//! | [`query`] | `nf2-query` | the NF² data-manipulation language |
//! | [`workload`] | `nf2-workload` | deterministic experiment workloads |
//!
//! ## Quickstart
//!
//! ```
//! use nf2::query::Database;
//!
//! let mut db = Database::new();
//! db.run_script(
//!     "CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course);
//!      INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
//! ).unwrap();
//! let out = db.run("SHOW sc").unwrap();
//! // Students taking c1 are stored as ONE NF² tuple: [Student(s1,s2) Course(c1)].
//! assert!(out.to_text().contains("s1, s2"));
//! ```

pub use nf2_algebra as algebra;
pub use nf2_core as core;
pub use nf2_deps as deps;
pub use nf2_query as query;
pub use nf2_storage as storage;
pub use nf2_workload as workload;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use nf2_algebra::{Env, Expr};
    pub use nf2_core::prelude::*;
    pub use nf2_deps::{Fd, Mvd};
    pub use nf2_query::{Database, Output};
    pub use nf2_storage::{FlatTable, NfTable, SharedDictionary};
}
