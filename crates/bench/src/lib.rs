//! # nf2-bench — the reproduction harness
//!
//! One function per paper artifact (figures 1–3, Examples 1–3,
//! Theorems 2–5 and A-4, and the prose claims on compression, search
//! space and update cost), each returning a printable [`Report`].
//!
//! * `cargo run -p nf2-bench --bin repro --release` regenerates every
//!   table (add `--md` for Markdown, or experiment ids to filter);
//! * `cargo bench` runs the Criterion timing benches built on the same
//!   experiment code.

pub mod experiments;
pub mod report;

pub use experiments::{experiment_ids, run_all, run_one};
pub use report::{parse_baseline, Report};
