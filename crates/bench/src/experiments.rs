//! The experiment suite: one function per paper artifact (DESIGN.md §6).
//!
//! Each function regenerates a table or figure of the paper (or a
//! quantitative claim the paper states in prose) and returns a
//! [`Report`]. The `repro` binary prints them all; unit tests pin the
//! qualitative shapes (who wins, where the paper's claims hold).

use std::collections::BTreeSet;

use std::time::Instant;

use nf2_core::decompose;
use nf2_core::display::render_nf;
use nf2_core::irreducible::{
    enumerate_partitions, is_irreducible, minimum_partition, reduce, ReduceStrategy,
};
use nf2_core::maintenance::{CanonicalRelation, CostCounter};
use nf2_core::nest::{canonical_of_flat, nest, nest_pairwise};
use nf2_core::properties::{classify, is_fixed_on};
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::{FlatTuple, NfTuple, ValueSet};
use nf2_core::value::{Atom, Dictionary};
use nf2_deps::{check_theorem3, check_theorem4, check_theorem5, suggest_nest_order, Fd, Mvd};
use nf2_storage::{FlatTable, NfTable, SharedDictionary};
use nf2_workload as workload;

use crate::report::Report;

/// The Fig. 1 university instance: dictionary plus the two relations.
pub struct Fig1Data {
    /// Shared name dictionary (s1…, c1…, b1…, t1…).
    pub dict: Dictionary,
    /// `R1(Student, Course, Club)` as in Fig. 1.
    pub r1: NfRelation,
    /// `R2(Student, Course, Semester)` as in Fig. 1.
    pub r2: NfRelation,
}

/// Builds the exact Fig. 1 instance.
pub fn fig1_data() -> Fig1Data {
    let mut dict = Dictionary::new();
    let s: Vec<Atom> = (1..=3).map(|i| dict.intern(&format!("s{i}"))).collect();
    let c: Vec<Atom> = (1..=3).map(|i| dict.intern(&format!("c{i}"))).collect();
    let b: Vec<Atom> = (1..=2).map(|i| dict.intern(&format!("b{i}"))).collect();
    let t: Vec<Atom> = (1..=2).map(|i| dict.intern(&format!("t{i}"))).collect();

    let schema1 = Schema::new("R1", &["Student", "Course", "Club"]).unwrap();
    // Fig. 1 R1: each student takes c1,c2,c3; s1,s3 in club b1; s2 in b2.
    let r1 = NfRelation::from_tuples(
        schema1,
        vec![
            NfTuple::new(vec![
                ValueSet::singleton(s[0]),
                ValueSet::new(vec![c[0], c[1], c[2]]).unwrap(),
                ValueSet::singleton(b[0]),
            ]),
            NfTuple::new(vec![
                ValueSet::singleton(s[1]),
                ValueSet::new(vec![c[0], c[1], c[2]]).unwrap(),
                ValueSet::singleton(b[1]),
            ]),
            NfTuple::new(vec![
                ValueSet::singleton(s[2]),
                ValueSet::new(vec![c[0], c[1], c[2]]).unwrap(),
                ValueSet::singleton(b[0]),
            ]),
        ],
    )
    .unwrap();

    let schema2 = Schema::new("R2", &["Student", "Course", "Semester"]).unwrap();
    // Fig. 1 R2: [s1,s2,s3 | c1,c2 | t1], [s1,s3 | c3 | t1], [s2 | c3 | t2].
    let r2 = NfRelation::from_tuples(
        schema2,
        vec![
            NfTuple::new(vec![
                ValueSet::new(vec![s[0], s[1], s[2]]).unwrap(),
                ValueSet::new(vec![c[0], c[1]]).unwrap(),
                ValueSet::singleton(t[0]),
            ]),
            NfTuple::new(vec![
                ValueSet::new(vec![s[0], s[2]]).unwrap(),
                ValueSet::singleton(c[2]),
                ValueSet::singleton(t[0]),
            ]),
            NfTuple::new(vec![
                ValueSet::singleton(s[1]),
                ValueSet::singleton(c[2]),
                ValueSet::singleton(t[1]),
            ]),
        ],
    )
    .unwrap();

    Fig1Data { dict, r1, r2 }
}

/// E1 — Figs. 1 and 2: dropping `(s1, c1, ·)` from `R1` and `R2`.
///
/// Reproduces the §2 hand edit exactly with Def. 1–2 operations, and runs
/// the §4 canonical maintenance alongside for comparison.
pub fn e01_fig1_2() -> Report {
    let Fig1Data { dict, r1, r2 } = fig1_data();
    let s1 = dict.lookup("s1").unwrap();
    let c1 = dict.lookup("c1").unwrap();
    let t1 = dict.lookup("t1").unwrap();

    let mut report = Report::new(
        "E1",
        "Figs. 1–2: drop (s1, c1, ·) from R1 and R2",
        &["relation", "stage", "nf-tuples", "flat rows"],
    );
    report.push_row(vec![
        "R1".into(),
        "Fig. 1 (before)".into(),
        r1.tuple_count().to_string(),
        r1.expand().len().to_string(),
    ]);
    report.push_row(vec![
        "R2".into(),
        "Fig. 1 (before)".into(),
        r2.tuple_count().to_string(),
        r2.expand().len().to_string(),
    ]);

    // R1 hand edit: remove c1 from the first tuple's Course set
    // (decompose on Course(c1), drop the isolated part).
    let mut r1_tuples = r1.tuples().to_vec();
    let victim_idx = r1_tuples
        .iter()
        .position(|t| t.component(0).contains(s1) && t.component(1).contains(c1))
        .expect("Fig. 1 R1 contains (s1, c1, ·)");
    let victim = r1_tuples.remove(victim_idx);
    let split = decompose(&victim, 1, c1).expect("c1 in Course set");
    if let Some(rest) = split.remainder {
        r1_tuples.push(rest);
    }
    let r1_after = NfRelation::from_tuples(r1.schema().clone(), r1_tuples).unwrap();
    report.push_row(vec![
        "R1".into(),
        "Fig. 2 (hand edit)".into(),
        r1_after.tuple_count().to_string(),
        r1_after.expand().len().to_string(),
    ]);

    // R2 hand edit (§2): split the first tuple, drop (s1, c1, t1), keep
    // [s2,s3|c1,c2|t1] and [s1|c2|t1].
    let mut r2_tuples = r2.tuples().to_vec();
    let victim_idx = r2_tuples
        .iter()
        .position(|t| t.component(0).contains(s1) && t.component(1).contains(c1))
        .expect("Fig. 1 R2 contains (s1, c1, ·)");
    let victim = r2_tuples.remove(victim_idx);
    let by_student = decompose(&victim, 0, s1).expect("s1 in Student set");
    if let Some(rest) = by_student.remainder {
        r2_tuples.push(rest); // [s2,s3 | c1,c2 | t1]
    }
    let by_course = decompose(&by_student.isolated, 1, c1).expect("c1 in Course set");
    if let Some(rest) = by_course.remainder {
        r2_tuples.push(rest); // [s1 | c2 | t1]
    }
    // by_course.isolated == [s1 | c1 | t1]: dropped.
    let r2_after = NfRelation::from_tuples(r2.schema().clone(), r2_tuples).unwrap();
    report.push_row(vec![
        "R2".into(),
        "Fig. 2 (hand edit)".into(),
        r2_after.tuple_count().to_string(),
        r2_after.expand().len().to_string(),
    ]);

    // §4 canonical maintenance on R2 for comparison (order: Student first,
    // Semester last — the order Fig. 1's R2 is canonical for).
    let order = NestOrder::identity(3);
    let mut canon = CanonicalRelation::from_flat(&r2.expand(), order).unwrap();
    assert_eq!(
        canon.relation(),
        &r2,
        "Fig. 1 R2 is canonical for Student->Course->Semester"
    );
    let mut cost = CostCounter::new();
    canon.delete_counted(&[s1, c1, t1], &mut cost).unwrap();
    report.push_row(vec![
        "R2".into(),
        "Fig. 2 (§4 canonical maintenance)".into(),
        canon.tuple_count().to_string(),
        canon.flat_count().to_string(),
    ]);
    report.note(format!(
        "§4 maintenance used {} compositions and {} decompositions; the hand edit and the \
         canonical form are different 4-tuple irreducible forms of the same R* (the paper's \
         Fig. 2 edit is minimal, not canonical).",
        cost.compositions, cost.decompositions
    ));
    report.note(format!("R1 after:\n{}", render_nf(&r1_after, &dict)));
    report.note(format!(
        "R2 after (hand edit):\n{}",
        render_nf(&r2_after, &dict)
    ));
    report.note(format!(
        "R2 after (canonical):\n{}",
        render_nf(canon.relation(), &dict)
    ));
    report
}

/// The Example 1 instance over (A, B).
pub fn example1_flat() -> FlatRelation {
    let schema = Schema::new("R", &["A", "B"]).unwrap();
    FlatRelation::from_rows(
        schema,
        [[1u32, 11], [2, 11], [2, 12], [3, 12]]
            .iter()
            .map(|r| r.iter().map(|&v| Atom(v)).collect::<FlatTuple>()),
    )
    .unwrap()
}

/// The Example 2 instance over (A, B, C).
pub fn example2_flat() -> FlatRelation {
    let schema = Schema::new("R3", &["A", "B", "C"]).unwrap();
    FlatRelation::from_rows(
        schema,
        [
            [1u32, 11, 22],
            [1, 12, 22],
            [1, 12, 21],
            [2, 11, 22],
            [2, 11, 21],
            [2, 12, 21],
        ]
        .iter()
        .map(|r| r.iter().map(|&v| Atom(v)).collect::<FlatTuple>()),
    )
    .unwrap()
}

/// The Example 3 instance over (A, B, C) with MVD `A →→ B | C`.
pub fn example3_flat() -> FlatRelation {
    let schema = Schema::new("R5", &["A", "B", "C"]).unwrap();
    FlatRelation::from_rows(
        schema,
        [[1u32, 11, 21], [1, 12, 21], [2, 11, 21], [2, 11, 22]]
            .iter()
            .map(|r| r.iter().map(|&v| Atom(v)).collect::<FlatTuple>()),
    )
    .unwrap()
}

/// E2 — Example 1: irreducible forms are not unique (sizes 2 and 3).
pub fn e02_example1() -> Report {
    let flat = example1_flat();
    let base = NfRelation::from_flat(&flat);
    let mut report = Report::new(
        "E2",
        "Example 1: distinct irreducible forms from one 1NF relation",
        &["strategy", "tuples", "irreducible", "same R*"],
    );
    let mut sizes = BTreeSet::new();
    let mut strategies: Vec<(String, ReduceStrategy)> = vec![
        ("first-fit".into(), ReduceStrategy::FirstFit),
        ("greedy-largest".into(), ReduceStrategy::GreedyLargest),
    ];
    for seed in 0..12u64 {
        strategies.push((format!("random(seed={seed})"), ReduceStrategy::Random(seed)));
    }
    for (name, strategy) in strategies {
        let r = reduce(&base, strategy);
        sizes.insert(r.tuple_count());
        report.push_row(vec![
            name,
            r.tuple_count().to_string(),
            is_irreducible(&r).to_string(),
            (r.expand() == flat).to_string(),
        ]);
    }
    report.note(format!(
        "Distinct irreducible sizes observed: {sizes:?} — the paper's R1 (2 tuples, composed \
         over A) and R2 (3 tuples, composed over B first) both arise."
    ));
    report
}

/// E3 — Example 2: a 3-tuple irreducible form beats every canonical form
/// (all of which have 4 tuples).
pub fn e03_example2() -> Report {
    let flat = example2_flat();
    let mut report = Report::new(
        "E3",
        "Example 2: minimum irreducible form vs every canonical form",
        &["form", "tuples"],
    );
    for order in NestOrder::all(3) {
        let c = canonical_of_flat(&flat, &order);
        report.push_row(vec![
            format!("canonical ν_P, P = {order}"),
            c.tuple_count().to_string(),
        ]);
    }
    let min = minimum_partition(&flat);
    report.push_row(vec![
        "minimum partition (branch & bound)".into(),
        min.tuple_count().to_string(),
    ]);
    report.note(
        "Paper: the 6-tuple R3 has an irreducible form with 3 tuples, while \"every canonical \
         form contains 4 tuples\". Both reproduced exactly.",
    );
    report
}

/// E4 — Theorem 2: the canonical form is independent of composition order.
pub fn e04_theorem2() -> Report {
    let mut report = Report::new(
        "E4",
        "Theorem 2: ν_E fixpoint unique regardless of pair order",
        &["workload", "attr", "pair orders tried", "mismatches"],
    );
    let workloads = vec![
        workload::university(12, 3, 12, 2, 4, 41),
        workload::relationship(60, 10, 10, 3, 42),
        workload::uniform(40, &[6, 6, 6], 43),
    ];
    for w in &workloads {
        let base = NfRelation::from_flat(&w.flat);
        for attr in 0..w.flat.schema().arity() {
            let expected = nest(&base, attr);
            let mut mismatches = 0;
            let tried = 16u64;
            for seed in 0..tried {
                let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                let got = nest_pairwise(&base, attr, move |k| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as usize % k
                });
                if got != expected {
                    mismatches += 1;
                }
            }
            report.push_row(vec![
                w.label.clone(),
                format!("E{attr}"),
                tried.to_string(),
                mismatches.to_string(),
            ]);
        }
    }
    report.note("Zero mismatches: every random merge order reaches the same nested relation.");
    report
}

/// E5 — Theorems 3 & 4 / Example 3: FD vs MVD fixedness across
/// irreducible forms.
pub fn e05_theorem3_4() -> Report {
    let mut report = Report::new(
        "E5",
        "Theorems 3–4: fixedness of irreducible forms under FD vs MVD",
        &[
            "instance",
            "dependency",
            "holds",
            "forms sampled",
            "fixed on LHS",
        ],
    );
    // FD instance on a 3NF fragment: U = F ∪ E exactly (the §3.4 setting:
    // "we suppose all the relations are in 3NF").
    let schema = Schema::new("RFD", &["A", "B"]).unwrap();
    let fd_flat = FlatRelation::from_rows(
        schema,
        [[1u32, 11], [2, 11], [3, 12], [4, 12], [5, 11]]
            .iter()
            .map(|r| r.iter().map(|&v| Atom(v)).collect::<FlatTuple>()),
    )
    .unwrap();
    let fd = Fd::new([0], [1]);
    let t3 = check_theorem3(&fd_flat, &fd, 32);
    report.push_row(vec![
        "3NF fragment R(A,B)".into(),
        "FD A -> B".into(),
        t3.fd_holds.to_string(),
        t3.forms_sampled.to_string(),
        format!(
            "{} of {}",
            if t3.all_fixed { t3.forms_sampled } else { 0 },
            t3.forms_sampled
        ),
    ]);
    // The same FD with a free attribute C outside F ∪ E: Theorem 3's
    // conclusion fails, which is why §3.4 assumes 3NF fragments (D9).
    let schema = Schema::new("RFDC", &["A", "B", "C"]).unwrap();
    let free_flat = FlatRelation::from_rows(
        schema,
        [
            [1u32, 11, 21],
            [1, 11, 22],
            [2, 12, 21],
            [3, 11, 23],
            [3, 11, 21],
        ]
        .iter()
        .map(|r| r.iter().map(|&v| Atom(v)).collect::<FlatTuple>()),
    )
    .unwrap();
    let t3_free = check_theorem3(&free_flat, &fd, 32);
    report.push_row(vec![
        "R(A,B,C), C free".into(),
        "FD A -> B".into(),
        t3_free.fd_holds.to_string(),
        t3_free.forms_sampled.to_string(),
        format!(
            "{} of {}",
            if t3_free.all_fixed {
                t3_free.forms_sampled
            } else {
                0
            },
            t3_free.forms_sampled
        ),
    ]);
    // MVD instance: Example 3.
    let mvd = Mvd::new([0], [1]);
    let t4 = check_theorem4(&example3_flat(), &mvd, 32);
    report.push_row(vec![
        "Example 3 instance".into(),
        "MVD A ->-> B \\| C".into(),
        t4.mvd_holds.to_string(),
        t4.forms_sampled.to_string(),
        format!("{} of {}", t4.fixed_count, t4.forms_sampled),
    ]);
    report.note(format!(
        "Theorem 3 (FD, on a 3NF fragment where U = F ∪ E): every sampled irreducible form \
         fixed on the determinant = {}. With a free attribute outside F ∪ E the conclusion \
         fails (all fixed = {}), which is exactly why §3.4 assumes 3NF schemas (DESIGN.md D9). \
         Theorem 4 (MVD): a fixed form exists = {}, and (Example 3) an unfixed form also \
         exists = {} — existence, not universality.",
        t3.all_fixed,
        t3_free.all_fixed,
        t4.exists_fixed(),
        t4.exists_unfixed()
    ));
    report
}

/// E6 — Theorem 5: canonical forms are fixed on the n−1 attributes other
/// than the first-nested one, across degrees.
pub fn e06_theorem5() -> Report {
    let mut report = Report::new(
        "E6",
        "Theorem 5: fixed canonical form on n−1 domains",
        &["degree n", "|R*|", "orders checked", "fixed on U − first"],
    );
    for n in 2..=5usize {
        let domains: Vec<u32> = vec![5; n];
        let w = workload::uniform(60.min(5usize.pow(n as u32) / 2), &domains, 60 + n as u64);
        let mut ok = 0;
        let orders = NestOrder::all(n);
        for order in &orders {
            if check_theorem5(&w.flat, order) {
                ok += 1;
            }
        }
        report.push_row(vec![
            n.to_string(),
            w.flat.len().to_string(),
            orders.len().to_string(),
            format!("{ok}/{}", orders.len()),
        ]);
    }
    report.note("Every canonical form is fixed on the complement of its first-nested attribute, as Theorem 5 predicts.");
    report
}

/// E7 — Theorem A-4: update cost (compositions + decompositions) is
/// independent of |R*| and grows only with the degree.
pub fn e07_theorem_a4() -> Report {
    let mut report = Report::new(
        "E7",
        "Theorem A-4: update cost vs relation size and degree",
        &[
            "sweep",
            "parameter",
            "|R*|",
            "avg ops/insert",
            "max ops/insert",
            "avg ops/delete",
            "max ops/delete",
        ],
    );

    // (a) Fix degree 3, sweep |R*|.
    for &size in &[200usize, 1_000, 5_000, 20_000] {
        let w = workload::relationship(size, (size as u32 / 4).max(8), 40, 6, 7);
        let (ins, del) = probe_costs(&w.flat, 40, 1234);
        report.push_row(vec![
            "|R*| sweep (n=3)".into(),
            format!("size={size}"),
            w.flat.len().to_string(),
            format!("{:.2}", ins.0),
            ins.1.to_string(),
            format!("{:.2}", del.0),
            del.1.to_string(),
        ]);
    }

    // (b) Fix |R*| ≈ 2048, sweep degree on block-product data: every row
    // sits inside a 2^n rectangle, so a deletion must split (and a
    // re-insertion re-merge) along every attribute — the workload that
    // actually exercises the Theorem A-4 recurrence.
    for n in 2..=7usize {
        let blocks = (2048usize >> n).max(1);
        let dims: Vec<usize> = vec![2; n];
        let w = workload::block_product(blocks, &dims, 0);
        let (ins, del) = probe_costs(&w.flat, 40, 99);
        report.push_row(vec![
            "degree sweep (blocks of 2^n)".into(),
            format!("n={n}"),
            w.flat.len().to_string(),
            format!("{:.2}", ins.0),
            ins.1.to_string(),
            format!("{:.2}", del.0),
            del.1.to_string(),
        ]);
    }
    report.note(
        "Structural operations per update stay flat as |R*| grows 100x (the paper's central \
         complexity claim). On block data where every update must split/merge along each \
         attribute, cost grows with the degree n — and only with n, matching Theorem A-4's \
         bound as a function of the degree alone.",
    );
    report
}

/// Measures average/max structural ops for `probes` random insertions and
/// deletions against the canonical form of `flat`.
fn probe_costs(flat: &FlatRelation, probes: usize, seed: u64) -> ((f64, u64), (f64, u64)) {
    let order = NestOrder::identity(flat.schema().arity());
    let mut canon = CanonicalRelation::from_flat(flat, order).unwrap();
    let rows: Vec<FlatTuple> = flat.rows().cloned().collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 17) as usize
    };
    let mut ins = (0.0f64, 0u64);
    let mut del = (0.0f64, 0u64);
    let mut count = 0u64;
    for _ in 0..probes {
        // Delete an existing row, then re-insert it: symmetric probes that
        // keep the relation stable.
        let row = rows[next() % rows.len()].clone();
        let mut dc = CostCounter::new();
        if !canon.delete_counted(&row, &mut dc).unwrap() {
            continue;
        }
        let mut ic = CostCounter::new();
        canon.insert_counted(row, &mut ic).unwrap();
        del.0 += dc.structural_ops() as f64;
        del.1 = del.1.max(dc.structural_ops());
        ins.0 += ic.structural_ops() as f64;
        ins.1 = ins.1.max(ic.structural_ops());
        count += 1;
    }
    if count > 0 {
        ins.0 /= count as f64;
        del.0 /= count as f64;
    }
    (ins, del)
}

/// E8 — §1/§2 claim: NFRs have far fewer tuples than 1NF.
pub fn e08_compression() -> Report {
    let mut report = Report::new(
        "E8",
        "Compression: NF² tuple count vs 1NF rows across workloads",
        &[
            "workload",
            "|R*| rows",
            "best canonical",
            "worst canonical",
            "best ratio",
        ],
    );
    let workloads = vec![
        workload::university(400, 4, 60, 2, 12, 11),
        workload::relationship(4_000, 300, 60, 6, 12),
        workload::block_product(40, &[4, 5, 5], 13),
        workload::uniform(4_000, &[80, 80, 80], 14),
        workload::zipf(4_000, &[200, 200, 200], 1.1, 15),
    ];
    let mut kernel = nf2_core::kernel::NestKernel::new();
    for w in &workloads {
        // The sweep runs on the single-pass kernel; pin it tuple-identical
        // to the legacy ν cascade — on every workload in debug builds
        // (what the test suite runs), and on the cheapest workload in
        // release so the timed sweep stays a kernel measurement. The full
        // generator × order cross-product lives in the property suite.
        if cfg!(debug_assertions) || w.label.starts_with("university") {
            let check = NestOrder::identity(w.flat.schema().arity());
            assert_eq!(
                kernel.canonical_of_flat(&w.flat, &check),
                nf2_core::nest::canonical_of_flat_legacy(&w.flat, &check),
                "kernel must match the legacy cascade on {}",
                w.label
            );
        }
        let mut best = usize::MAX;
        let mut worst = 0usize;
        for order in NestOrder::all(w.flat.schema().arity()) {
            let c = kernel.canonical_of_flat(&w.flat, &order);
            best = best.min(c.tuple_count());
            worst = worst.max(c.tuple_count());
        }
        report.push_row(vec![
            w.label.clone(),
            w.flat.len().to_string(),
            best.to_string(),
            worst.to_string(),
            format!("{:.2}x", w.flat.len() as f64 / best as f64),
        ]);
    }
    report.note(
        "Product-structured data (university, blocks) compresses heavily; uniform random data \
         barely compresses — matching the paper's framing that NFR pays off when MVD-style \
         structure exists. All canonical forms computed by the single-pass nest kernel, \
         cross-checked tuple-identical against the legacy ν cascade (one workload in release, \
         all of them in debug builds, every generator × order in the property suite).",
    );
    report
}

/// E9 — §2/§5 claim: reduction of logical search space on the
/// realization view.
pub fn e09_search_space() -> Report {
    let mut report = Report::new(
        "E9",
        "Search space: probes and bytes, NF² table vs 1NF table",
        &[
            "metric",
            "NF² (realization view)",
            "1NF baseline",
            "reduction",
        ],
    );
    let w = workload::university(300, 4, 50, 2, 10, 21);
    let dict = SharedDictionary::new();
    let nf = NfTable::from_flat("r1", &w.flat, NestOrder::identity(3), dict).unwrap();
    let flat_table = FlatTable::from_flat("r1_flat", &w.flat).unwrap();

    // Probe a set of course values by scan on both engines.
    let courses: Vec<Atom> = w
        .flat
        .rows()
        .map(|r| r[1])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .take(25)
        .collect();
    for &course in &courses {
        let _ = nf.lookup_scan(1, course);
        let _ = flat_table.lookup_scan(1, course);
    }
    let nf_stats = nf.stats();
    let flat_stats = flat_table.stats();
    report.push_row(vec![
        "units probed / lookup".into(),
        format!(
            "{:.0}",
            nf_stats.units_probed as f64 / nf_stats.lookups as f64
        ),
        format!(
            "{:.0}",
            flat_stats.units_probed as f64 / flat_stats.lookups as f64
        ),
        format!(
            "{:.2}x",
            flat_stats.units_probed as f64 / nf_stats.units_probed.max(1) as f64
        ),
    ]);

    // Byte footprint: checkpoint both to pages.
    let dir = std::env::temp_dir().join("nf2_e9");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let nf_mut = nf;
    nf_mut.checkpoint(&dir).unwrap();
    let nf_bytes = std::fs::metadata(dir.join("r1.pages"))
        .map(|m| m.len())
        .unwrap_or(0);
    let flat_bytes = flat_table.size_bytes() as u64;
    report.push_row(vec![
        "page bytes".into(),
        nf_bytes.to_string(),
        flat_bytes.to_string(),
        format!("{:.2}x", flat_bytes as f64 / nf_bytes.max(1) as f64),
    ]);
    // Exact encoded payload (page-granularity effects removed).
    let mut nf_payload = 0usize;
    {
        let mut buf = bytes::BytesMut::new();
        for t in nf_mut.relation().tuples() {
            buf.clear();
            nf2_storage::codec::encode_nf_tuple(t, &mut buf);
            nf_payload += buf.len();
        }
    }
    let mut flat_payload = 0usize;
    {
        let mut buf = bytes::BytesMut::new();
        for row in w.flat.rows() {
            buf.clear();
            nf2_storage::codec::encode_flat_tuple(row, &mut buf);
            flat_payload += buf.len();
        }
    }
    report.push_row(vec![
        "encoded payload bytes".into(),
        nf_payload.to_string(),
        flat_payload.to_string(),
        format!("{:.2}x", flat_payload as f64 / nf_payload.max(1) as f64),
    ]);
    report.push_row(vec![
        "logical units".into(),
        nf_mut.tuple_count().to_string(),
        flat_table.row_count().to_string(),
        format!(
            "{:.2}x",
            flat_table.row_count() as f64 / nf_mut.tuple_count().max(1) as f64
        ),
    ]);
    report.note(
        "The NF² realization view scans and stores one unit per NF² tuple; the 1NF baseline \
         pays per flat row — the paper's \"reduction of logical search space\".",
    );
    report
}

/// E10 — §4 premise: incremental maintenance beats re-nesting from
/// scratch.
pub fn e10_update_cost() -> Report {
    let mut report = Report::new(
        "E10",
        "Update cost: §4 incremental maintenance vs re-nest baseline",
        &[
            "|R*|",
            "incremental avg µs/op",
            "re-nest avg µs/op",
            "speedup",
        ],
    );
    let mut kernel = nf2_core::kernel::NestKernel::new();
    for &size in &[500usize, 2_000, 8_000] {
        let w = workload::relationship(size, (size as u32 / 4).max(8), 40, 6, 31);
        let order = NestOrder::identity(3);
        if size == 500 {
            // Pin the kernel-built baseline against the legacy cascade
            // once (cheap at the smallest size).
            assert_eq!(
                canonical_of_flat(&w.flat, &order),
                nf2_core::nest::canonical_of_flat_legacy(&w.flat, &order),
                "kernel must match the legacy cascade"
            );
        }
        let mut canon = CanonicalRelation::from_flat(&w.flat, order.clone()).unwrap();
        let rows: Vec<FlatTuple> = w.flat.rows().cloned().collect();
        let probes = 24usize;

        let start = Instant::now();
        for i in 0..probes {
            let row = rows[(i * 7919) % rows.len()].clone();
            canon.delete(&row).unwrap();
            canon.insert(row).unwrap();
        }
        let incr = start.elapsed().as_micros() as f64 / (probes * 2) as f64;

        // Baseline: recompute the canonical form from scratch per update
        // (one shared kernel keeps the comparison honest — the re-nester
        // gets every amortization the production rebuild path has).
        let mut flat = w.flat.clone();
        let start = Instant::now();
        let baseline_probes = 4usize; // re-nesting is slow; fewer probes suffice
        for i in 0..baseline_probes {
            let row = rows[(i * 104729) % rows.len()].clone();
            flat.remove(&row);
            let _ = kernel.canonical_of_flat(&flat, &order);
            flat.insert(row).unwrap();
            let _ = kernel.canonical_of_flat(&flat, &order);
        }
        let renest = start.elapsed().as_micros() as f64 / (baseline_probes * 2) as f64;

        report.push_row(vec![
            size.to_string(),
            format!("{incr:.1}"),
            format!("{renest:.1}"),
            format!("{:.1}x", renest / incr.max(0.001)),
        ]);
    }
    report.note(
        "Incremental cost is flat in |R*| (Theorem A-4); the re-nest baseline grows linearly, \
         so the speedup widens with relation size. The baseline runs on the single-pass nest \
         kernel — the honest strongest version of re-nesting from scratch.",
    );
    report
}

/// E11 — Fig. 3: census of canonical / irreducible / fixed regions over
/// **all** NFRs of the Example 2 relation (whose 3-tuple minimum is the
/// paper's witness that irreducible ⊋ canonical).
pub fn e11_fig3() -> Report {
    let flat = example2_flat();
    let all = enumerate_partitions(&flat, 100_000);
    let mut total = 0usize;
    let mut irreducible = 0usize;
    let mut canonical = 0usize;
    let mut fixed_proper = 0usize;
    let mut canonical_and_fixed = 0usize;
    let mut irreducible_not_canonical = 0usize;
    let n = flat.schema().arity();
    for rel in &all {
        total += 1;
        let c = classify(rel);
        // "Fixed" in Fig. 3's sense: fixed on some proper subset of at
        // most n−1 attributes (fixedness on all of U is vacuous).
        let fixed = (0..n).any(|skip| {
            let rest: Vec<usize> = (0..n).filter(|&a| a != skip).collect();
            is_fixed_on(rel, &rest)
        });
        if c.irreducible {
            irreducible += 1;
            if !c.is_canonical() {
                irreducible_not_canonical += 1;
            }
        }
        if c.is_canonical() {
            canonical += 1;
            if fixed {
                canonical_and_fixed += 1;
            }
        }
        if fixed {
            fixed_proper += 1;
        }
    }
    let mut report = Report::new(
        "E11",
        "Fig. 3: region census over all NFRs of the Example 2 relation",
        &["region", "count"],
    );
    report.push_row(vec![
        "all NFRs (rectangle partitions of R*, Example 2 instance)".into(),
        total.to_string(),
    ]);
    report.push_row(vec!["irreducible (Def. 3)".into(), irreducible.to_string()]);
    report.push_row(vec![
        "canonical for ≥1 order (Def. 5)".into(),
        canonical.to_string(),
    ]);
    report.push_row(vec![
        "fixed on some n−1 attrs (Def. 7)".into(),
        fixed_proper.to_string(),
    ]);
    report.push_row(vec![
        "canonical ∧ fixed".into(),
        canonical_and_fixed.to_string(),
    ]);
    report.push_row(vec![
        "irreducible ∧ ¬canonical".into(),
        irreducible_not_canonical.to_string(),
    ]);
    report.note(format!(
        "Fig. 3's containments hold on this census: canonical ({canonical}) ⊆ irreducible \
         ({irreducible}) ⊆ all ({total}); the gap irreducible ∧ ¬canonical = \
         {irreducible_not_canonical} is the paper's Example 2 phenomenon; {fixed_proper} NFRs \
         are fixed on some n−1 attribute subset."
    ));
    report
}

/// E12 — §3.4: dependency-driven nest-order choice.
pub fn e12_permutation_choice() -> Report {
    let mut report = Report::new(
        "E12",
        "§3.4: dependency-driven permutation vs all orders",
        &[
            "order (application)",
            "tuples",
            "fixed on determinant {Student}",
            "suggested",
        ],
    );
    // University data with MVD Student ->-> Course | Club.
    let w = workload::university(120, 3, 25, 2, 8, 77);
    let mvds = vec![Mvd::new([0], [1])];
    let suggested = suggest_nest_order(3, &[], &mvds);
    for order in NestOrder::all(3) {
        let c = canonical_of_flat(&w.flat, &order);
        let fixed = is_fixed_on(&c, &[0]);
        report.push_row(vec![
            order.to_string(),
            c.tuple_count().to_string(),
            fixed.to_string(),
            (order == suggested).to_string(),
        ]);
    }
    report.note(format!(
        "Suggested order (dependents first, determinants last): {suggested}. Its canonical \
         form is fixed on the MVD determinant, enabling key-style access — \"nesting on \
         left-side attributes of FDs or MVDs allows us to get to better NFRs\".",
    ));
    report
}

/// E13 — §5's open "optimization strategy": rule-based plan rewriting.
///
/// Measures the structural-mode optimizer on select-over-join plans:
/// estimated work, wall time, and the rewrites that fired. Structural
/// rewrites are tuple-identical, so the result check is exact equality.
pub fn e13_optimizer() -> Report {
    use nf2_algebra::optimize::{estimate, optimize, RewriteMode, SchemaCatalog};
    use nf2_algebra::{Env, Expr};

    let mut report = Report::new(
        "E13",
        "§5 optimization strategy: plan rewriting on σ(sc ⋈ cp)",
        &[
            "selectivity",
            "rewrites",
            "est. work before",
            "est. work after",
            "µs before",
            "µs after",
        ],
    );

    // sc(Student, Course) from the university workload; cp(Course, Prof).
    let w = workload::university(400, 4, 60, 1, 1, 55);
    let sc_flat = {
        let schema = Schema::new("sc", &["Student", "Course"]).unwrap();
        FlatRelation::from_rows(
            schema,
            w.flat
                .rows()
                .map(|r| vec![r[0], r[1]])
                .collect::<BTreeSet<_>>(),
        )
        .unwrap()
    };
    let cp_flat = {
        let schema = Schema::new("cp", &["Course", "Prof"]).unwrap();
        let courses: BTreeSet<Atom> = sc_flat.rows().map(|r| r[1]).collect();
        FlatRelation::from_rows(
            schema,
            courses
                .into_iter()
                .enumerate()
                .map(|(i, c)| vec![c, Atom(3_000_000 + (i as u32 % 7))]),
        )
        .unwrap()
    };
    let mut env = Env::new();
    env.insert("sc", canonical_of_flat(&sc_flat, &NestOrder::identity(2)));
    env.insert("cp", canonical_of_flat(&cp_flat, &NestOrder::identity(2)));
    let catalog = SchemaCatalog::from_env(&env);
    let sizes: std::collections::HashMap<String, usize> = env
        .names()
        .iter()
        .map(|n| {
            (
                n.to_string(),
                env.get(n).map(|r| r.tuple_count()).unwrap_or(0),
            )
        })
        .collect();

    // One Prof value selects ~1/7 of courses; stacking Student narrows more.
    let plans: Vec<(&str, Expr)> = vec![
        (
            "Prof = p0",
            Expr::SelectBox {
                input: Box::new(Expr::Join(
                    Box::new(Expr::rel("sc")),
                    Box::new(Expr::rel("cp")),
                )),
                constraints: vec![("Prof".into(), vec![Atom(3_000_000)])],
            },
        ),
        (
            "Prof = p0 ∧ Student ∈ {0..9}",
            Expr::SelectBox {
                input: Box::new(Expr::SelectBox {
                    input: Box::new(Expr::Join(
                        Box::new(Expr::rel("sc")),
                        Box::new(Expr::rel("cp")),
                    )),
                    constraints: vec![("Prof".into(), vec![Atom(3_000_000)])],
                }),
                constraints: vec![("Student".into(), (0..10).map(Atom).collect())],
            },
        ),
    ];

    for (label, plan) in &plans {
        let opt = optimize(plan, &catalog, RewriteMode::Structural);
        let before = estimate(plan, &sizes);
        let after = estimate(&opt.expr, &sizes);

        let start = Instant::now();
        let base_result = plan.eval(&env).unwrap();
        let t_before = start.elapsed().as_micros();
        let start = Instant::now();
        let opt_result = opt.expr.eval(&env).unwrap();
        let t_after = start.elapsed().as_micros();
        assert_eq!(base_result, opt_result, "structural rewrites are exact");

        report.push_row(vec![
            (*label).to_string(),
            opt.trace
                .iter()
                .map(|s| s.rule)
                .collect::<Vec<_>>()
                .join(", "),
            format!("{:.0}", before.total_work),
            format!("{:.0}", after.total_work),
            t_before.to_string(),
            t_after.to_string(),
        ]);
    }
    report.note(
        "Selection pushdown below the join fires in every plan; the optimized plan \
         intersects rectangles before pairing them, cutting both the cost estimate and \
         the measured time. Results verified tuple-identical.",
    );
    report
}

/// E14 — batch maintenance crossover: §4 incremental vs re-nest, as the
/// batch grows relative to the relation.
pub fn e14_batch_crossover() -> Report {
    use nf2_core::bulk::{apply_batch, rebuild_batch_with, should_rebuild};

    let mut report = Report::new(
        "E14",
        "Batch updates: incremental §4 maintenance vs re-nest, by batch size",
        &[
            "batch (% of |R*|)",
            "incremental µs",
            "re-nest µs",
            "faster",
            "auto picks",
        ],
    );
    let w = workload::university(150, 3, 30, 2, 8, 91);
    let base_rows = w.flat.len();
    let order = NestOrder::identity(3);
    let base = CanonicalRelation::from_flat(&w.flat, order).unwrap();
    let mut kernel = nf2_core::kernel::NestKernel::new();

    for &pct in &[1usize, 5, 20, 50, 100] {
        let ops = workload::op_trace(&w, (base_rows * pct / 100).max(1), 40, pct as u64);

        let mut inc = base.clone();
        let mut cost = CostCounter::new();
        let start = Instant::now();
        apply_batch(&mut inc, &ops, &mut cost).unwrap();
        let t_inc = start.elapsed().as_micros();

        let start = Instant::now();
        let rebuilt = rebuild_batch_with(&mut kernel, &base, &ops).unwrap();
        let t_re = start.elapsed().as_micros();
        assert_eq!(inc.relation(), rebuilt.relation(), "strategies must agree");

        let faster = if t_inc <= t_re {
            "incremental"
        } else {
            "re-nest"
        };
        let auto = if should_rebuild(ops.len(), base.flat_count()) {
            "re-nest"
        } else {
            "incremental"
        };
        report.push_row(vec![
            format!("{pct}%"),
            t_inc.to_string(),
            t_re.to_string(),
            faster.to_string(),
            auto.to_string(),
        ]);
    }
    report.note(
        "Small batches favour §4 incremental maintenance; once a batch rewrites a large \
         fraction of R*, one re-nest beats many recons cascades. `should_rebuild`'s \
         conservative 50% threshold sits on the correct side in this sweep. The re-nest arm \
         runs on the single-pass kernel and is asserted tuple-identical to the incremental \
         result at every batch size.",
    );
    report
}

/// E15 — §2's "NFR may throw away the 4NF concept": one nested relation
/// vs the classical 4NF decomposition of the university schema.
pub fn e15_4nf_vs_nfr() -> Report {
    use bytes::BytesMut;
    use nf2_deps::decompose_4nf;
    use nf2_storage::codec::{encode_flat_tuple, encode_nf_tuple};

    let mut report = Report::new(
        "E15",
        "§2: one NFR vs the 4NF decomposition (Student ->-> Course | Club)",
        &[
            "design",
            "relations",
            "stored units",
            "payload bytes",
            "probes: s's full profile",
        ],
    );
    let w = workload::university(200, 3, 40, 2, 10, 17);
    let mvds = vec![Mvd::new([0], [1])];

    // 4NF route: split on the MVD, store both fragments flat.
    let d = decompose_4nf(3, &[], &mvds);
    assert_eq!(d.fragments.len(), 2, "classical SC/SB split");
    let mut frag_tables = Vec::new();
    for frag in &d.fragments {
        let attrs: Vec<usize> = frag.iter().collect();
        let names: Vec<String> = attrs.iter().map(|&a| format!("E{a}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let schema = Schema::new("frag", &refs).unwrap();
        let rows: BTreeSet<FlatTuple> = w
            .flat
            .rows()
            .map(|r| attrs.iter().map(|&a| r[a]).collect())
            .collect();
        frag_tables.push(FlatRelation::from_rows(schema, rows).unwrap());
    }
    let rows_4nf: usize = frag_tables.iter().map(FlatRelation::len).sum();
    let mut buf = BytesMut::new();
    let mut bytes_4nf = 0usize;
    for t in &frag_tables {
        for row in t.rows() {
            buf.clear();
            encode_flat_tuple(row, &mut buf);
            bytes_4nf += buf.len();
        }
    }
    // Full profile of one student = one probe per fragment table (scan
    // counted in rows touched) — plus the join to recombine.
    let target = w.flat.rows().next().expect("non-empty")[0];
    let probes_4nf: usize = frag_tables
        .iter()
        .map(|t| t.rows().filter(|_| true).count()) // full scan per fragment
        .sum();
    let _ = target;

    // NFR route: nest Course and Club under Student (suggested order).
    let order = suggest_nest_order(3, &[], &mvds);
    let nfr = canonical_of_flat(&w.flat, &order);
    let mut bytes_nfr = 0usize;
    for t in nfr.tuples() {
        buf.clear();
        encode_nf_tuple(t, &mut buf);
        bytes_nfr += buf.len();
    }
    // Full profile of one student = scan NF² tuples (one contains it all).
    let probes_nfr = nfr.tuple_count();

    report.push_row(vec![
        "4NF (SC ⋈ SB)".into(),
        d.fragments.len().to_string(),
        format!("{rows_4nf} rows"),
        bytes_4nf.to_string(),
        format!("{probes_4nf} rows + join"),
    ]);
    report.push_row(vec![
        format!("NFR ν_{order}"),
        "1".into(),
        format!("{} nf-tuples", nfr.tuple_count()),
        bytes_nfr.to_string(),
        format!("{probes_nfr} tuples, no join"),
    ]);
    report.note(format!(
        "The single NFR stores the same information in {} tuples vs {} fragment rows, \
         and answers an entity lookup without a join — \"NFR allows database users to \
         take away such decompositions … and to discard join operations\" (§5). \
         The 4NF route remains fully lossless (tableau-verified in nf2-deps).",
        nfr.tuple_count(),
        rows_4nf
    ));
    report
}

/// E16 — streaming/batched ingest at scale (the ROADMAP's first new
/// workload): a large op trace replayed through `apply_batch_auto`, with
/// one shared nest kernel amortizing every rebuild's scratch buffers.
///
/// `NF2_E16_OPS` overrides the trace length (default 10⁶ flat rows); CI
/// smoke-runs the experiment at a reduced count.
pub fn e16_streaming_ingest() -> Report {
    let ops = std::env::var("NF2_E16_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000usize);
    e16_with(ops)
}

/// [`e16_streaming_ingest`] at an explicit scale (tests run it small).
pub fn e16_with(total_ops: usize) -> Report {
    use nf2_core::bulk::{apply_batch, apply_batch_auto_with, replay_adaptive_with, Op};
    use nf2_core::kernel::NestKernel;

    let total_ops = total_ops.max(1_000);
    let mut report = Report::new(
        "E16",
        "Streaming ingest: op trace replayed through apply_batch_auto",
        &[
            "phase",
            "ops",
            "batches",
            "rebuilds",
            "elapsed ms",
            "Kops/s",
            "nf-tuples",
            "|R*|",
        ],
    );

    // Product-structured base (Fig. 1 R1 shape) so nesting pays off at
    // scale: `students × courses_per × clubs_per` rows ≈ `total_ops`.
    let students = (total_ops / 10).max(10);
    let gen_start = Instant::now();
    let w = workload::university(students, 5, 400, 2, 40, 16);
    let gen_ms = gen_start.elapsed().as_secs_f64() * 1e3;
    let order = NestOrder::identity(3);
    let schema = w.flat.schema().clone();
    let mut kernel = NestKernel::new();
    let mut cost = CostCounter::new();

    // Phase 1 — cold ingest: the base rows as a shuffled insert stream,
    // replayed from empty in adaptive batches (each batch grows with the
    // relation, so the auto strategy keeps choosing the kernel rebuild).
    let mut stream: Vec<Op> = w.flat.rows().cloned().map(Op::Insert).collect();
    let mut state = 0x1657_u64;
    for i in (1..stream.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        stream.swap(i, (state >> 33) as usize % (i + 1));
    }
    let mut canon = CanonicalRelation::new(schema, order.clone()).unwrap();
    let min_batch = 4_096usize.min(stream.len());
    let start = Instant::now();
    let (batches, rebuilds) =
        replay_adaptive_with(&mut kernel, &mut canon, &stream, min_batch, &mut cost).unwrap();
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        canon.flat_count(),
        w.flat.len() as u128,
        "every streamed row must land"
    );
    report.push_row(vec![
        "cold ingest (adaptive batches)".into(),
        stream.len().to_string(),
        batches.to_string(),
        rebuilds.to_string(),
        format!("{ingest_ms:.1}"),
        format!("{:.0}", stream.len() as f64 / ingest_ms.max(0.001)),
        canon.tuple_count().to_string(),
        canon.flat_count().to_string(),
    ]);

    // Phase 2 — steady-state churn: a mixed trace rewriting ~60% of R*,
    // applied as one batch; `should_rebuild` picks the kernel re-nest.
    let churn_ops = workload::op_trace(&w, (w.flat.len() * 3 / 5).max(1), 30, 61);
    let start = Instant::now();
    let (_, rebuilt) =
        apply_batch_auto_with(&mut kernel, &mut canon, &churn_ops, &mut cost).unwrap();
    let churn_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(rebuilt, "a 60% churn batch must take the rebuild arm");
    report.push_row(vec![
        "steady churn (auto -> re-nest)".into(),
        churn_ops.len().to_string(),
        "1".into(),
        "1".into(),
        format!("{churn_ms:.1}"),
        format!("{:.0}", churn_ops.len() as f64 / churn_ms.max(0.001)),
        canon.tuple_count().to_string(),
        canon.flat_count().to_string(),
    ]);

    // Phase 3 — the §4 scale limit: a small forced-incremental batch.
    // Every recons pays a candidate scan over all NF² tuples, so the
    // per-op cost grows with the relation — the wall the ROADMAP's
    // sharded-ingest follow-up has to break through.
    let probe_ops = workload::op_trace(&w, 128.min(total_ops), 50, 62);
    let mut probe_cost = CostCounter::new();
    let start = Instant::now();
    apply_batch(&mut canon, &probe_ops, &mut probe_cost).unwrap();
    let probe_ms = start.elapsed().as_secs_f64() * 1e3;
    report.push_row(vec![
        "§4 incremental probe".into(),
        probe_ops.len().to_string(),
        "1".into(),
        "0".into(),
        format!("{probe_ms:.1}"),
        format!("{:.0}", probe_ops.len() as f64 / probe_ms.max(0.001)),
        canon.tuple_count().to_string(),
        canon.flat_count().to_string(),
    ]);

    // Small runs re-verify canonicity from scratch; full-scale runs rely
    // on the property suite (the re-check would double the runtime).
    if total_ops <= 50_000 {
        canon.verify().unwrap();
    }
    report.note(format!(
        "Base workload generated in {gen_ms:.1} ms ({} rows; seed-deterministic). One shared \
         NestKernel served every rebuild, so batch N reuses batch N-1's sort/intern buffers. \
         The incremental probe averaged {:.0} candidate probes/op over {} nf-tuples — \
         §4 maintenance cost scales with the tuple count, which is the scale wall the \
         sharded-ingest follow-up targets (set NF2_E16_OPS to rescale this experiment).",
        w.flat.len(),
        probe_cost.candidate_probes as f64 / probe_ops.len().max(1) as f64,
        canon.tuple_count(),
    ));
    report
}

/// E17 — the Engine/Session API payoff: a point-SELECT hot loop served
/// three ways.
///
/// The legacy `Database::run` path re-lexes, re-parses and re-optimizes
/// every call and materializes + renders the full result relation before
/// the caller sees a row. `Prepared::execute` compiles once and only
/// binds `?` parameters per call; `Prepared::query` additionally streams
/// the result through a cursor instead of rendering it. Same statement,
/// same results (asserted), different APIs — the speedup column is the
/// cost of the string-in/string-out surface.
///
/// `NF2_E17_ITERS` overrides the per-arm call count (default 3000).
pub fn e17_prepared_hot_loop() -> Report {
    let iters = std::env::var("NF2_E17_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000usize);
    e17_with(iters)
}

/// [`e17_prepared_hot_loop`] at an explicit call count (tests run it
/// small). Returns the report; the `speedup` column of the
/// `count: Prepared::execute` row is the acceptance number.
pub fn e17_with(iters: usize) -> Report {
    use nf2_query::{Engine, Output};

    let iters = iters.max(100);
    let mut report = Report::new(
        "E17",
        "Prepared-statement hot loop: parse-per-call vs Prepared::execute vs Cursor",
        &["arm", "calls", "total ms", "us/call", "speedup vs run"],
    );

    // A small serving-shaped instance: point lookups on it are
    // plan-bound, which is exactly the regime prepared statements exist
    // for. 64 students x 3 courses drawn from a 16-course pool, each
    // course taught by one of four profs (the joined dimension table).
    let engine = Engine::new();
    let students = 64u32;
    let sc_rows: Vec<Vec<String>> = (0..students)
        .flat_map(|s| (0..3u32).map(move |c| vec![format!("s{s}"), format!("c{}", (s + c) % 16)]))
        .collect();
    {
        let mut session = engine.session();
        session
            .run("CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course)")
            .unwrap();
        session.run("CREATE TABLE cp (Course, Prof)").unwrap();
        session.run("CREATE TABLE pd (Prof, Dept)").unwrap();
        for row in &sc_rows {
            session
                .run(&format!(
                    "INSERT INTO sc VALUES ('{}', '{}')",
                    row[0], row[1]
                ))
                .unwrap();
        }
        for c in 0..16u32 {
            session
                .run(&format!("INSERT INTO cp VALUES ('c{c}', 'p{}')", c % 4))
                .unwrap();
        }
        for p in 0..4u32 {
            session
                .run(&format!("INSERT INTO pd VALUES ('p{p}', 'd{}')", p % 2))
                .unwrap();
        }
    }
    let session = &mut engine.session();
    // The hot statement: a point lookup joining the dimension table with
    // an IN filter, as a serving tier would issue it — the plan is where
    // the one-shot path pays (selection pushdown re-derived per call).
    // COUNT for the acceptance loop (both arms do identical result work:
    // none), plus a fetch variant for materialize-vs-stream.
    let where_tail =
        "Dept = 'd0' AND Prof IN ('p0', 'p1') AND Course IN ('c0', 'c1', 'c2', 'c3', 'c4', 'c5')";
    let count_sql = |s: &str| {
        format!("SELECT COUNT(*) FROM sc JOIN cp JOIN pd WHERE Student = '{s}' AND {where_tail}")
    };
    let fetch_sql = |s: &str| {
        format!(
            "SELECT Course, Prof FROM sc JOIN cp JOIN pd WHERE Student = '{s}' AND {where_tail}"
        )
    };
    let count_prepared =
        format!("SELECT COUNT(*) FROM sc JOIN cp JOIN pd WHERE Student = ? AND {where_tail}");
    let fetch_prepared =
        format!("SELECT Course, Prof FROM sc JOIN cp JOIN pd WHERE Student = ? AND {where_tail}");
    let student_of = |i: usize| format!("s{}", i as u32 % students);

    // Results must agree before anything is timed.
    let mut count_stmt = session.prepare(&count_prepared).unwrap();
    let mut fetch_stmt = session.prepare(&fetch_prepared).unwrap();
    for i in 0..8 {
        let s = student_of(i);
        assert_eq!(
            session.run(&count_sql(&s)).unwrap(),
            count_stmt.execute(session, &[s.as_str()]).unwrap(),
            "count arms must agree on {s}"
        );
        assert_eq!(
            session.run(&fetch_sql(&s)).unwrap(),
            fetch_stmt.execute(session, &[s.as_str()]).unwrap(),
            "fetch arms must agree on {s}"
        );
    }

    let timed = |f: &mut dyn FnMut(usize)| -> f64 {
        let start = Instant::now();
        for i in 0..iters {
            f(i);
        }
        start.elapsed().as_secs_f64() * 1e3
    };

    // Group 1 — the acceptance loop: COUNT point lookup.
    let count_run_ms = timed(&mut |i| {
        let out = session.run(&count_sql(&student_of(i))).unwrap();
        assert!(matches!(out, Output::Count(_)));
    });
    let count_exec_ms = timed(&mut |i| {
        let s = student_of(i);
        let out = count_stmt.execute(session, &[s.as_str()]).unwrap();
        assert!(matches!(out, Output::Count(_)));
    });

    // Group 2 — the fetch loop: same lookup returning its rows.
    let fetch_run_ms = timed(&mut |i| {
        let out = session.run(&fetch_sql(&student_of(i))).unwrap();
        assert!(matches!(out, Output::Relation { .. }));
    });
    let fetch_exec_ms = timed(&mut |i| {
        let s = student_of(i);
        let out = fetch_stmt.execute(session, &[s.as_str()]).unwrap();
        assert!(matches!(out, Output::Relation { .. }));
    });
    let mut streamed_tuples = 0usize;
    let fetch_cursor_ms = timed(&mut |i| {
        let s = student_of(i);
        let cursor = fetch_stmt.query(session, &[s.as_str()]).unwrap();
        streamed_tuples += cursor.count();
    });
    assert!(streamed_tuples > 0, "cursors produced tuples");

    for (arm, ms, base) in [
        ("count: run (parse per call)", count_run_ms, count_run_ms),
        ("count: Prepared::execute", count_exec_ms, count_run_ms),
        ("fetch: run (parse per call)", fetch_run_ms, fetch_run_ms),
        ("fetch: Prepared::execute", fetch_exec_ms, fetch_run_ms),
        (
            "fetch: Prepared::query (cursor)",
            fetch_cursor_ms,
            fetch_run_ms,
        ),
    ] {
        report.push_row(vec![
            arm.into(),
            iters.to_string(),
            format!("{ms:.1}"),
            format!("{:.2}", ms * 1e3 / iters as f64),
            format!("{:.1}x", base / ms.max(1e-9)),
        ]);
    }
    report.note(format!(
        "Same point lookup (join + equality + IN filters) on every arm over {} sc rows \
         ({} NF² tuples); outputs asserted identical before timing. Prepared::execute \
         skips lex/parse/plan/optimize — in particular the per-call selection-pushdown \
         rewrite — binding slots into the cached plan in place (re-planning only on \
         DDL). In the fetch group, Prepared::query additionally skips result \
         materialization and rendering by streaming NF² tuples through the scan-counted \
         cursor pipeline. Set NF2_E17_ITERS to rescale.",
        sc_rows.len(),
        session
            .engine()
            .table("sc")
            .map(|t| t.tuple_count())
            .unwrap_or(0),
    ));
    report
}

/// E18 — the sharded canonical store: ingest and point maintenance,
/// sharded vs unsharded.
///
/// The same workload runs twice through `nf2_core::shard`'s
/// `ShardedCanonical` — once with one shard (the unsharded baseline:
/// identical code path, no threads) and once with several. Two phases
/// per arm:
///
/// * **cold ingest** — the base rows as a shuffled insert stream through
///   `replay_adaptive` (adaptive batches; the rebuild arm re-nests each
///   shard on its own kernel, shards in parallel under
///   `std::thread::scope`);
/// * **§4 point-maintenance probe** — a mixed insert/delete trace
///   applied incrementally; `candt`/`searcht` scan only the routed
///   shard, so candidate probes per op drop by ~the shard count (the
///   E16 scale wall, broken).
///
/// `NF2_E18_OPS` overrides the base row count (default 500 000); CI
/// smoke-runs it reduced. The per-shard probe/recons breakdown is
/// reported so the JSON baseline captures the shard balance.
pub fn e18_sharded_maintenance() -> Report {
    let ops = std::env::var("NF2_E18_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000usize);
    e18_with(ops)
}

/// [`e18_sharded_maintenance`] at an explicit scale (tests run it
/// small). Small runs (≤ 50 000 rows) also assert sharded ≡ unsharded
/// tuple-identity and re-verify every shard invariant from scratch.
pub fn e18_with(total_ops: usize) -> Report {
    use nf2_core::bulk::Op;
    use nf2_core::shard::{MaintenanceCost, ShardSpec, ShardedCanonical};

    let total_ops = total_ops.max(2_000);
    const PROBE_OPS: usize = 96;
    let mut report = Report::new(
        "E18",
        "Sharded canonical store: parallel ingest + routed §4 maintenance",
        &[
            "arm",
            "shards",
            "ops",
            "elapsed ms",
            "Kops/s",
            "probes/op",
            "nf-tuples (stored)",
        ],
    );

    // The E16 workload shape: product-structured rows whose outermost
    // nest attribute (Club under the identity order) spreads across a
    // pool wide enough to hash-balance.
    let students = (total_ops / 10).max(10);
    let w = workload::university(students, 5, 400, 2, 64, 18);
    let order = NestOrder::identity(3);
    let schema = w.flat.schema().clone();

    // One shuffled insert stream, shared by every arm.
    let mut stream: Vec<Op> = w.flat.rows().cloned().map(Op::Insert).collect();
    let mut state = 0x18E8u64;
    for i in (1..stream.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        stream.swap(i, (state >> 33) as usize % (i + 1));
    }
    let probe_trace = workload::op_trace(&w, PROBE_OPS, 50, 181);

    let shard_counts = [1usize, 4];
    let mut ingest_ms = Vec::new();
    let mut probes_per_op = Vec::new();
    let mut relations = Vec::new();
    for &shards in &shard_counts {
        let spec = ShardSpec::hash(shards).expect("positive shard count");
        let mut canon = ShardedCanonical::new(schema.clone(), order.clone(), spec).unwrap();
        let mut cost = MaintenanceCost::new(shards);

        // Phase 1 — cold ingest through adaptive parallel batches.
        let start = Instant::now();
        let (_, rebuilds) = canon
            .replay_adaptive(&stream, 4_096.min(stream.len()), &mut cost)
            .unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(canon.flat_count(), w.flat.len() as u128, "every row lands");
        assert!(rebuilds > 0, "cold ingest exercises the rebuild arm");
        ingest_ms.push(ms);
        report.push_row(vec![
            "cold ingest (parallel rebuild)".into(),
            shards.to_string(),
            stream.len().to_string(),
            format!("{ms:.1}"),
            format!("{:.0}", stream.len() as f64 / ms.max(0.001)),
            "-".into(),
            canon.tuple_count().to_string(),
        ]);

        // Phase 2 — §4 incremental probe: candt routed to one shard.
        let mut probe_cost = MaintenanceCost::new(shards);
        let start = Instant::now();
        for op in &probe_trace {
            match op {
                Op::Insert(row) => {
                    canon.insert_counted(row.clone(), &mut probe_cost).unwrap();
                }
                Op::Delete(row) => {
                    canon.delete_counted(row, &mut probe_cost).unwrap();
                }
            }
        }
        let probe_ms = start.elapsed().as_secs_f64() * 1e3;
        let per_op = probe_cost.total.candidate_probes as f64 / probe_trace.len() as f64;
        probes_per_op.push(per_op);
        report.push_row(vec![
            "§4 incremental probe".into(),
            shards.to_string(),
            probe_trace.len().to_string(),
            format!("{probe_ms:.1}"),
            format!("{:.0}", probe_trace.len() as f64 / probe_ms.max(0.001)),
            format!("{per_op:.0}"),
            canon.tuple_count().to_string(),
        ]);

        // Per-shard breakdown (multi-shard arms): balance is visible in
        // the committed JSON baseline. The `ops` column is the number of
        // trace ops routed to the shard; `probes/op` divides by the whole
        // trace, so the column sums to the aggregate row above.
        if shards > 1 {
            let mut routed = vec![0usize; shards];
            for op in &probe_trace {
                routed[canon.router().route_row(op.row())] += 1;
            }
            for (idx, c) in probe_cost.per_shard.iter().enumerate() {
                report.push_row(vec![
                    format!("probe breakdown: shard {idx}"),
                    shards.to_string(),
                    routed[idx].to_string(),
                    "-".into(),
                    "-".into(),
                    format!(
                        "{:.0}",
                        c.candidate_probes as f64 / probe_trace.len() as f64
                    ),
                    canon.shard(idx).tuple_count().to_string(),
                ]);
            }
        }
        relations.push(canon);
    }

    // Small-scale runs prove exactness end to end; full-scale runs lean
    // on the property suite (the O(T²) re-validation would dominate).
    if total_ops <= 50_000 {
        let merged: Vec<_> = relations.iter().map(|c| c.to_relation()).collect();
        for (i, rel) in merged.iter().enumerate().skip(1) {
            assert_eq!(
                rel, &merged[0],
                "sharded ({} shards) and unsharded canonical forms must be tuple-identical",
                shard_counts[i]
            );
        }
        for canon in &relations {
            canon.verify().unwrap();
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = ingest_ms[0] / ingest_ms[1].max(1e-9);
    let probe_drop = probes_per_op[0] / probes_per_op[1].max(1e-9);
    report.note(format!(
        "{} base rows; identical code path for every arm (1 shard = the unsharded \
         baseline, no threads). Parallel batch-rebuild ingest speedup at {} shards: \
         {speedup:.2}x on {cores} available core(s) — thread-level speedup requires \
         cores; the candidate-probe drop is machine-independent: {:.0} -> {:.0} \
         probes/op ({probe_drop:.2}x, ~proportional to the shard count). Set \
         NF2_E18_OPS to rescale.",
        w.flat.len(),
        shard_counts[1],
        probes_per_op[0],
        probes_per_op[1],
    ));
    report
}

/// E19 — ORDER BY as a streaming top-k, and shard-pruned scans.
///
/// Two phases, matching the two PR-5 operators:
///
/// * **top-k vs full sort** — the same `ORDER BY`-shaped workload over
///   one borrowed scan: the blocking sort drains and sorts every tuple;
///   the bounded-heap top-k pulls the same scan exactly once but
///   retains ≤ k tuples (`TopKStats` pins both the single pull and the
///   heap bound). Wall-clock and the retained-tuple ceiling are
///   reported per k.
/// * **shard-pruned scans** — a 4-shard engine answering outer-
///   attribute equality / IN queries through the compiled cursor
///   pipeline: the predicate routes to its shard set and the probe
///   counter shows ~(values / shards) of the stored tuples touched,
///   against the full-scan baseline.
///
/// `NF2_E19_ROWS` overrides the base row count (default 300 000); CI
/// smoke-runs it reduced. Small runs (≤ 50 000 rows) also assert
/// top-k ≡ sort-then-truncate tuple-identity and pruned ≡ unpruned
/// row-identity.
pub fn e19_topk_pruning() -> Report {
    let rows = std::env::var("NF2_E19_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000usize);
    e19_with(rows)
}

/// [`e19_topk_pruning`] at an explicit scale (tests run it small).
pub fn e19_with(total_rows: usize) -> Report {
    use nf2_algebra::stream::{RelStream, SortDir, TopKStats, TupleOrder};
    use nf2_core::shard::ShardSpec;
    use nf2_query::Engine;
    use std::sync::Arc;

    let total_rows = total_rows.max(2_000);
    let mut report = Report::new(
        "E19",
        "ORDER BY top-k streaming + shard-pruned scans",
        &[
            "arm",
            "k / predicate",
            "tuples stored",
            "elapsed ms",
            "Ktuples/s",
            "retained / probes",
        ],
    );

    // ---- Phase 1: top-k vs full sort over one canonical relation. ----
    // `groups` tuples of 5 rows each; every group gets its own B-window
    // so canonicalization folds it into exactly one NF² tuple.
    let groups = (total_rows / 5).max(400);
    let schema = Schema::new("big", &["A", "B"]).unwrap();
    let flat = FlatRelation::from_rows(
        schema,
        (0..groups as u32)
            .flat_map(|g| (0..5u32).map(move |i| vec![Atom(g), Atom(1_000_000 + g * 5 + i)])),
    )
    .unwrap();
    let rel = canonical_of_flat(&flat, &NestOrder::identity(2));
    assert_eq!(rel.tuple_count(), groups);

    let sort_order = TupleOrder::by_atom_id(0, SortDir::Desc);
    let start = Instant::now();
    let sorted: Vec<NfTuple> = RelStream::scan(&rel)
        .sorted(sort_order.clone())
        .map(|t| t.into_owned())
        .collect();
    let sort_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sorted.len(), groups);
    report.push_row(vec![
        "full blocking sort".into(),
        "-".into(),
        groups.to_string(),
        format!("{sort_ms:.2}"),
        format!("{:.0}", groups as f64 / sort_ms.max(0.001)),
        groups.to_string(),
    ]);

    let mut topk10_ms = f64::NAN;
    for k in [1usize, 10, 100] {
        let stats = Arc::new(TopKStats::default());
        let start = Instant::now();
        let top: Vec<NfTuple> = RelStream::scan(&rel)
            .top_k_with_stats(sort_order.clone(), k, stats.clone())
            .map(|t| t.into_owned())
            .collect();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if k == 10 {
            topk10_ms = ms;
        }
        let peak = stats
            .peak_retained
            .load(std::sync::atomic::Ordering::Relaxed);
        let pulled = stats.pulled.load(std::sync::atomic::Ordering::Relaxed);
        assert!(peak <= k, "heap bound violated: {peak} > {k}");
        assert_eq!(pulled, groups, "the scan is pulled exactly once");
        assert_eq!(top.len(), k.min(groups));
        // Exactness: the top-k prefix IS the sorted prefix.
        assert_eq!(top.as_slice(), &sorted[..k.min(groups)]);
        report.push_row(vec![
            "streaming top-k (bounded heap)".into(),
            format!("k={k}"),
            groups.to_string(),
            format!("{ms:.2}"),
            format!("{:.0}", groups as f64 / ms.max(0.001)),
            format!("{peak} retained"),
        ]);
    }
    let sort_speedup = sort_ms / topk10_ms.max(1e-9);
    if groups >= 20_000 {
        // The heap does strictly less work than the sort at scale; the
        // bar is deliberately modest so machine noise cannot trip it.
        assert!(
            sort_speedup > 1.2,
            "top-10 must beat the full sort at {groups} tuples: \
             sort {sort_ms:.2} ms vs top-k {topk10_ms:.2} ms"
        );
    }

    // ---- Phase 2: shard-pruned scans through the SQL surface. ----
    const SHARDS: usize = 4;
    const OUTER_VALUES: usize = 64;
    let engine = Engine::builder().shards(SHARDS).build().unwrap();
    let srows: Vec<Vec<String>> = (0..total_rows)
        .map(|i| vec![format!("a{i:07}"), format!("b{:03}", i % OUTER_VALUES)])
        .collect();
    let srefs: Vec<Vec<&str>> = srows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let table = NfTable::bulk_load_strs_sharded(
        "t",
        &["A", "B"],
        srefs,
        NestOrder::identity(2),
        ShardSpec::hash(SHARDS).unwrap(),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    let session = engine.session();
    let stored: usize = session.engine().table("t").unwrap().sharded().tuple_count();

    let mut probe_counts: Vec<(String, u64, f64, u128)> = Vec::new();
    for (label, sql) in [
        ("full scan", "SELECT COUNT(*) FROM t".to_owned()),
        (
            "outer equality (1 value)",
            "SELECT COUNT(*) FROM t WHERE B = 'b007'".to_owned(),
        ),
        (
            "outer IN (2 values)",
            "SELECT COUNT(*) FROM t WHERE B IN ('b007', 'b033')".to_owned(),
        ),
    ] {
        let before = session.engine().table("t").unwrap().stats().units_probed;
        let start = Instant::now();
        let n = session.query(&sql).unwrap().flat_count();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let probed = session.engine().table("t").unwrap().stats().units_probed - before;
        probe_counts.push((label.to_owned(), probed, ms, n));
        report.push_row(vec![
            "pruned scan".into(),
            label.into(),
            stored.to_string(),
            format!("{ms:.2}"),
            format!("{:.0}", probed as f64 / ms.max(0.001)),
            format!("{probed} probes"),
        ]);
    }
    let full = probe_counts[0].1.max(1);
    let eq = probe_counts[1].1.max(1);
    let in2 = probe_counts[2].1.max(1);
    assert!(
        eq * 2 <= full,
        "equality on the outer attribute must prune: {eq} of {full} probes"
    );
    assert!(in2 <= 2 * eq + eq / 2, "IN(2) touches ~2 shards' worth");
    // Row counts are exact regardless of pruning.
    let b007_rows = (0..total_rows).filter(|i| i % OUTER_VALUES == 7).count();
    assert_eq!(probe_counts[1].3, b007_rows as u128);

    if total_rows <= 50_000 {
        // Small-scale runs re-verify pruned ≡ unpruned end to end.
        let plain = Engine::builder().shards(1).build().unwrap();
        let srefs: Vec<Vec<&str>> = srows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let table = NfTable::bulk_load_strs(
            "t",
            &["A", "B"],
            srefs,
            NestOrder::identity(2),
            plain.dict().clone(),
        )
        .unwrap();
        plain.attach_table(table).unwrap();
        let psession = plain.session();
        for sql in [
            "SELECT COUNT(*) FROM t WHERE B = 'b007'",
            "SELECT COUNT(*) FROM t WHERE B IN ('b007', 'b033')",
        ] {
            assert_eq!(
                session.query(sql).unwrap().flat_count(),
                psession.query(sql).unwrap().flat_count(),
                "{sql}"
            );
        }
    }

    report.note(format!(
        "Phase 1: {groups} canonical tuples; the bounded-heap top-k pulls the scan \
         exactly once and retains ≤ k tuples (asserted via TopKStats), vs the blocking \
         sort's full materialization — top-10 speedup {sort_speedup:.2}x. Phase 2: \
         {total_rows} rows hash-partitioned on the outer attribute across {SHARDS} \
         shards; probes full scan {} -> equality {} ({:.2}x drop, ~1/{SHARDS} of the \
         tuples) -> IN(2) {} (~2 shards). Set NF2_E19_ROWS to rescale.",
        full,
        eq,
        full as f64 / eq as f64,
        in2,
    ));
    report
}

/// E20 — segment-merge top-k and zone-map segment skipping.
///
/// Exercises the PR 7 segment subsystem end to end through the SQL
/// surface:
///
/// * **k-way segment merge vs bounded heap** — the same
///   `ORDER BY B, A LIMIT 10` cursor on engines of 1, 4 and 16 shards.
///   With fresh segments and an id-ordered dictionary the cursor runs
///   the streaming k-way merge, which stops after ~(k + shards) pulls;
///   one point INSERT then marks a shard's segments stale and the very
///   same SQL falls back to the bounded heap, which drains every
///   tuple. Probe counters pin the asymmetry, and the two arms must be
///   tuple-identical.
/// * **zone-map segment skipping** — equality on the *non-routing*
///   attribute of a clustered 4-shard table: shard pruning cannot help
///   (the predicate does not route), but per-segment min/max metadata
///   skips every segment whose key range cannot contain the probe
///   value. At least half of all segments must be skipped, with the
///   probe drop against the full scan asserted, and the executed skip
///   count cross-checked against the `zone_skip_counts` predictor.
///
/// `NF2_E20_ROWS` overrides the base row count (default 1 000 000); CI
/// smoke-runs it reduced. The wall-clock bar (merge beats heap at 4
/// shards) is asserted at ≥ 150 000 canonical tuples only; every
/// probe-count and identity invariant asserts at all scales.
pub fn e20_topk_merge_zones() -> Report {
    let rows = std::env::var("NF2_E20_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000usize);
    e20_with(rows)
}

/// [`e20_topk_merge_zones`] at an explicit scale (tests run it small).
pub fn e20_with(total_rows: usize) -> Report {
    use nf2_core::shard::ShardSpec;
    use nf2_query::Engine;

    let total_rows = total_rows.max(4_000);
    let mut report = Report::new(
        "E20",
        "segment merge top-k + zone-map segment skipping",
        &[
            "arm",
            "shards / predicate",
            "tuples stored",
            "elapsed ms",
            "probes",
            "segments skipped",
        ],
    );

    // ---- Phase 1: streaming k-way merge vs bounded-heap fallback. ----
    // 5-row groups fold into one canonical tuple per distinct B value.
    // Every string is interned in ascending order *before* the load so
    // the dictionary stays id-ordered — a dynamic precondition of the
    // merge path (`a…` values first, then `g…` groups, both monotone).
    let groups = (total_rows / 5).max(800);
    let rows_p1: Vec<[String; 2]> = (0..groups)
        .flat_map(|g| (0..5usize).map(move |i| [format!("a{:08}", g * 5 + i), format!("g{g:07}")]))
        .collect();
    let sql = "SELECT * FROM t ORDER BY B, A LIMIT 10";
    let mut merge_ms_at_4 = f64::NAN;
    let mut heap_ms_at_4 = f64::NAN;
    for shards in [1usize, 4, 16] {
        let engine = Engine::builder().shards(shards).build().unwrap();
        for r in &rows_p1 {
            engine.dict().intern(&r[0]);
        }
        for r in &rows_p1 {
            engine.dict().intern(&r[1]);
        }
        assert!(
            engine.dict().is_id_ordered(),
            "the pre-interned universe is sorted, so ids follow strings"
        );
        let srefs: Vec<Vec<&str>> = rows_p1
            .iter()
            .map(|r| vec![r[0].as_str(), r[1].as_str()])
            .collect();
        let table = NfTable::bulk_load_strs_sharded(
            "t",
            &["A", "B"],
            srefs,
            NestOrder::identity(2),
            ShardSpec::hash(shards).unwrap(),
            engine.dict().clone(),
        )
        .unwrap();
        engine.attach_table(table).unwrap();
        let mut session = engine.session();
        let mut prep = session.prepare(sql).unwrap();
        let plan = prep.explain(&session).unwrap();
        assert!(
            plan.contains("streaming k-way segment merge, limit 10"),
            "a sort-key-prefix ORDER BY over a bare scan must plan the merge:\n{plan}"
        );
        let stored = session.engine().table("t").unwrap().sharded().tuple_count();
        assert_eq!(stored, groups);

        let stats0 = session.engine().table("t").unwrap().stats();
        let start = Instant::now();
        let merged: Vec<NfTuple> = session
            .query(sql)
            .unwrap()
            .map(|t| t.into_owned())
            .collect();
        let merge_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats1 = session.engine().table("t").unwrap().stats();
        let merge_probed = stats1.units_probed - stats0.units_probed;
        let merge_lookups = stats1.lookups - stats0.lookups;
        assert_eq!(merged.len(), 10);
        assert_eq!(
            merge_lookups, shards as u64,
            "the merge opens one probe-counted scan per shard"
        );

        // One §4 point insert leaves the routed shard's segments stale;
        // both new values sort after the existing universe, so the
        // dictionary stays id-ordered and the top-10 answer unchanged —
        // the fallback below is forced by staleness alone.
        session
            .run("INSERT INTO t VALUES ('zz_a', 'zz_b')")
            .unwrap();
        {
            let t = session.engine().table("t").unwrap();
            assert!(
                (0..t.shard_count()).any(|s| !t.sharded().shard_segments(s).is_fresh()),
                "the point insert must leave a shard's segments stale"
            );
        }
        let stats0 = session.engine().table("t").unwrap().stats();
        let start = Instant::now();
        let heaped: Vec<NfTuple> = session
            .query(sql)
            .unwrap()
            .map(|t| t.into_owned())
            .collect();
        let heap_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats1 = session.engine().table("t").unwrap().stats();
        let heap_probed = stats1.units_probed - stats0.units_probed;
        assert_eq!(
            heaped, merged,
            "the stale fallback must stay tuple-identical"
        );
        assert!(
            merge_probed * 10 <= heap_probed,
            "the merge must stop early: {merge_probed} vs heap {heap_probed} \
             probes at {shards} shard(s)"
        );

        report.push_row(vec![
            "streaming k-way merge".into(),
            format!("{shards} shard(s)"),
            stored.to_string(),
            format!("{merge_ms:.3}"),
            format!("{merge_probed} probes"),
            "-".into(),
        ]);
        report.push_row(vec![
            "bounded heap (stale fallback)".into(),
            format!("{shards} shard(s)"),
            (stored + 1).to_string(),
            format!("{heap_ms:.3}"),
            format!("{heap_probed} probes"),
            "-".into(),
        ]);
        if shards == 4 {
            merge_ms_at_4 = merge_ms;
            heap_ms_at_4 = heap_ms;
        }
    }
    if groups >= 150_000 {
        assert!(
            merge_ms_at_4 < heap_ms_at_4,
            "the k-way merge must beat the heap at 4 shards at full scale: \
             merge {merge_ms_at_4:.3} ms vs heap {heap_ms_at_4:.3} ms"
        );
    }

    // ---- Phase 2: zone-map skipping on a non-routing predicate. ----
    // 512 B-groups with A strictly increasing over (group, row), so the
    // canonical sort clusters each shard's A ranges and per-segment
    // min/max metadata is tight. The predicate is on A — the
    // *non*-routing attribute — so shard pruning is no help and any
    // probe drop is the zone maps' doing.
    const ZSHARDS: usize = 4;
    const ZGROUPS: usize = 512;
    let per_group = (total_rows / ZGROUPS).max(4);
    let zrows: Vec<[String; 2]> = (0..ZGROUPS)
        .flat_map(|g| {
            (0..per_group).map(move |j| [format!("a{:09}", g * per_group + j), format!("g{g:04}")])
        })
        .collect();
    let engine = Engine::builder().shards(ZSHARDS).build().unwrap();
    let srefs: Vec<Vec<&str>> = zrows
        .iter()
        .map(|r| vec![r[0].as_str(), r[1].as_str()])
        .collect();
    let table = NfTable::bulk_load_strs_sharded(
        "t",
        &["A", "B"],
        srefs,
        NestOrder::identity(2),
        ShardSpec::hash(ZSHARDS).unwrap(),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    // Re-tile to ~8 segments per shard so skipping stays observable at
    // CI's reduced scale.
    let tuples_per_shard = (ZGROUPS / ZSHARDS).max(1);
    engine
        .table("t")
        .unwrap()
        .set_segment_rows((tuples_per_shard / 8).max(1));
    let session = engine.session();
    let total_segments: usize = {
        let t = session.engine().table("t").unwrap();
        (0..t.shard_count())
            .map(|s| t.sharded().shard_segments(s).segment_count())
            .sum()
    };
    assert!(
        total_segments >= 8,
        "re-tiling must produce enough segments to skip: {total_segments}"
    );

    let stats0 = session.engine().table("t").unwrap().stats();
    let start = Instant::now();
    let full_rows = session
        .query("SELECT COUNT(*) FROM t")
        .unwrap()
        .flat_count();
    let full_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats1 = session.engine().table("t").unwrap().stats();
    let full_probed = stats1.units_probed - stats0.units_probed;
    assert_eq!(full_rows, (ZGROUPS * per_group) as u128);
    report.push_row(vec![
        "full scan".into(),
        "COUNT(*)".into(),
        ZGROUPS.to_string(),
        format!("{full_ms:.3}"),
        format!("{full_probed} probes"),
        format!("0/{total_segments}"),
    ]);

    let needle = format!("a{:09}", (ZGROUPS * per_group) / 2);
    let zsql = format!("SELECT COUNT(*) FROM t WHERE A = '{needle}'");
    let stats0 = session.engine().table("t").unwrap().stats();
    let start = Instant::now();
    let eq_rows = session.query(&zsql).unwrap().flat_count();
    let eq_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats1 = session.engine().table("t").unwrap().stats();
    let eq_probed = stats1.units_probed - stats0.units_probed;
    let skipped = stats1.segments_skipped - stats0.segments_skipped;
    assert_eq!(eq_rows, 1, "A values are unique");
    assert!(
        skipped as usize * 2 >= total_segments,
        "zone maps must skip at least half the segments: {skipped}/{total_segments}"
    );
    assert!(
        eq_probed * 2 <= full_probed,
        "zone skipping must drop probes: {eq_probed} of {full_probed}"
    );
    // The dry-run predictor agrees with what execution actually skipped.
    {
        let t = session.engine().table("t").unwrap();
        let atom = session
            .engine()
            .dict()
            .lookup(&needle)
            .expect("needle was loaded");
        let zones = vec![(0, ValueSet::singleton(atom))];
        let shards_all: Vec<usize> = (0..t.shard_count()).collect();
        let per_shard = t.zone_skip_counts(&shards_all, &zones);
        let (sk, tot) = per_shard
            .iter()
            .fold((0usize, 0usize), |(a, b), (s, t)| (a + s, b + t));
        assert_eq!(tot, total_segments);
        assert_eq!(sk as u64, skipped, "predictor must match executed skips");
    }
    report.push_row(vec![
        "zoned equality (non-routing attr)".into(),
        format!("A = '{needle}'"),
        ZGROUPS.to_string(),
        format!("{eq_ms:.3}"),
        format!("{eq_probed} probes"),
        format!("{skipped}/{total_segments}"),
    ]);

    report.note(format!(
        "Phase 1: {groups} canonical tuples per engine; the fresh-segment cursor \
         runs the k-way merge (one probe-counted scan per shard, stops after \
         ~k+shards pulls), a single §4 insert forces the bounded-heap fallback \
         on identical SQL — tuple-identity and a ≥10x probe drop asserted at \
         1/4/16 shards. Phase 2: {ZGROUPS} clustered tuples across {ZSHARDS} \
         shards re-tiled into {total_segments} segments; a non-routing equality \
         skipped {skipped}/{total_segments} segments ({eq_probed} of \
         {full_probed} probes). Set NF2_E20_ROWS to rescale.",
    ));
    report
}

/// E21 — shard-snapshot MVCC: concurrent readers under a §4 op storm.
///
/// The concurrency subsystem's two load-bearing claims, measured:
///
/// * **Phase A (scaling)** — N reader threads share one `Arc<Engine>`
///   and hammer the E17 prepared point lookup while a writer thread
///   storms single-row INSERT/DELETEs at the same table. Readers pin
///   epoch snapshots instead of locking the table, so they never wait
///   on the writer and aggregate throughput grows with threads. Every
///   lookup's result is asserted against the serial answer — the storm
///   only touches rows outside the probed students, and snapshot
///   isolation keeps half-applied states invisible (the full
///   tuple-identity property is proptested in `tests/proptest_mvcc.rs`).
/// * **Phase B (per-shard isolation)** — the writer is confined to one
///   shard (all its rows route there through the Course routing
///   attribute) while readers run shard-pruned lookups against a
///   *different* shard. Installing a new shard-B version never touches
///   the pinned shard-A version, so the readers' probe counts during
///   the storm are asserted **exactly equal** to the serial baseline —
///   per query, not on average.
///
/// `NF2_E21_ITERS` overrides the per-thread lookup count (default 2000).
pub fn e21_mvcc_snapshot_readers() -> Report {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    use nf2_query::{Engine, Output};

    let iters = std::env::var("NF2_E21_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000usize)
        .max(100);
    let mut report = Report::new(
        "E21",
        "Shard-snapshot MVCC: reader scaling and per-shard writer isolation",
        &["arm", "work", "total ms", "rate", "check"],
    );

    // The E17 serving instance: 64 students x 3 courses from a 16-course
    // pool, on a 4-shard table routed by Course.
    let engine = Arc::new(Engine::builder().shards(4).build().unwrap());
    let students = 64u32;
    {
        let mut session = engine.session();
        session
            .run("CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course)")
            .unwrap();
        for s in 0..students {
            for c in 0..3u32 {
                session
                    .run(&format!(
                        "INSERT INTO sc VALUES ('s{s}', 'c{}')",
                        (s + c) % 16
                    ))
                    .unwrap();
            }
        }
    }
    let student_of = |i: usize| format!("s{}", i as u32 % students);

    // Phase A: N readers + 1 writer. The writer churns rows of students
    // the readers never probe ('w…'), so every lookup has one correct
    // answer (3 enrollments per student) at every epoch.
    let run_phase_a = |n_readers: usize| -> (f64, u64) {
        let done = AtomicBool::new(false);
        let writer_ops = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut session = engine.session();
                let mut i = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let (w, c) = (i % 8, i % 16);
                    session
                        .run(&format!("INSERT INTO sc VALUES ('w{w}', 'c{c}')"))
                        .unwrap();
                    session
                        .run(&format!(
                            "DELETE FROM sc WHERE Student = 'w{w}' AND Course = 'c{c}'"
                        ))
                        .unwrap();
                    writer_ops.fetch_add(2, Ordering::Relaxed);
                    i += 1;
                }
            });
            let readers: Vec<_> = (0..n_readers)
                .map(|r| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || {
                        let mut session = engine.session();
                        let mut stmt = session
                            .prepare("SELECT COUNT(*) FROM sc WHERE Student = ?")
                            .unwrap();
                        for i in 0..iters {
                            let s = student_of(r * 17 + i);
                            let out = stmt.execute(&mut session, &[s.as_str()]).unwrap();
                            assert_eq!(
                                out,
                                Output::Count(3),
                                "snapshot lookup of {s} under the storm"
                            );
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join().expect("reader thread panicked");
            }
            done.store(true, Ordering::Relaxed);
        });
        let ms = start.elapsed().as_secs_f64() * 1e3;
        (ms, writer_ops.load(Ordering::Relaxed))
    };

    let mut base_rate = 0f64;
    let mut last_rate = 0f64;
    for n in [1usize, 2, 4] {
        let (ms, ops) = run_phase_a(n);
        let rate = (n * iters) as f64 / (ms / 1e3);
        if n == 1 {
            base_rate = rate;
        }
        last_rate = rate;
        report.push_row(vec![
            format!("A: {n} reader(s) + writer storm"),
            format!("{} lookups", n * iters),
            format!("{ms:.1}"),
            format!("{rate:.0}/s"),
            format!("{:.2}x vs 1 reader, {ops} writer ops", rate / base_rate),
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            last_rate > 1.2 * base_rate,
            "snapshot readers must scale: 4 threads {last_rate:.0}/s vs 1 thread {base_rate:.0}/s"
        );
    }

    // Phase B: writer confined to one shard, readers pruned to another.
    // Pick two course values routing to different shards.
    let t = engine.table("sc").unwrap();
    let router = t.routing().clone();
    let course_shard = |c: u32| {
        let atom = engine
            .dict()
            .lookup(&format!("c{c}"))
            .expect("course interned by the seed");
        router.shards_for_values(&[atom])[0]
    };
    let read_course = 0u32;
    let read_shard = course_shard(read_course);
    let write_course = (1..16u32)
        .find(|&c| course_shard(c) != read_shard)
        .expect("4 hash shards cannot all coincide");
    let write_shard = course_shard(write_course);

    let probes_of = |queries: usize, concurrent_writer: bool| -> (u64, u64) {
        let done = AtomicBool::new(false);
        let writer_ops = AtomicU64::new(0);
        let before = engine.table("sc").unwrap().stats();
        std::thread::scope(|scope| {
            if concurrent_writer {
                scope.spawn(|| {
                    let mut session = engine.session();
                    let mut i = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        session
                            .run(&format!(
                                "INSERT INTO sc VALUES ('w{}', 'c{write_course}')",
                                i % 8
                            ))
                            .unwrap();
                        session
                            .run(&format!(
                                "DELETE FROM sc WHERE Student = 'w{}' AND Course = 'c{write_course}'",
                                i % 8
                            ))
                            .unwrap();
                        writer_ops.fetch_add(2, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            let readers: Vec<_> = (0..2usize)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || {
                        let mut session = engine.session();
                        let mut stmt = session
                            .prepare("SELECT COUNT(*) FROM sc WHERE Course = ?")
                            .unwrap();
                        let c = format!("c{read_course}");
                        for _ in 0..queries / 2 {
                            let out = stmt.execute(&mut session, &[c.as_str()]).unwrap();
                            assert!(
                                matches!(out, Output::Count(n) if n > 0),
                                "pruned lookup must keep finding its rows"
                            );
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join().expect("reader thread panicked");
            }
            done.store(true, Ordering::Relaxed);
        });
        let after = engine.table("sc").unwrap().stats();
        (
            after.units_probed - before.units_probed,
            writer_ops.load(Ordering::Relaxed),
        )
    };

    let queries = 400usize;
    let (serial_probes, _) = probes_of(queries, false);
    let (storm_probes, storm_ops) = probes_of(queries, true);
    assert!(
        storm_ops > 0,
        "the shard-{write_shard} writer must have run"
    );
    // The §4 storm never installs a shard-`read_shard` version, so the
    // pruned readers probed exactly what they probe serially.
    assert_eq!(
        storm_probes, serial_probes,
        "a writer on shard {write_shard} must not change probe counts of \
         readers pruned to shard {read_shard}"
    );
    report.push_row(vec![
        "B: pruned readers, serial".into(),
        format!("{queries} lookups on shard {read_shard}"),
        "-".into(),
        format!("{} probes/query", serial_probes as usize / queries),
        format!("{serial_probes} probes total"),
    ]);
    report.push_row(vec![
        format!("B: + writer storm on shard {write_shard}"),
        format!("{queries} lookups on shard {read_shard}"),
        "-".into(),
        format!("{} probes/query", storm_probes as usize / queries),
        format!("{storm_probes} probes total ({storm_ops} writer ops) — equal"),
    ]);

    report.note(format!(
        "One Arc<Engine>, 4 hash shards routed by Course. Phase A: each reader \
         thread runs the E17 prepared point lookup against snapshots pinned per \
         statement while a writer storms single-row §4 inserts/deletes; results \
         asserted correct at every epoch{}. Phase B: the writer's rows all route \
         to shard {write_shard}, the readers' queries prune to shard \
         {read_shard}; probe counts under the storm equal the serial baseline \
         exactly ({serial_probes} probes for {queries} lookups), because \
         installing a new shard version never disturbs a pinned one. Snapshot ≡ \
         serial-oracle tuple identity is proptested in tests/proptest_mvcc.rs. \
         Set NF2_E21_ITERS to rescale.",
        if cores >= 4 {
            ", and 4-reader throughput asserted > 1.2x the 1-reader rate"
        } else {
            " (scaling assertion skipped: fewer than 4 cores)"
        },
    ));
    report
}

/// E22 — observability overhead and `EXPLAIN ANALYZE` exactness.
///
/// Phase A re-runs the E17 acceptance loop (prepared COUNT point
/// lookup) with the metrics pipeline in both states — enabled (the
/// default: statement latency histograms recorded, subscriber absent)
/// and killed via `Obs::set_metrics_enabled(false)` — interleaved,
/// best-of-rounds, and asserts the enabled/disabled ratio stays ≤ 1.05.
/// Phase B runs `EXPLAIN ANALYZE` on the fetch statement and asserts
/// its actuals are *exact*: the summary row count equals an independent
/// cursor drain of the same statement, and each scan's `actual rows`
/// equals that table's `units_probed` delta read from one
/// [`nf2_storage::table::TableStats`] snapshot pair around the run (never re-loaded fields
/// — see the tearing note on the type).
///
/// `NF2_E22_ITERS` overrides the per-round call count (default 2000).
pub fn e22_obs_overhead() -> Report {
    let iters = std::env::var("NF2_E22_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000usize);
    e22_with(iters)
}

/// [`e22_obs_overhead`] at an explicit per-round call count (tests and
/// the CI smoke leg run it small).
pub fn e22_with(iters: usize) -> Report {
    use nf2_query::{Engine, Output};

    let iters = iters.max(200);
    let mut report = Report::new(
        "E22",
        "Observability: metrics on/off overhead on the E17 hot loop, EXPLAIN ANALYZE exactness",
        &["arm", "calls", "best round ms", "us/call", "on/off ratio"],
    );

    // The E17 serving-shaped instance: 64 students x 3 courses from a
    // 16-course pool, each course taught by one of four profs.
    let engine = Engine::new();
    {
        let mut session = engine.session();
        session
            .run("CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course)")
            .unwrap();
        session.run("CREATE TABLE cp (Course, Prof)").unwrap();
        for s in 0..64u32 {
            for c in 0..3u32 {
                session
                    .run(&format!(
                        "INSERT INTO sc VALUES ('s{s}', 'c{}')",
                        (s + c) % 16
                    ))
                    .unwrap();
            }
        }
        for c in 0..16u32 {
            session
                .run(&format!("INSERT INTO cp VALUES ('c{c}', 'p{}')", c % 4))
                .unwrap();
        }
    }
    let session = &mut engine.session();
    let count_prepared =
        "SELECT COUNT(*) FROM sc JOIN cp WHERE Student = ? AND Prof IN ('p0', 'p1')";
    let mut stmt = session.prepare(count_prepared).unwrap();
    let student_of = |i: usize| format!("s{}", i as u32 % 64);

    // Phase A: interleaved best-of-rounds, metrics on vs off. The
    // subscriber stays absent in both arms (the production default);
    // the off arm additionally throws the registry kill switch, so the
    // delta is exactly the per-statement clock + histogram record.
    let mut round = |on: bool| -> f64 {
        engine.obs().set_metrics_enabled(on);
        let start = Instant::now();
        for i in 0..iters {
            let s = student_of(i);
            let out = stmt.execute(session, &[s.as_str()]).unwrap();
            assert!(matches!(out, Output::Count(_)));
        }
        start.elapsed().as_secs_f64() * 1e3
    };
    // Warm both paths before timing anything.
    round(true);
    round(false);
    const ROUNDS: usize = 5;
    // Best-of-rounds interleaving cancels drift; shared runners still
    // wobble, so the 5% bar gets three attempts before it's binding.
    let (mut on_best, mut off_best, mut ratio) = (0.0, 0.0, f64::INFINITY);
    for attempt in 0..3 {
        (on_best, off_best) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..ROUNDS {
            on_best = on_best.min(round(true));
            off_best = off_best.min(round(false));
        }
        ratio = on_best / off_best.max(1e-9);
        if ratio <= 1.05 {
            break;
        }
        eprintln!("e22 attempt {attempt}: on/off {ratio:.3}x — retrying");
    }
    engine.obs().set_metrics_enabled(true);
    assert!(
        ratio <= 1.05,
        "metrics-enabled hot loop must stay within 5% of the kill-switch arm: \
         on {on_best:.2}ms vs off {off_best:.2}ms ({ratio:.3}x)"
    );
    for (arm, ms) in [("metrics enabled", on_best), ("metrics killed", off_best)] {
        report.push_row(vec![
            arm.into(),
            iters.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}", ms * 1e3 / iters as f64),
            format!("{ratio:.3}x"),
        ]);
    }

    // Phase B: ANALYZE exactness. One stats snapshot per table before
    // and after (whole-snapshot deltas — the counters tear field-wise).
    let analyze_sql = "EXPLAIN ANALYZE SELECT Student FROM sc JOIN cp WHERE Prof = 'p0'";
    let drain_sql = "SELECT Student FROM sc JOIN cp WHERE Prof = 'p0'";
    let mut drain_stmt = session.prepare(drain_sql).unwrap();
    let expected_rows = drain_stmt.query(session, &[] as &[&str]).unwrap().count() as u64;
    let before_sc = engine.table("sc").unwrap().stats();
    let before_cp = engine.table("cp").unwrap().stats();
    let out = session.run(analyze_sql).unwrap();
    let after_sc = engine.table("sc").unwrap().stats();
    let after_cp = engine.table("cp").unwrap().stats();
    let text = out.to_text();
    let actual_of = |needle: &str| -> u64 {
        text.lines()
            .find(|l| l.contains(needle))
            .and_then(|l| l.split("actual rows=").nth(1))
            .and_then(|r| r.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no `{needle}` actuals in:\n{text}"))
    };
    let summary_rows: u64 = text
        .lines()
        .find(|l| l.starts_with("analyze: "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no analyze summary in:\n{text}"));
    assert_eq!(
        summary_rows, expected_rows,
        "ANALYZE result count must equal an independent cursor drain"
    );
    let sc_scanned = actual_of("scan[sc");
    let cp_scanned = actual_of("scan[cp");
    assert_eq!(
        sc_scanned,
        after_sc.units_probed - before_sc.units_probed,
        "sc scan actuals must equal the one-snapshot units_probed delta"
    );
    assert_eq!(
        cp_scanned,
        after_cp.units_probed - before_cp.units_probed,
        "cp scan actuals must equal the one-snapshot units_probed delta"
    );
    report.push_row(vec![
        "EXPLAIN ANALYZE exactness".into(),
        "1 statement".into(),
        "-".into(),
        format!("{summary_rows} rows out"),
        format!("scan actuals sc={sc_scanned} cp={cp_scanned} == probe deltas"),
    ]);

    report.note(format!(
        "Phase A interleaves {ROUNDS} best-of rounds of the E17 prepared COUNT lookup \
         ({iters} calls/round) with the metrics registry enabled vs killed \
         (subscriber absent in both — the silent default); enabled/killed = {ratio:.3}x, \
         asserted ≤ 1.05x. The per-statement cost when enabled is one monotonic clock \
         read plus one log₂-bucket histogram record (3 relaxed atomic adds). Phase B \
         asserts EXPLAIN ANALYZE actuals exactly: {summary_rows} result rows equal the \
         cursor drain, and per-scan actual rows ({sc_scanned} sc, {cp_scanned} cp) \
         equal whole-snapshot units_probed deltas. Engine metrics export:\n{}",
        engine.metrics().to_text(),
    ));
    // The machine-readable form rides the BENCH json too.
    report.note(format!("metrics.json: {}", engine.metrics().to_json()));
    report
}

/// E23 — routed write concurrency: N writers on N distinct shards.
///
/// The per-shard commit pipeline's two load-bearing claims, measured:
///
/// * **Exactness (every machine)** — the same four per-shard §4 op
///   streams are applied twice: serially by one writer, and by four
///   concurrent writers (one per shard). Because writers on distinct
///   shards never share a lane, the concurrent run must be *bitwise
///   the same work*: per-shard maintenance-cost counters (the ops done
///   inside each shard's critical section), insert/delete tallies, and
///   committed-publication counts all asserted exactly equal to the
///   serial baseline, and the final relations tuple-identical. The
///   live epoch may be *smaller* than the publication count — racing
///   commits coalesce into one bump — and that inequality is asserted
///   too.
/// * **Scaling (gated on cores)** — with at least as many cores as
///   writers, the concurrent arm must beat the serial arm wall-clock
///   (best-of-rounds; the bar is a conservative 1.5x so shared runners
///   don't flake, with per-arm rates reported for the near-linear
///   eyeball).
///
/// `NF2_E23_ITERS` overrides the per-writer insert/delete pair count
/// (default 1500).
pub fn e23_writer_scaling() -> Report {
    let iters = std::env::var("NF2_E23_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500usize)
        .max(50);
    e23_with(iters)
}

/// [`e23_writer_scaling`] at an explicit pair count (tests run it
/// small; the default entry point reads `NF2_E23_ITERS`).
pub fn e23_with(iters: usize) -> Report {
    use std::sync::Arc;

    use nf2_query::Engine;

    let writers = 4usize;
    let mut report = Report::new(
        "E23",
        "Routed write concurrency: N writers on N distinct shards",
        &["arm", "work", "total ms", "rate", "check"],
    );

    // Identical engines for every arm: same shard count, same interning
    // order, so atom ids — and therefore routing — agree across runs.
    let setup = || -> Arc<Engine> {
        let engine = Arc::new(
            Engine::builder()
                .shards(writers)
                .build()
                .expect("default engine config builds"),
        );
        engine
            .session()
            .run("CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course)")
            .expect("DDL on a fresh engine");
        for c in 0..16u32 {
            engine.dict().intern(&format!("c{c}"));
        }
        for x in 0..8u32 {
            engine.dict().intern(&format!("x{x}"));
        }
        engine
    };

    // One course value per shard: each writer's rows all route to its
    // own shard, so no two writers ever contend on a lane.
    let probe = setup();
    let router = probe
        .table("sc")
        .expect("table just created")
        .routing()
        .clone();
    let mut course_of_shard: Vec<Option<u32>> = vec![None; writers];
    for c in 0..16u32 {
        let atom = probe
            .dict()
            .lookup(&format!("c{c}"))
            .expect("course interned by the seed");
        let s = router.shards_for_values(&[atom])[0];
        course_of_shard[s].get_or_insert(c);
    }
    let courses: Vec<u32> = course_of_shard
        .into_iter()
        .map(|c| c.expect("16 hashed courses cover all 4 shards"))
        .collect();

    // Each writer's stream alternates insert/delete of the same row, so
    // every op changes state: op counts, publication counts and cost
    // counters are exact, not probabilistic.
    let streams: Vec<Vec<String>> = (0..writers)
        .map(|s| {
            let c = courses[s];
            (0..iters)
                .flat_map(|i| {
                    let x = i % 8;
                    [
                        format!("INSERT INTO sc VALUES ('x{x}', 'c{c}')"),
                        format!("DELETE FROM sc WHERE Student = 'x{x}' AND Course = 'c{c}'"),
                    ]
                })
                .collect()
        })
        .collect();
    let total_ops = writers * iters * 2;

    let run_serial = || -> (f64, Arc<Engine>) {
        let engine = setup();
        let start = Instant::now();
        let mut session = engine.session();
        for stream in &streams {
            for stmt in stream {
                session.run(stmt).expect("serial §4 op");
            }
        }
        (start.elapsed().as_secs_f64() * 1e3, engine)
    };
    let run_concurrent = || -> (f64, Arc<Engine>) {
        let engine = setup();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for stream in &streams {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let mut session = engine.session();
                    for stmt in stream {
                        session.run(stmt).expect("concurrent §4 op");
                    }
                });
            }
        });
        (start.elapsed().as_secs_f64() * 1e3, engine)
    };

    // Best-of-rounds, arms interleaved so machine noise hits both.
    const ROUNDS: usize = 3;
    let (mut serial_ms, mut conc_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut serial_engine, mut conc_engine) = (None, None);
    for _ in 0..ROUNDS {
        let (ms, engine) = run_serial();
        if ms < serial_ms {
            serial_ms = ms;
        }
        serial_engine = Some(engine);
        let (ms, engine) = run_concurrent();
        if ms < conc_ms {
            conc_ms = ms;
        }
        conc_engine = Some(engine);
    }
    let serial_engine = serial_engine.expect("ROUNDS >= 1 ran the serial arm");
    let conc_engine = conc_engine.expect("ROUNDS >= 1 ran the concurrent arm");

    // Exactness: concurrency must not change what any shard *did*.
    let st = serial_engine.table("sc").expect("serial table exists");
    let ct = conc_engine.table("sc").expect("concurrent table exists");
    let (ss, cs) = (st.stats(), ct.stats());
    assert_eq!(
        (ss.inserts, ss.deletes),
        (cs.inserts, cs.deletes),
        "identical streams must tally identical §4 ops"
    );
    assert_eq!(
        cs.inserts as usize + cs.deletes as usize,
        total_ops,
        "alternating insert/delete makes every op effective"
    );
    assert_eq!(
        ss.epoch_installs, cs.epoch_installs,
        "every effective op publishes exactly once, writer concurrency or not"
    );
    let (sb, cb) = (st.maintenance_breakdown(), ct.maintenance_breakdown());
    assert_eq!(
        sb.per_shard, cb.per_shard,
        "per-shard critical-section op counts must not depend on writer concurrency"
    );
    assert_eq!(
        st.epoch(),
        ss.epoch_installs,
        "a lone writer never coalesces: one bump per publication"
    );
    assert!(
        ct.epoch() <= cs.epoch_installs,
        "concurrent commits may coalesce bumps, never mint extra ones"
    );
    assert_eq!(
        st.relation(),
        ct.relation(),
        "serial and concurrent runs must drain to the identical relation"
    );
    let coalesced = cs.epoch_installs - ct.epoch();

    let serial_rate = total_ops as f64 / (serial_ms / 1e3);
    let conc_rate = total_ops as f64 / (conc_ms / 1e3);
    let speedup = serial_ms / conc_ms;
    report.push_row(vec![
        "serial: 1 writer, 4 shards".into(),
        format!("{total_ops} ops"),
        format!("{serial_ms:.1}"),
        format!("{serial_rate:.0}/s"),
        format!("{} publications", ss.epoch_installs),
    ]);
    report.push_row(vec![
        format!("concurrent: {writers} writers, 1 shard each"),
        format!("{total_ops} ops"),
        format!("{conc_ms:.1}"),
        format!("{conc_rate:.0}/s"),
        format!(
            "{speedup:.2}x vs serial, {coalesced} bumps coalesced, per-shard \
             costs == serial"
        ),
    ]);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The scaling bar needs a core per writer and enough work per
    // stream that thread startup is noise; smoke runs keep only the
    // exactness assertions (which hold at any scale, on any machine).
    let scaling_asserted = cores >= writers && iters >= 500;
    if scaling_asserted {
        assert!(
            speedup > 1.5,
            "distinct-shard writers must scale on {cores} cores: \
             {conc_ms:.1}ms concurrent vs {serial_ms:.1}ms serial"
        );
    }

    report.note(format!(
        "Four per-shard op streams ({iters} insert/delete pairs each, all rows \
         routing to the writer's own shard via Course), applied serially vs by \
         4 concurrent writers, best of {ROUNDS} interleaved rounds. Exactness \
         asserted on every machine: per-shard maintenance counters, op tallies \
         and publication counts equal the serial baseline, final relations \
         tuple-identical, and the concurrent epoch ({}) never exceeds its \
         publications ({} — {coalesced} commits coalesced into shared bumps). \
         Wall-clock{}: serial {serial_ms:.1}ms vs concurrent {conc_ms:.1}ms \
         ({speedup:.2}x). Set NF2_E23_ITERS to rescale.",
        ct.epoch(),
        cs.epoch_installs,
        if scaling_asserted {
            " (asserted > 1.5x: cores >= writers)"
        } else {
            " (scaling assertion skipped: fewer cores than writers, or smoke scale)"
        },
    ));
    report
}

/// An experiment registry entry: id plus the function reproducing it.
type Experiment = (&'static str, fn() -> Report);

/// The experiment registry, in id order: the single source of truth for
/// `run_all`, `run_one`, and the `repro` binary's id listing.
const EXPERIMENTS: &[Experiment] = &[
    ("E1", e01_fig1_2),
    ("E2", e02_example1),
    ("E3", e03_example2),
    ("E4", e04_theorem2),
    ("E5", e05_theorem3_4),
    ("E6", e06_theorem5),
    ("E7", e07_theorem_a4),
    ("E8", e08_compression),
    ("E9", e09_search_space),
    ("E10", e10_update_cost),
    ("E11", e11_fig3),
    ("E12", e12_permutation_choice),
    ("E13", e13_optimizer),
    ("E14", e14_batch_crossover),
    ("E15", e15_4nf_vs_nfr),
    ("E16", e16_streaming_ingest),
    ("E17", e17_prepared_hot_loop),
    ("E18", e18_sharded_maintenance),
    ("E19", e19_topk_pruning),
    ("E20", e20_topk_merge_zones),
    ("E21", e21_mvcc_snapshot_readers),
    ("E22", e22_obs_overhead),
    ("E23", e23_writer_scaling),
];

/// All experiment ids, in run order.
pub fn experiment_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|(id, _)| *id).collect()
}

/// Runs every experiment in id order.
pub fn run_all() -> Vec<Report> {
    // Experiments are independent; run them on scoped threads to keep
    // the repro binary snappy.
    let mut results: Vec<Option<Report>> = (0..EXPERIMENTS.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slot, (_, f)) in results.iter_mut().zip(EXPERIMENTS.iter()) {
            let f = *f;
            handles.push(scope.spawn(move || {
                *slot = Some(f());
            }));
        }
        for h in handles {
            h.join().expect("experiment thread panicked");
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Looks up one experiment by id (case-insensitive).
pub fn run_one(id: &str) -> Option<Report> {
    let id = id.to_ascii_uppercase();
    let f = EXPERIMENTS
        .iter()
        .find(|(eid, _)| *eid == id)
        .map(|(_, f)| *f)?;
    Some(f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_instances_match_paper_counts() {
        let d = fig1_data();
        assert_eq!(d.r1.tuple_count(), 3);
        assert_eq!(d.r1.expand().len(), 9, "3 students x 3 courses");
        assert_eq!(d.r2.tuple_count(), 3);
        assert_eq!(d.r2.expand().len(), 9);
    }

    #[test]
    fn e01_reproduces_fig2_shapes() {
        let r = e01_fig1_2();
        // R1 keeps 3 tuples; R2's hand edit has 4.
        let r1_after: usize = r
            .rows
            .iter()
            .find(|row| row[1].contains("Fig. 2 (hand edit)") && row[0] == "R1")
            .unwrap()[2]
            .parse()
            .unwrap();
        let r2_after: usize = r
            .rows
            .iter()
            .find(|row| row[1].contains("Fig. 2 (hand edit)") && row[0] == "R2")
            .unwrap()[2]
            .parse()
            .unwrap();
        assert_eq!(r1_after, 3, "Fig. 2 R1 still has 3 tuples");
        assert_eq!(r2_after, 4, "Fig. 2 R2 has 4 tuples");
        // Flat counts drop by 1 (R1: 9->8) and 1 (R2: 9->8).
        let r1_flat: usize = r
            .rows
            .iter()
            .find(|row| row[1].contains("Fig. 2 (hand edit)") && row[0] == "R1")
            .unwrap()[3]
            .parse()
            .unwrap();
        assert_eq!(r1_flat, 8);
    }

    #[test]
    fn e02_finds_both_paper_sizes() {
        let r = e02_example1();
        let sizes: BTreeSet<usize> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        assert!(sizes.contains(&2), "paper's R1 (2 tuples): {sizes:?}");
        assert!(sizes.contains(&3), "paper's R2 (3 tuples): {sizes:?}");
    }

    #[test]
    fn e03_matches_paper_exactly() {
        let r = e03_example2();
        let canon_sizes: Vec<usize> = r
            .rows
            .iter()
            .filter(|row| row[0].starts_with("canonical"))
            .map(|row| row[1].parse().unwrap())
            .collect();
        assert_eq!(canon_sizes.len(), 6);
        assert!(
            canon_sizes.iter().all(|&s| s == 4),
            "every canonical form has 4 tuples"
        );
        let min: usize = r.rows.last().unwrap()[1].parse().unwrap();
        assert_eq!(min, 3, "the 3-tuple irreducible form");
    }

    #[test]
    fn e04_has_no_mismatches() {
        let r = e04_theorem2();
        assert!(r.rows.iter().all(|row| row[3] == "0"));
    }

    #[test]
    fn e05_shapes() {
        let r = e05_theorem3_4();
        let note = &r.notes[0];
        assert!(
            note.contains("fixed on the determinant = true"),
            "Theorem 3 must hold on the fragment: {note}"
        );
        assert!(
            note.contains("(all fixed = false)"),
            "the free-attribute counterexample must appear: {note}"
        );
        assert!(note.contains("a fixed form exists = true"), "{note}");
        assert!(
            note.contains("an unfixed form also exists = true"),
            "{note}"
        );
    }

    #[test]
    fn e06_all_orders_fixed() {
        let r = e06_theorem5();
        for row in &r.rows {
            let parts: Vec<&str> = row[3].split('/').collect();
            assert_eq!(parts[0], parts[1], "all orders fixed for degree {}", row[0]);
        }
    }

    #[test]
    fn e07_cost_flat_in_relation_size() {
        let r = e07_theorem_a4();
        let size_rows: Vec<&Vec<String>> = r
            .rows
            .iter()
            .filter(|row| row[0].starts_with("|R*|"))
            .collect();
        let first: f64 = size_rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = size_rows.last().unwrap()[3].parse().unwrap();
        // 100x more rows must not mean even 3x more compositions.
        assert!(
            last <= (first + 1.0) * 3.0,
            "avg insert ops grew with |R*|: first={first}, last={last}"
        );
    }

    #[test]
    fn e08_university_compresses_most() {
        let r = e08_compression();
        let ratio = |label: &str| -> f64 {
            let row = r.rows.iter().find(|row| row[0].starts_with(label)).unwrap();
            row[4].trim_end_matches('x').parse().unwrap()
        };
        assert!(
            ratio("university") > ratio("uniform"),
            "structured >> random"
        );
        assert!(ratio("block_product") > 2.0);
    }

    #[test]
    fn e09_nf_probes_fewer_units() {
        let r = e09_search_space();
        let probes = &r.rows[0];
        let nf: f64 = probes[1].parse().unwrap();
        let flat: f64 = probes[2].parse().unwrap();
        assert!(nf < flat, "NF² must probe fewer units: {nf} vs {flat}");
    }

    #[test]
    fn e11_fig3_containments() {
        let r = e11_fig3();
        let count = |label: &str| -> usize {
            r.rows.iter().find(|row| row[0].starts_with(label)).unwrap()[1]
                .parse()
                .unwrap()
        };
        let total = count("all NFRs");
        let irr = count("irreducible (");
        let canon = count("canonical for");
        assert!(canon <= irr, "canonical ⊆ irreducible");
        assert!(irr <= total);
        assert!(
            count("irreducible ∧ ¬canonical") > 0,
            "Example 2's gap exists already here"
        );
    }

    #[test]
    fn e12_suggested_order_is_fixed_on_determinant() {
        let r = e12_permutation_choice();
        let suggested_row = r.rows.iter().find(|row| row[3] == "true").unwrap();
        assert_eq!(suggested_row[2], "true", "suggested order fixed on Student");
    }

    #[test]
    fn run_one_resolves_ids() {
        assert!(run_one("e2").is_some());
        assert!(run_one("e15").is_some());
        assert!(run_one("E99").is_none());
    }

    #[test]
    fn e17_prepared_execution_is_5x_faster_than_parse_per_call() {
        // The >=5x acceptance bar holds for optimized builds (the repro
        // binary measures ~6-7x); debug builds shift the cost profile,
        // so assert a looser sanity floor there. Wall-clock ratios on a
        // shared runner are noisy, so take the best of three attempts
        // before declaring a regression.
        let bar = if cfg!(debug_assertions) { 2.0 } else { 5.0 };
        let speedup_of = |row: &[String]| -> f64 { row[4].trim_end_matches('x').parse().unwrap() };
        let mut last = (0.0, 0.0, 0.0);
        for attempt in 0..3 {
            let r = e17_with(600);
            assert_eq!(r.rows.len(), 5);
            let execute = speedup_of(&r.rows[1]);
            let fetch_exec = speedup_of(&r.rows[3]);
            let fetch_cursor = speedup_of(&r.rows[4]);
            last = (execute, fetch_exec, fetch_cursor);
            // The streaming cursor must be in the same league as
            // materialized execute (it skips render + materialization,
            // but scheduling noise can cost a few percent).
            if execute >= bar && fetch_exec > 1.0 && fetch_cursor >= 0.8 * fetch_exec {
                return;
            }
            eprintln!("e17 attempt {attempt}: execute {execute}x, fetch {fetch_exec}x / cursor {fetch_cursor}x — retrying");
        }
        panic!(
            "Prepared::execute must be >= {bar}x faster than parse-per-call run on the \
             point-SELECT hot loop (and the cursor must not trail materialized execute); \
             best of 3 attempts ended at execute {:.1}x, fetch {:.1}x, cursor {:.1}x",
            last.0, last.1, last.2
        );
    }

    #[test]
    fn e16_small_scale_ingest_is_canonical_and_complete() {
        let r = e16_with(3_000);
        assert_eq!(r.rows.len(), 3);
        // Cold ingest lands every row, entirely through rebuild batches.
        let cold = &r.rows[0];
        assert_eq!(cold[2], cold[3], "all adaptive batches rebuild: {cold:?}");
        let tuples: usize = cold[6].parse().unwrap();
        let flats: usize = cold[7].parse().unwrap();
        assert!(tuples < flats, "university data must compress");
        // The churn batch takes the rebuild arm; the probe stays
        // incremental (e16_with verifies canonicity at this scale).
        assert_eq!(r.rows[1][3], "1");
        assert_eq!(r.rows[2][3], "0");
    }

    #[test]
    fn e18_probes_drop_proportionally_and_forms_agree() {
        // Small scale: e18_with itself asserts sharded ≡ unsharded
        // tuple-identity and re-verifies every shard invariant. Here we
        // pin the acceptance shape: per-op candidate probes at 4 shards
        // must be at most half the 1-shard count (the expected drop is
        // ~4x; 2x leaves room for hash imbalance on small relations).
        let r = e18_with(4_000);
        let probe_rows: Vec<&Vec<String>> = r
            .rows
            .iter()
            .filter(|row| row[0] == "§4 incremental probe")
            .collect();
        assert_eq!(probe_rows.len(), 2);
        let p1: f64 = probe_rows[0][5].parse().unwrap();
        let p4: f64 = probe_rows[1][5].parse().unwrap();
        assert!(
            p4 * 2.0 <= p1,
            "4 shards must cut candidate probes at least in half: {p1} -> {p4}"
        );
        // The per-shard breakdown is present and sums close to the
        // aggregate (each row reports probes/op for its shard).
        let breakdown: f64 = r
            .rows
            .iter()
            .filter(|row| row[0].starts_with("probe breakdown"))
            .map(|row| row[5].parse::<f64>().unwrap())
            .sum();
        assert!(
            (breakdown - p4).abs() <= 4.0,
            "per-shard probes/op ({breakdown}) must sum to the aggregate ({p4})"
        );
    }

    #[test]
    fn e19_topk_is_bounded_and_pruning_drops_probes() {
        // e19_with itself asserts the hard invariants at any scale: the
        // heap retains ≤ k and pulls the scan exactly once, the top-k
        // prefix is tuple-identical to the full sort, equality probes
        // are at most half the full scan, and (at this scale) pruned ≡
        // unpruned counts. Here we pin the report shape the JSON
        // baseline commits.
        let r = e19_with(4_000);
        assert_eq!(r.id, "E19");
        assert!(r.rows.iter().any(|row| row[0] == "full blocking sort"));
        let topk_rows = r
            .rows
            .iter()
            .filter(|row| row[0].starts_with("streaming top-k"))
            .count();
        assert_eq!(topk_rows, 3, "k = 1, 10, 100");
        let probes_of = |label: &str| -> u64 {
            let row = r
                .rows
                .iter()
                .find(|row| row[1] == label)
                .unwrap_or_else(|| panic!("row {label} missing"));
            row[5].strip_suffix(" probes").unwrap().parse().unwrap()
        };
        let full = probes_of("full scan");
        let eq = probes_of("outer equality (1 value)");
        let in2 = probes_of("outer IN (2 values)");
        assert!(eq * 2 <= full, "{eq} of {full}");
        assert!(eq <= in2 && in2 <= full);
    }

    #[test]
    fn e20_merge_stops_early_and_zones_skip() {
        // e20_with itself asserts the hard invariants at any scale: the
        // merge arm is tuple-identical to the heap fallback with ≥10x
        // fewer probes and one scan per shard, and zone maps skip at
        // least half the segments on a non-routing equality (predictor
        // ≡ execution). Here we pin the report shape the JSON baseline
        // commits.
        let r = e20_with(4_000);
        assert_eq!(r.id, "E20");
        let merges = r
            .rows
            .iter()
            .filter(|row| row[0] == "streaming k-way merge")
            .count();
        assert_eq!(merges, 3, "1, 4, 16 shards");
        let heaps = r
            .rows
            .iter()
            .filter(|row| row[0] == "bounded heap (stale fallback)")
            .count();
        assert_eq!(heaps, 3);
        let zoned = r
            .rows
            .iter()
            .find(|row| row[0] == "zoned equality (non-routing attr)")
            .expect("zone row present");
        let (sk, tot) = zoned[5].split_once('/').expect("skip ratio");
        let (sk, tot): (usize, usize) = (sk.parse().unwrap(), tot.parse().unwrap());
        assert!(sk * 2 >= tot, "{sk}/{tot} segments skipped");
    }

    #[test]
    fn e23_concurrent_writers_do_exactly_the_serial_work() {
        // The wall-clock scaling bar self-gates on scale and cores (the
        // release CI smoke and the full repro run exercise it); what a
        // debug test can pin is the machine-independent half: per-shard
        // critical-section op counts, publication tallies and the final
        // relation all equal the serial baseline — e23_with asserts all
        // of that internally at any scale.
        let r = e23_with(40);
        assert_eq!(r.id, "E23");
        let conc = r
            .rows
            .iter()
            .find(|row| row[0].starts_with("concurrent:"))
            .expect("concurrent arm row present");
        assert!(conc[4].contains("per-shard costs == serial"), "{conc:?}");
    }

    #[test]
    fn e22_analyze_is_exact_and_metrics_export_lands() {
        // The wall-clock 5% bar runs in release (`repro` / the CI smoke
        // leg); a debug test run would measure assertion overhead, and
        // e22_with asserts the exactness invariants (ANALYZE == drain ==
        // probe deltas) at any scale, which is what this pins.
        let r = e22_with(200);
        assert_eq!(r.id, "E22");
        let exact = r
            .rows
            .iter()
            .find(|row| row[0] == "EXPLAIN ANALYZE exactness")
            .expect("exactness row present");
        assert!(exact[4].contains("== probe deltas"), "{exact:?}");
        let note = r.notes.join("\n");
        assert!(
            note.contains("stmt.select.us"),
            "metrics export rides the note: {note}"
        );
        assert!(note.contains("table.sc.units_probed"), "{note}");
    }

    #[test]
    fn e18_parallel_rebuild_speedup() {
        // The ISSUE acceptance bar — parallel batch rebuild ≥2x at ≥4
        // shards — is a thread-level speedup and needs cores to show up
        // in wall-clock. Gate the bar on the parallelism actually
        // available so single-core CI asserts non-regression instead of
        // an impossibility, and take the best of three attempts (shared
        // runners are noisy). Debug builds skip the wall-clock leg
        // entirely (assertion overhead distorts the ratio).
        if cfg!(debug_assertions) {
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let bar = if cores >= 4 {
            2.0
        } else if cores >= 2 {
            1.2
        } else {
            0.66 // 1 core: sharding must not cost more than ~1.5x
        };
        let mut best = 0.0f64;
        for _ in 0..3 {
            let r = e18_with(40_000);
            let ingest: Vec<f64> = r
                .rows
                .iter()
                .filter(|row| row[0].starts_with("cold ingest"))
                .map(|row| row[3].parse().unwrap())
                .collect();
            assert_eq!(ingest.len(), 2);
            best = best.max(ingest[0] / ingest[1].max(1e-9));
            if best >= bar {
                return;
            }
        }
        panic!("parallel rebuild speedup bar not met on {cores} core(s): best {best:.2}x < {bar}x");
    }

    #[test]
    fn e13_pushdown_reduces_estimated_work() {
        let r = e13_optimizer();
        for row in &r.rows {
            assert!(
                row[1].contains("select-into-join"),
                "pushdown fired: {row:?}"
            );
            let before: f64 = row[2].parse().unwrap();
            let after: f64 = row[3].parse().unwrap();
            assert!(after < before, "estimate must drop: {row:?}");
        }
    }

    #[test]
    fn e14_auto_strategy_agrees_at_the_extremes() {
        // The "faster" column is wall-clock and meaningful only in
        // release builds (debug asserts re-validate the partition on
        // every op); pin just the deterministic threshold column.
        let r = e14_batch_crossover();
        let first = r.rows.first().unwrap();
        assert_eq!(
            first[4], "incremental",
            "tiny batches stay incremental: {first:?}"
        );
        let last = r.rows.last().unwrap();
        assert_eq!(
            last[4], "re-nest",
            "full-relation batches rebuild: {last:?}"
        );
    }

    #[test]
    fn e15_nfr_beats_4nf_on_units_and_joins() {
        let r = e15_4nf_vs_nfr();
        assert_eq!(r.rows.len(), 2);
        let units = |row: &Vec<String>| -> usize {
            row[2].split_whitespace().next().unwrap().parse().unwrap()
        };
        let (four_nf, nfr) = (&r.rows[0], &r.rows[1]);
        assert!(
            units(nfr) < units(four_nf),
            "fewer stored units for the NFR"
        );
        assert!(four_nf[4].contains("join"), "4NF pays a join");
        assert!(nfr[4].contains("no join"));
    }
}
