//! Experiment reports: a uniform tabular result type rendered as ASCII
//! (terminal) or Markdown (EXPERIMENTS.md).

use nf2_core::display::render_table;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (E1…E12, matching DESIGN.md §6).
    pub id: String,
    /// Title naming the paper artifact reproduced.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: paper-vs-measured commentary, renderings.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates a report with headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Appends a note paragraph.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// ASCII rendering for terminals.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&render_table("", &self.headers, &self.rows));
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// JSON rendering for machine-readable baselines (`BENCH_seed.json`).
    ///
    /// `elapsed_millis` is the wall-clock time the experiment took; it is
    /// part of the baseline so future PRs can track the perf trajectory.
    pub fn to_json(&self, elapsed_millis: f64) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json_string(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let notes: Vec<String> = self.notes.iter().map(|n| json_string(n)).collect();
        format!(
            "{{\"id\":{},\"title\":{},\"elapsed_millis\":{:.3},\"headers\":[{}],\"rows\":[{}],\"notes\":[{}]}}",
            json_string(&self.id),
            json_string(&self.title),
            elapsed_millis,
            headers.join(","),
            rows.join(","),
            notes.join(",")
        )
    }

    /// Markdown rendering for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for n in &self.notes {
            out.push_str(n);
            out.push_str("\n\n");
        }
        out
    }
}

/// Extracts `(id, elapsed_millis)` pairs from a baseline JSON file
/// previously written by `repro --json` (e.g. `BENCH_seed.json`).
///
/// The repo is offline (no serde), and the baseline format is our own
/// [`Report::to_json`] output, so a targeted scan is sufficient: each
/// experiment object carries `"id":"…"` immediately followed by
/// `"title"` and `"elapsed_millis"`.
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(idx) = rest.find("{\"id\":\"") {
        rest = &rest[idx + 7..];
        let Some(end) = rest.find('"') else { break };
        let id = rest[..end].to_owned();
        let Some(ms_idx) = rest.find("\"elapsed_millis\":") else {
            break;
        };
        let tail = &rest[ms_idx + 17..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
            .collect();
        if let Ok(ms) = num.parse::<f64>() {
            out.push((id, ms));
        }
        rest = tail;
    }
    out
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("E0", "Sample", &["k", "v"]);
        r.push_row(vec!["a".into(), "1".into()]);
        r.note("a note");
        r
    }

    #[test]
    fn ascii_contains_title_and_rows() {
        let text = sample().to_ascii();
        assert!(text.contains("E0"));
        assert!(text.contains("Sample"));
        assert!(text.contains("| a "));
        assert!(text.contains("a note"));
    }

    #[test]
    fn json_escapes_and_carries_timing() {
        let mut r = sample();
        r.note("quote \" backslash \\ newline\nend");
        let json = r.to_json(12.5);
        assert!(json.contains("\"id\":\"E0\""));
        assert!(json.contains("\"elapsed_millis\":12.500"));
        assert!(json.contains("[\"a\",\"1\"]"));
        assert!(json.contains("quote \\\" backslash \\\\ newline\\nend"));
    }

    #[test]
    fn baseline_round_trips_through_parse() {
        let a = sample().to_json(12.5);
        let mut b = Report::new("E2", "Other", &["k"]);
        b.push_row(vec!["x".into()]);
        let file = format!(
            "{{\"schema_version\":1,\"total_millis\":20.0,\"experiments\":[\n{},\n{}\n]}}\n",
            a,
            b.to_json(7.25)
        );
        let parsed = parse_baseline(&file);
        assert_eq!(
            parsed,
            vec![("E0".to_owned(), 12.5), ("E2".to_owned(), 7.25)]
        );
        assert!(parse_baseline("not json").is_empty());
    }

    #[test]
    fn markdown_is_a_table() {
        let md = sample().to_markdown();
        assert!(md.contains("### E0 — Sample"));
        assert!(md.contains("| k | v |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| a | 1 |"));
    }
}
