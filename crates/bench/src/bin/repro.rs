//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                             # all experiments, ASCII
//! repro --md                        # all experiments, Markdown
//! repro E3 E7                       # a subset
//! repro --json                      # also write a timed BENCH_seed.json baseline
//! repro --json=out.json             # same, custom path
//! repro --json --baseline           # diff against BENCH_seed.json, write BENCH_pr10.json
//! repro --baseline=old.json         # diff against a named baseline
//! ```
//!
//! With `--baseline`, the run is timed, a per-experiment delta table is
//! printed against the baseline file, and the JSON report defaults to
//! `BENCH_pr10.json` — so perf work can be tracked without ever touching
//! the committed `BENCH_seed.json`.

use std::time::Instant;

use nf2_bench::{experiment_ids, parse_baseline, run_all, run_one, Report};

/// Default path of the committed full-suite baseline.
const DEFAULT_JSON_PATH: &str = "BENCH_seed.json";

/// Default output path when diffing against a baseline.
const DELTA_JSON_PATH: &str = "BENCH_pr10.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let baseline_path: Option<String> = args.iter().find_map(|a| {
        if a == "--baseline" {
            Some(DEFAULT_JSON_PATH.to_owned())
        } else {
            a.strip_prefix("--baseline=").map(str::to_owned)
        }
    });
    // An explicit `--json=PATH` always wins; otherwise a bare `--json` (or
    // any `--baseline` run) defaults to BENCH_pr10.json when diffing — the
    // baseline being diffed against is never overwritten.
    let explicit_json_path: Option<String> = args
        .iter()
        .find_map(|a| a.strip_prefix("--json=").map(str::to_owned));
    let bare_json = args.iter().any(|a| a == "--json");
    let json_path: Option<String> = match (explicit_json_path, baseline_path.is_some()) {
        (Some(path), _) => Some(path),
        (None, true) => Some(DELTA_JSON_PATH.to_owned()),
        (None, false) if bare_json => Some(DEFAULT_JSON_PATH.to_owned()),
        (None, false) => None,
    };
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    // The default baseline path is the committed full-suite baseline; a
    // partial run must name its own file so it cannot clobber it.
    if json_path.as_deref() == Some(DEFAULT_JSON_PATH) && !ids.is_empty() {
        eprintln!(
            "refusing to write the partial run {:?} to the full-suite baseline \
             {DEFAULT_JSON_PATH}; pass --json=PATH to choose a different file",
            ids
        );
        std::process::exit(2);
    }

    let selected: Vec<String> = if ids.is_empty() {
        experiment_ids().iter().map(|s| (*s).to_owned()).collect()
    } else {
        ids.iter().map(|s| (*s).clone()).collect()
    };

    // Baselines and JSON reports need per-experiment wall-clock times, so
    // those paths run sequentially; the plain path runs all experiments
    // on scoped threads via `run_all`.
    let timed = json_path.is_some() || baseline_path.is_some() || !ids.is_empty();
    let reports: Vec<(Report, f64)> = if timed {
        let mut out = Vec::new();
        for id in &selected {
            let start = Instant::now();
            match run_one(id) {
                Some(r) => out.push((r, start.elapsed().as_secs_f64() * 1e3)),
                None => {
                    eprintln!(
                        "unknown experiment id: {id} (valid: {})",
                        experiment_ids().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    } else {
        run_all().into_iter().map(|r| (r, f64::NAN)).collect()
    };

    for (r, _) in &reports {
        if markdown {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_ascii());
        }
    }

    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(json) => print_deltas(path, &parse_baseline(&json), &reports),
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = json_path {
        let total: f64 = reports.iter().map(|(_, ms)| ms).sum();
        let body: Vec<String> = reports.iter().map(|(r, ms)| r.to_json(*ms)).collect();
        let json = format!(
            "{{\"schema_version\":1,\"total_millis\":{:.3},\"experiments\":[\n{}\n]}}\n",
            total,
            body.join(",\n")
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote baseline: {path} ({:.1} ms total)", total),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Prints the per-experiment wall-clock deltas against a parsed baseline.
fn print_deltas(path: &str, baseline: &[(String, f64)], reports: &[(Report, f64)]) {
    println!("== deltas vs {path} ==");
    println!(
        "{:<6} {:>12} {:>12} {:>9} {:>9}",
        "id", "baseline ms", "now ms", "delta", "speedup"
    );
    let (mut base_total, mut now_total) = (0.0f64, 0.0f64);
    for (r, ms) in reports {
        match baseline.iter().find(|(id, _)| *id == r.id) {
            Some((_, base_ms)) => {
                base_total += base_ms;
                now_total += ms;
                let delta = (ms - base_ms) / base_ms.max(1e-9) * 100.0;
                println!(
                    "{:<6} {:>12.3} {:>12.3} {:>8.1}% {:>8.2}x",
                    r.id,
                    base_ms,
                    ms,
                    delta,
                    base_ms / ms.max(1e-9)
                );
            }
            None => println!(
                "{:<6} {:>12} {:>12.3} {:>9} {:>9}",
                r.id, "—", ms, "new", "—"
            ),
        }
    }
    if base_total > 0.0 {
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>8.1}% {:>8.2}x  (experiments present in both)",
            "total",
            base_total,
            now_total,
            (now_total - base_total) / base_total * 100.0,
            base_total / now_total.max(1e-9)
        );
    }
}
