//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # all experiments, ASCII
//! repro --md            # all experiments, Markdown (EXPERIMENTS.md format)
//! repro E3 E7           # a subset
//! repro --json          # also write a timed BENCH_seed.json baseline
//! repro --json=out.json # same, custom path
//! ```

use std::time::Instant;

use nf2_bench::{experiment_ids, run_all, run_one, Report};

/// Default path of the machine-readable baseline.
const DEFAULT_JSON_PATH: &str = "BENCH_seed.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let json_path: Option<String> = args.iter().find_map(|a| {
        if a == "--json" {
            Some(DEFAULT_JSON_PATH.to_owned())
        } else {
            a.strip_prefix("--json=").map(str::to_owned)
        }
    });
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    // The default baseline path is the committed full-suite baseline; a
    // partial run must name its own file so it cannot clobber it.
    if json_path.as_deref() == Some(DEFAULT_JSON_PATH) && !ids.is_empty() {
        eprintln!(
            "refusing to write the partial run {:?} to the full-suite baseline \
             {DEFAULT_JSON_PATH}; pass --json=PATH to choose a different file",
            ids
        );
        std::process::exit(2);
    }

    let selected: Vec<String> = if ids.is_empty() {
        experiment_ids().iter().map(|s| (*s).to_owned()).collect()
    } else {
        ids.iter().map(|s| (*s).clone()).collect()
    };

    // The JSON baseline needs per-experiment wall-clock times, so that
    // path runs sequentially; the plain path runs all experiments on
    // scoped threads via `run_all`.
    let reports: Vec<(Report, f64)> = if json_path.is_some() || !ids.is_empty() {
        let mut out = Vec::new();
        for id in &selected {
            let start = Instant::now();
            match run_one(id) {
                Some(r) => out.push((r, start.elapsed().as_secs_f64() * 1e3)),
                None => {
                    eprintln!(
                        "unknown experiment id: {id} (valid: {})",
                        experiment_ids().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    } else {
        run_all().into_iter().map(|r| (r, f64::NAN)).collect()
    };

    for (r, _) in &reports {
        if markdown {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_ascii());
        }
    }

    if let Some(path) = json_path {
        let total: f64 = reports.iter().map(|(_, ms)| ms).sum();
        let body: Vec<String> = reports.iter().map(|(r, ms)| r.to_json(*ms)).collect();
        let json = format!(
            "{{\"schema_version\":1,\"total_millis\":{:.3},\"experiments\":[\n{}\n]}}\n",
            total,
            body.join(",\n")
        );
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote baseline: {path} ({:.1} ms total)", total),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
