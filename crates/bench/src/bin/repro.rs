//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro            # all experiments, ASCII
//! repro --md       # all experiments, Markdown (EXPERIMENTS.md format)
//! repro E3 E7      # a subset
//! ```

use nf2_bench::{run_all, run_one};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let reports = if ids.is_empty() {
        run_all()
    } else {
        let mut out = Vec::new();
        for id in ids {
            match run_one(id) {
                Some(r) => out.push(r),
                None => {
                    eprintln!("unknown experiment id: {id} (valid: E1..E15)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for r in &reports {
        if markdown {
            println!("{}", r.to_markdown());
        } else {
            println!("{}", r.to_ascii());
        }
    }
}
