//! End-to-end DML latency: parse + plan + execute against the storage
//! engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use nf2_query::Database;

fn seeded_db(students: usize) -> Database {
    let mut db = Database::new();
    db.run("CREATE TABLE sc (Student, Course, Club) NEST ORDER (Course, Student, Club)")
        .unwrap();
    for s in 0..students {
        for c in 0..4 {
            db.run(&format!(
                "INSERT INTO sc VALUES ('s{s}','c{}','b{}')",
                (s + c) % 25,
                s % 6
            ))
            .unwrap();
        }
    }
    db
}

fn bench_statements(c: &mut Criterion) {
    let mut group = c.benchmark_group("dml");
    let db = seeded_db(200);

    group.bench_function("parse_select", |b| {
        b.iter(|| nf2_query::parse("SELECT Course FROM sc WHERE Student = 's1'").unwrap())
    });

    group.bench_function("select_by_student", |b| {
        let mut db = seeded_db(200);
        let mut i = 0usize;
        b.iter(|| {
            let stmt = format!("SELECT Course FROM sc WHERE Student = 's{}'", i % 200);
            i += 1;
            db.run(&stmt).unwrap()
        });
    });

    group.bench_function("insert_delete_pair", |b| {
        b.iter_batched(
            || seeded_db(50),
            |mut db| {
                db.run("INSERT INTO sc VALUES ('sx','cx','bx')").unwrap();
                db.run("DELETE FROM sc WHERE Student = 'sx'").unwrap();
                db
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("show_table", |b| {
        let mut db = seeded_db(100);
        b.iter(|| db.run("SHOW sc").unwrap());
    });
    drop(db);
    group.finish();
}

criterion_group!(benches, bench_statements);
criterion_main!(benches);
