//! Batch-maintenance strategies under Criterion: §4 incremental
//! application vs re-nesting from scratch vs the auto-selecting
//! strategy, across batch sizes (experiment E14's wall-clock companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nf2_core::bulk::{apply_batch, apply_batch_auto, rebuild_batch, replay_adaptive_with, Op};
use nf2_core::kernel::NestKernel;
use nf2_core::maintenance::{CanonicalRelation, CostCounter};
use nf2_core::schema::NestOrder;
use nf2_workload as workload;

fn setup(pct: usize) -> (CanonicalRelation, Vec<Op>) {
    let w = workload::university(120, 3, 25, 2, 8, 47);
    let base_rows = w.flat.len();
    let canon = CanonicalRelation::from_flat(&w.flat, NestOrder::identity(3)).unwrap();
    let ops = workload::op_trace(&w, (base_rows * pct / 100).max(1), 40, pct as u64);
    (canon, ops)
}

fn bench_batch_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_strategies");
    group.sample_size(10);
    for &pct in &[5usize, 25, 100] {
        let (base, ops) = setup(pct);
        group.bench_with_input(BenchmarkId::new("incremental", pct), &pct, |b, _| {
            b.iter(|| {
                let mut canon = base.clone();
                let mut cost = CostCounter::new();
                apply_batch(&mut canon, std::hint::black_box(&ops), &mut cost).unwrap();
                canon
            })
        });
        group.bench_with_input(BenchmarkId::new("renest", pct), &pct, |b, _| {
            b.iter(|| rebuild_batch(std::hint::black_box(&base), &ops).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("auto", pct), &pct, |b, _| {
            b.iter(|| {
                let mut canon = base.clone();
                let mut cost = CostCounter::new();
                apply_batch_auto(&mut canon, std::hint::black_box(&ops), &mut cost).unwrap();
                canon
            })
        });
    }
    group.finish();
}

fn bench_modify(c: &mut Criterion) {
    let mut group = c.benchmark_group("modify");
    let w = workload::university(200, 3, 40, 2, 10, 3);
    let base = CanonicalRelation::from_flat(&w.flat, NestOrder::identity(3)).unwrap();
    let rows: Vec<_> = w.flat.rows().cloned().collect();
    group.bench_function("delete_insert_roundtrip", |b| {
        let mut canon = base.clone();
        let mut i = 0usize;
        b.iter(|| {
            let row = rows[i % rows.len()].clone();
            i += 1;
            let mut cost = CostCounter::new();
            // Move the row to a fresh value and back: two modifies.
            let mut moved = row.clone();
            moved[2] = nf2_core::value::Atom(8_000_000);
            nf2_core::bulk::modify(&mut canon, &row, moved.clone(), &mut cost).unwrap();
            nf2_core::bulk::modify(&mut canon, &moved, row, &mut cost).unwrap();
        })
    });
    group.finish();
}

fn bench_streaming_ingest(c: &mut Criterion) {
    // E16 in miniature: a shuffled insert stream replayed from empty in
    // adaptive batches, every one taking the kernel rebuild arm. The
    // shared-kernel variant measures what scratch reuse is worth.
    let mut group = c.benchmark_group("streaming_ingest");
    group.sample_size(10);
    let w = workload::university(400, 4, 60, 2, 10, 29);
    let stream: Vec<Op> = w.flat.rows().cloned().map(Op::Insert).collect();
    let schema = w.flat.schema().clone();
    let replay = |kernel: &mut NestKernel| {
        let mut canon = CanonicalRelation::new(schema.clone(), NestOrder::identity(3)).unwrap();
        let mut cost = CostCounter::new();
        replay_adaptive_with(kernel, &mut canon, &stream, 256, &mut cost).unwrap();
        canon
    };
    group.bench_function("adaptive_batches/fresh_kernel", |b| {
        b.iter(|| replay(&mut NestKernel::new()))
    });
    group.bench_function("adaptive_batches/shared_kernel", |b| {
        let mut kernel = NestKernel::new();
        b.iter(|| replay(&mut kernel))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_strategies,
    bench_modify,
    bench_streaming_ingest
);
criterion_main!(benches);
