//! Algebra operator costs on nested vs flat representations: the
//! rectangle-level fast paths (select_box, fixed projection, join) versus
//! expansion-based evaluation.

use criterion::{criterion_group, criterion_main, Criterion};

use nf2_algebra::{natural_join, project, select_box, select_where};
use nf2_core::nest::canonical_of_flat;
use nf2_core::relation::FlatRelation;
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::ValueSet;
use nf2_core::value::Atom;
use nf2_workload as workload;
use std::collections::BTreeSet;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let w = workload::university(300, 4, 50, 2, 10, 5);
    let canon = canonical_of_flat(&w.flat, &NestOrder::identity(3));
    let course = w.flat.rows().next().unwrap()[1];

    group.bench_function("select_box_rectangle", |b| {
        b.iter(|| {
            select_box(
                std::hint::black_box(&canon),
                &[(1, ValueSet::singleton(course))],
            )
        })
    });
    group.bench_function("select_where_expansion", |b| {
        b.iter(|| {
            select_where(
                std::hint::black_box(&canon),
                |row| row[1] == course,
                &NestOrder::identity(3),
            )
        })
    });
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection");
    let w = workload::university(300, 4, 50, 2, 10, 5);
    let canon = canonical_of_flat(&w.flat, &NestOrder::identity(3));
    // {Club, Course, Student} is fixed (full set); {Student} alone is the
    // fixed fast path only when student sets are disjoint — measure both
    // an (unfixed) expansion projection and a fixed one.
    group.bench_function("project_unfixed_expansion", |b| {
        b.iter(|| project(std::hint::black_box(&canon), &[1], &NestOrder::identity(1)).unwrap())
    });
    group.bench_function("project_fixed_fast_path", |b| {
        b.iter(|| {
            project(
                std::hint::black_box(&canon),
                &[0, 1, 2],
                &NestOrder::identity(3),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    group.sample_size(20);
    let w = workload::university(200, 3, 40, 2, 8, 6);
    let sc = canonical_of_flat(&w.flat, &NestOrder::identity(3));
    // Course difficulty relation.
    let courses: BTreeSet<Atom> = w.flat.rows().map(|r| r[1]).collect();
    let schema = Schema::new("CD", &["Course", "Difficulty"]).unwrap();
    let cd_flat = FlatRelation::from_rows(
        schema,
        courses
            .iter()
            .enumerate()
            .map(|(i, &c)| vec![c, Atom(9_000_000 + (i as u32 % 3))]),
    )
    .unwrap();
    let cd = canonical_of_flat(&cd_flat, &NestOrder::identity(2));

    group.bench_function("natural_join_rectangles", |b| {
        b.iter(|| natural_join(std::hint::black_box(&sc), std::hint::black_box(&cd)).unwrap())
    });
    // Flat baseline: nested-loop join over expansions.
    group.bench_function("natural_join_flat_baseline", |b| {
        b.iter(|| {
            let l = sc.expand();
            let r = cd.expand();
            let mut out = Vec::new();
            for lr in l.rows() {
                for rr in r.rows() {
                    if lr[1] == rr[0] {
                        out.push((lr.clone(), rr[1]));
                    }
                }
            }
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_projection, bench_join);
criterion_main!(benches);
