//! Dependency-theory costs: Armstrong closure vs the chase on FDs, the
//! dependency basis vs the chase on MVDs, and full 4NF decomposition —
//! the machinery §3.4 assumes is "mechanically obtained".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nf2_deps::{
    candidate_keys, chase_implies_fd, chase_implies_mvd, closure, decompose_4nf, dependency_basis,
    implies_mvd_basis, mine_fds, synthesize_3nf, AttrSet, Fd, Mvd,
};
use nf2_workload as workload;

/// A chain FD set A0 → A1 → … → A(n−1) over `n` attributes.
fn chain_fds(n: usize) -> Vec<Fd> {
    (0..n - 1).map(|i| Fd::new([i], [i + 1])).collect()
}

/// Star MVDs A0 ->-> Ai for each i.
fn star_mvds(n: usize) -> Vec<Mvd> {
    (1..n).map(|i| Mvd::new([0], [i])).collect()
}

fn bench_fd_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_implication");
    for &n in &[4usize, 8, 16] {
        let fds = chain_fds(n);
        let target = Fd::new([0], [n - 1]);
        group.bench_with_input(BenchmarkId::new("closure", n), &n, |b, _| {
            b.iter(|| closure(std::hint::black_box(AttrSet::single(0)), &fds))
        });
        group.bench_with_input(BenchmarkId::new("chase", n), &n, |b, _| {
            b.iter(|| chase_implies_fd(n, std::hint::black_box(&fds), &[], &target))
        });
    }
    group.finish();
}

fn bench_mvd_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvd_implication");
    for &n in &[4usize, 6, 8] {
        let mvds = star_mvds(n);
        let target = Mvd::new([0], [1, 2]);
        group.bench_with_input(BenchmarkId::new("basis", n), &n, |b, _| {
            b.iter(|| implies_mvd_basis(n, &[], std::hint::black_box(&mvds), &target))
        });
        group.bench_with_input(BenchmarkId::new("chase", n), &n, |b, _| {
            b.iter(|| chase_implies_mvd(n, &[], std::hint::black_box(&mvds), &target))
        });
    }
    group.finish();
}

fn bench_basis_and_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("basis_and_keys");
    for &n in &[4usize, 8, 12] {
        let fds = chain_fds(n);
        let mvds = star_mvds(n);
        group.bench_with_input(BenchmarkId::new("dependency_basis", n), &n, |b, _| {
            b.iter(|| dependency_basis(AttrSet::single(0), n, &fds, std::hint::black_box(&mvds)))
        });
        group.bench_with_input(BenchmarkId::new("candidate_keys", n), &n, |b, _| {
            b.iter(|| candidate_keys(n, std::hint::black_box(&fds)))
        });
    }
    group.finish();
}

fn bench_decompose_and_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_design");
    group.sample_size(20);
    for &n in &[4usize, 5, 6] {
        let fds = chain_fds(n);
        let mvds = vec![Mvd::new([0], [1])];
        group.bench_with_input(BenchmarkId::new("decompose_4nf", n), &n, |b, _| {
            b.iter(|| decompose_4nf(n, std::hint::black_box(&fds), &mvds))
        });
        group.bench_with_input(BenchmarkId::new("synthesize_3nf", n), &n, |b, _| {
            b.iter(|| synthesize_3nf(n, std::hint::black_box(&fds)))
        });
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_mining");
    group.sample_size(20);
    let w = workload::university(120, 3, 25, 2, 8, 23);
    group.bench_function("mine_fds_university", |b| {
        b.iter(|| mine_fds(std::hint::black_box(&w.flat)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fd_implication,
    bench_mvd_implication,
    bench_basis_and_keys,
    bench_decompose_and_synthesize,
    bench_mining
);
criterion_main!(benches);
