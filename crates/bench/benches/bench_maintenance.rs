//! §4 incremental maintenance vs the re-nest baseline (E7, E10):
//! per-update wall time as the relation grows, and the degree sweep.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use nf2_core::maintenance::CanonicalRelation;
use nf2_core::nest::canonical_of_flat;
use nf2_core::relation::FlatRelation;
use nf2_core::schema::NestOrder;
use nf2_core::tuple::FlatTuple;
use nf2_workload as workload;

fn sized_relation(size: usize, seed: u64) -> FlatRelation {
    workload::relationship(size, (size as u32 / 4).max(8), 40, 6, seed).flat
}

fn bench_incremental_insert_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update");
    for &size in &[500usize, 2_000, 8_000] {
        let flat = sized_relation(size, 7);
        let order = NestOrder::identity(3);
        let canon = CanonicalRelation::from_flat(&flat, order).unwrap();
        let rows: Vec<FlatTuple> = flat.rows().cloned().collect();
        group.bench_with_input(
            BenchmarkId::new("delete_insert_pair", size),
            &size,
            |b, _| {
                let mut i = 0usize;
                b.iter_batched(
                    || canon.clone(),
                    |mut canon| {
                        let row = rows[(i * 7919) % rows.len()].clone();
                        i += 1;
                        canon.delete(&row).unwrap();
                        canon.insert(row).unwrap();
                        canon
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_renest_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("renest_baseline");
    group.sample_size(10);
    for &size in &[500usize, 2_000, 8_000] {
        let flat = sized_relation(size, 7);
        let order = NestOrder::identity(3);
        group.bench_with_input(BenchmarkId::new("full_renest", size), &flat, |b, flat| {
            b.iter(|| canonical_of_flat(std::hint::black_box(flat), &order));
        });
    }
    group.finish();
}

fn bench_degree_sweep(c: &mut Criterion) {
    // Theorem A-4's second axis: cost grows with the degree n only.
    let mut group = c.benchmark_group("update_vs_degree");
    for n in 2..=5usize {
        let domains: Vec<u32> = vec![14; n];
        let flat = workload::uniform(
            1_500.min(14usize.pow(n as u32) / 2),
            &domains,
            90 + n as u64,
        )
        .flat;
        let order = NestOrder::identity(n);
        let canon = CanonicalRelation::from_flat(&flat, order).unwrap();
        let rows: Vec<FlatTuple> = flat.rows().cloned().collect();
        group.bench_with_input(BenchmarkId::new("delete_insert_pair", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter_batched(
                || canon.clone(),
                |mut canon| {
                    let row = rows[(i * 104729) % rows.len()].clone();
                    i += 1;
                    canon.delete(&row).unwrap();
                    canon.insert(row).unwrap();
                    canon
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_indexed_ablation(c: &mut Criterion) {
    // Ablation: scan-based candt (Theorem A-4 bounds compositions, not
    // probe time) vs the inverted-index engine (§5's deferred
    // "optimization strategy").
    let mut group = c.benchmark_group("candt_ablation");
    for &size in &[2_000usize, 8_000, 32_000] {
        let flat = sized_relation(size, 7);
        let order = NestOrder::identity(3);
        let scan = CanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let indexed = nf2_core::indexed::IndexedCanonicalRelation::from_flat(&flat, order).unwrap();
        let rows: Vec<FlatTuple> = flat.rows().cloned().collect();

        group.bench_with_input(BenchmarkId::new("scan_engine", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter_batched(
                || scan.clone(),
                |mut canon| {
                    let row = rows[(i * 7919) % rows.len()].clone();
                    i += 1;
                    canon.delete(&row).unwrap();
                    canon.insert(row).unwrap();
                    canon
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("indexed_engine", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter_batched(
                || indexed.clone(),
                |mut canon| {
                    let row = rows[(i * 7919) % rows.len()].clone();
                    i += 1;
                    let mut cost = nf2_core::maintenance::CostCounter::new();
                    canon.delete(&row, &mut cost).unwrap();
                    canon.insert(row, &mut cost).unwrap();
                    canon
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_insert_delete,
    bench_renest_baseline,
    bench_degree_sweep,
    bench_indexed_ablation
);
criterion_main!(benches);
