//! E8 timing companion: compression quality is measured by the repro
//! binary; this bench times the compressors themselves (canonical nest vs
//! the reduction strategies) on the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nf2_core::irreducible::{reduce, ReduceStrategy};
use nf2_core::nest::canonical_of_flat;
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_workload as workload;

fn bench_compressors(c: &mut Criterion) {
    let mut group = c.benchmark_group("compressors");
    group.sample_size(10);
    // Reduction strategies are quadratic: keep inputs modest.
    let w = workload::university(40, 3, 12, 2, 5, 3);
    let base = NfRelation::from_flat(&w.flat);
    let order = NestOrder::identity(3);

    group.bench_function("canonical_nest", |b| {
        b.iter(|| canonical_of_flat(std::hint::black_box(&w.flat), &order));
    });
    group.bench_function("reduce_first_fit", |b| {
        b.iter(|| reduce(std::hint::black_box(&base), ReduceStrategy::FirstFit));
    });
    group.bench_function("reduce_greedy", |b| {
        b.iter(|| reduce(std::hint::black_box(&base), ReduceStrategy::GreedyLargest));
    });
    group.bench_function("reduce_random", |b| {
        b.iter(|| reduce(std::hint::black_box(&base), ReduceStrategy::Random(9)));
    });
    group.finish();
}

fn bench_expansion(c: &mut Criterion) {
    // Theorem 1's direction back to 1NF: expansion cost per flat row.
    let mut group = c.benchmark_group("expand");
    for &students in &[100usize, 400] {
        let w = workload::university(students, 4, 60, 2, 12, 11);
        let canon = canonical_of_flat(&w.flat, &NestOrder::identity(3));
        group.bench_with_input(
            BenchmarkId::new("university", w.flat.len()),
            &canon,
            |b, canon| {
                b.iter(|| std::hint::black_box(canon).expand());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compressors, bench_expansion);
criterion_main!(benches);
