//! E9 timing companion: lookup latency on the NF² realization view vs
//! the 1NF baseline, scan and indexed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nf2_core::schema::NestOrder;
use nf2_core::value::Atom;
use nf2_storage::{FlatTable, NfTable, SharedDictionary};
use nf2_workload as workload;
use std::collections::BTreeSet;

fn setup(students: usize) -> (NfTable, FlatTable, Vec<Atom>) {
    let w = workload::university(students, 4, 50, 2, 10, 21);
    let nf = NfTable::from_flat(
        "r1",
        &w.flat,
        NestOrder::identity(3),
        SharedDictionary::new(),
    )
    .unwrap();
    let flat = FlatTable::from_flat("r1f", &w.flat).unwrap();
    let courses: Vec<Atom> = w
        .flat
        .rows()
        .map(|r| r[1])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    (nf, flat, courses)
}

fn bench_scan_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_scan");
    for &students in &[100usize, 400] {
        let (nf, flat, courses) = setup(students);
        group.bench_with_input(BenchmarkId::new("nf2_table", students), &nf, |b, nf| {
            let mut i = 0usize;
            b.iter(|| {
                let course = courses[i % courses.len()];
                i += 1;
                nf.lookup_scan(1, std::hint::black_box(course))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("flat_table", students),
            &flat,
            |b, flat| {
                let mut i = 0usize;
                b.iter(|| {
                    let course = courses[i % courses.len()];
                    i += 1;
                    flat.lookup_scan(1, std::hint::black_box(course))
                });
            },
        );
    }
    group.finish();
}

fn bench_indexed_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_indexed");
    let (nf, _, courses) = setup(400);
    nf.build_index();
    group.bench_function("nf2_table_indexed", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let course = courses[i % courses.len()];
            i += 1;
            nf.lookup_indexed(1, std::hint::black_box(course)).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scan_lookup, bench_indexed_lookup);
criterion_main!(benches);
