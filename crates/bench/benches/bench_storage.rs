//! Storage substrate micro-benchmarks: codec, pages, heap files and
//! table checkpoint/recovery.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bytes::BytesMut;
use nf2_core::schema::NestOrder;
use nf2_core::tuple::{NfTuple, ValueSet};
use nf2_core::value::Atom;
use nf2_storage::codec::{decode_nf_tuple, encode_nf_tuple};
use nf2_storage::{HeapFile, NfTable, Page, SharedDictionary};
use nf2_workload as workload;

fn sample_tuple(width: usize) -> NfTuple {
    NfTuple::new(vec![
        ValueSet::new((0..width as u32).map(Atom).collect()).unwrap(),
        ValueSet::singleton(Atom(1_000_000)),
        ValueSet::new(
            (0..(width as u32 / 2).max(1))
                .map(|v| Atom(2_000_000 + v))
                .collect(),
        )
        .unwrap(),
    ])
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let t = sample_tuple(64);
    let mut encoded = BytesMut::new();
    encode_nf_tuple(&t, &mut encoded);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_nf_tuple", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(256);
            encode_nf_tuple(std::hint::black_box(&t), &mut buf);
            buf
        })
    });
    group.bench_function("decode_nf_tuple", |b| {
        b.iter(|| {
            let mut slice: &[u8] = &encoded;
            decode_nf_tuple(&mut slice, 3).unwrap()
        })
    });
    group.finish();
}

fn bench_page_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("page");
    let record = vec![0xabu8; 120];
    group.bench_function("insert_until_full", |b| {
        b.iter(|| {
            let mut p = Page::new(0);
            while p.fits(record.len()) {
                p.insert(&record).unwrap();
            }
            p
        })
    });
    let mut full = Page::new(0);
    while full.fits(record.len()) {
        full.insert(&record).unwrap();
    }
    group.bench_function("serialize_page", |b| {
        b.iter(|| std::hint::black_box(&full).to_bytes())
    });
    let bytes = full.to_bytes();
    group.bench_function("deserialize_page", |b| {
        b.iter(|| Page::from_bytes(std::hint::black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.sample_size(20);
    group.bench_function("insert_1000_records", |b| {
        let record = vec![7u8; 100];
        b.iter(|| {
            let mut h = HeapFile::new();
            for _ in 0..1000 {
                h.insert(&record).unwrap();
            }
            h
        })
    });
    group.finish();
}

fn bench_checkpoint_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");
    group.sample_size(10);
    let w = workload::relationship(1_000, 80, 40, 6, 3);
    let dir = std::env::temp_dir().join("nf2_bench_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    group.bench_function("checkpoint_1000_rows", |b| {
        b.iter(|| {
            let t = NfTable::from_flat(
                "bench",
                &w.flat,
                NestOrder::identity(3),
                SharedDictionary::new(),
            )
            .unwrap();
            t.checkpoint(&dir).unwrap();
        })
    });
    // Prepare a checkpoint for the open benchmark.
    let t = NfTable::from_flat(
        "bench",
        &w.flat,
        NestOrder::identity(3),
        SharedDictionary::new(),
    )
    .unwrap();
    t.checkpoint(&dir).unwrap();
    group.bench_function("open_1000_rows", |b| {
        b.iter(|| NfTable::open(&dir, "bench", SharedDictionary::new()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_page_ops,
    bench_heap,
    bench_checkpoint_open
);
criterion_main!(benches);
