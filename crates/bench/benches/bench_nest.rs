//! Nest / canonicalize throughput (supports E8): how fast the §3.3
//! transformation from 1NF to canonical NF² runs across workload shapes
//! and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nf2_core::kernel::NestKernel;
use nf2_core::nest::{canonical_of_flat, canonical_of_flat_legacy, nest};
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_workload as workload;

fn bench_single_nest(c: &mut Criterion) {
    let mut group = c.benchmark_group("nest_single_attr");
    for &size in &[1_000usize, 5_000, 20_000] {
        let w = workload::relationship(size, (size / 8) as u32, 50, 6, 7);
        let base = NfRelation::from_flat(&w.flat);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("relationship", size), &base, |b, base| {
            b.iter(|| nest(std::hint::black_box(base), 0));
        });
    }
    group.finish();
}

fn bench_canonicalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonicalize");
    let order = NestOrder::identity(3);
    let workloads = vec![
        workload::university(400, 4, 60, 2, 12, 11),
        workload::relationship(4_000, 300, 60, 6, 12),
        workload::uniform(4_000, &[80, 80, 80], 14),
        workload::zipf(4_000, &[200, 200, 200], 1.1, 15),
    ];
    for w in &workloads {
        let label = w.label.split('(').next().unwrap_or("w").to_owned();
        group.throughput(Throughput::Elements(w.flat.len() as u64));
        group.bench_with_input(BenchmarkId::new(label, w.flat.len()), &w.flat, |b, flat| {
            b.iter(|| canonical_of_flat(std::hint::black_box(flat), &order));
        });
    }
    group.finish();
}

fn bench_order_sensitivity(c: &mut Criterion) {
    // Canonicalization cost across all 6 orders on the same data (E8's
    // best/worst spread has a time dimension too).
    let mut group = c.benchmark_group("canonicalize_orders");
    let w = workload::university(400, 4, 60, 2, 12, 11);
    for order in NestOrder::all(3) {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{order}")),
            &order,
            |b, order| {
                b.iter(|| canonical_of_flat(std::hint::black_box(&w.flat), order));
            },
        );
    }
    group.finish();
}

fn bench_kernel_vs_legacy(c: &mut Criterion) {
    // The headline refactor: single-pass kernel vs the n-pass ν cascade,
    // plus the amortized path reusing one kernel's scratch buffers.
    let mut group = c.benchmark_group("canonicalize_impl");
    let order = NestOrder::identity(3);
    let workloads = vec![
        workload::university(400, 4, 60, 2, 12, 11),
        workload::relationship(4_000, 300, 60, 6, 12),
        workload::uniform(4_000, &[80, 80, 80], 14),
    ];
    for w in &workloads {
        let label = w.label.split('(').next().unwrap_or("w").to_owned();
        group.throughput(Throughput::Elements(w.flat.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("kernel/{label}"), w.flat.len()),
            &w.flat,
            |b, flat| {
                b.iter(|| canonical_of_flat(std::hint::black_box(flat), &order));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("kernel_reused/{label}"), w.flat.len()),
            &w.flat,
            |b, flat| {
                let mut kernel = NestKernel::new();
                b.iter(|| kernel.canonical_of_flat(std::hint::black_box(flat), &order));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("legacy/{label}"), w.flat.len()),
            &w.flat,
            |b, flat| {
                b.iter(|| canonical_of_flat_legacy(std::hint::black_box(flat), &order));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_nest,
    bench_canonicalize,
    bench_order_sensitivity,
    bench_kernel_vs_legacy
);
criterion_main!(benches);
