//! Property tests for the columnar sorted shard segments (PR 7): the
//! immutable segment lists must stay an exact, losslessly decodable
//! tiling of every fresh shard's canonical tuple vector, with exact
//! per-attribute zone metadata — across **all** the `nf2-workload`
//! generators, nest orders, shard counts and routing modes, and across
//! §4 maintenance schedules that leave some shards stale and rebuild
//! others. A final engine-level property pins the ordered SQL surface:
//! `ORDER BY` results are identical whatever the shard layout and
//! whatever path (fresh-segment k-way merge vs stale bounded-heap
//! fallback) answers them.

use proptest::prelude::*;

use nf2_core::schema::NestOrder;
use nf2_core::segment::ShardSegments;
use nf2_core::shard::{MaintenanceCost, ShardSpec, ShardedCanonical};
use nf2_core::tuple::{NfTuple, ValueSet};
use nf2_core::value::Atom;
use nf2_workload as workload;
use nf2_workload::Workload;

/// Instantiates every generator at property-test scale, driven by one
/// seed so each case explores a different instance of each shape.
fn all_generators(seed: u64) -> Vec<Workload> {
    vec![
        workload::university(8 + (seed % 13) as usize, 3, 10, 2, 4, seed),
        workload::relationship(40 + (seed % 37) as usize, 12, 10, 3, seed),
        workload::block_product(2 + (seed % 4) as usize, &[2, 3, 2], seed),
        workload::uniform(30 + (seed % 21) as usize, &[8, 8, 8], seed),
        workload::zipf(40, &[16, 16, 16], 1.1, seed),
        workload::anti_correlated(8 + (seed % 9) as u32, 3, seed),
    ]
}

/// Shard specs under test: hash counts {1, 2, 7} plus a data-derived
/// range split so several range shards are actually populated.
fn specs_for(w: &Workload, order: &NestOrder) -> Vec<ShardSpec> {
    let mut specs = vec![
        ShardSpec::hash(1).unwrap(),
        ShardSpec::hash(2).unwrap(),
        ShardSpec::hash(7).unwrap(),
    ];
    let outer = order.attr_at(order.arity() - 1);
    let mut values: Vec<Atom> = w.flat.rows().map(|r| r[outer]).collect();
    values.sort_unstable();
    values.dedup();
    if values.len() >= 3 {
        let lo = values[values.len() / 3];
        let hi = values[2 * values.len() / 3];
        if lo < hi {
            specs.push(ShardSpec::range(vec![lo, hi]).unwrap());
        }
    }
    specs
}

/// A fresh shard's segments must tile its tuple vector exactly —
/// contiguous starts, full coverage — and decode back losslessly, with
/// exact (not merely sound) per-attribute min/max zone metadata.
fn assert_exact_tiling(tuples: &[NfTuple], segs: &ShardSegments) {
    assert!(segs.is_fresh(), "only fresh shards are checked for tiling");
    let mut start = 0usize;
    let mut decoded: Vec<NfTuple> = Vec::with_capacity(tuples.len());
    for seg in segs.segments() {
        assert_eq!(seg.start(), start, "segments tile contiguously");
        start += seg.rows();
        decoded.extend(seg.decode());

        let slice = &tuples[seg.range()];
        let arity = slice[0].arity();
        for a in 0..arity {
            let lo = slice
                .iter()
                .map(|t| *t.components()[a].as_slice().first().expect("non-empty set"))
                .min()
                .expect("segments are non-empty");
            let hi = slice
                .iter()
                .map(|t| *t.components()[a].as_slice().last().expect("non-empty set"))
                .max()
                .expect("segments are non-empty");
            assert_eq!(seg.min(a), lo, "zone min is exact for attr {a}");
            assert_eq!(seg.max(a), hi, "zone max is exact for attr {a}");
        }
    }
    assert_eq!(start, tuples.len(), "segments cover the whole shard");
    assert_eq!(decoded.as_slice(), tuples, "columnar decode is lossless");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Freshly built stores (kernel rebuild path) have fresh segments
    /// on every shard, and those segments are an exact decodable tiling
    /// with exact zone metadata — for every generator, a rotated nest
    /// order, and every shard spec.
    #[test]
    fn fresh_segments_decode_to_the_tuple_store(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let mut rotated: Vec<usize> = (0..arity).collect();
            rotated.rotate_left(1.min(arity.saturating_sub(1)));
            let orders = [
                NestOrder::identity(arity),
                NestOrder::new(rotated, arity).unwrap(),
            ];
            for order in &orders {
                for spec in specs_for(&w, order) {
                    let sharded =
                        ShardedCanonical::from_flat(&w.flat, order.clone(), spec.clone())
                            .unwrap();
                    for s in 0..sharded.shard_count() {
                        let tuples = sharded.shard(s).relation().tuples();
                        prop_assert!(
                            sharded.shard_segments(s).is_fresh(),
                            "{} {:?}: a full build re-emits shard {s}'s segments",
                            w.label, spec
                        );
                        assert_exact_tiling(tuples, sharded.shard_segments(s));
                        prop_assert_eq!(
                            sharded.shard_segments(s).covered_rows(),
                            tuples.len()
                        );
                    }
                }
            }
        }
    }

    /// Zone-map soundness: a segment that does not `admit` a probe set
    /// on some attribute contains **no** tuple intersecting it there —
    /// skipping it can never lose an answer. Probes mix values drawn
    /// from the data with one atom past the data's maximum.
    #[test]
    fn skipped_segments_hold_no_matching_tuple(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let order = NestOrder::identity(arity);
            let sharded = ShardedCanonical::from_flat(
                &w.flat,
                order.clone(),
                ShardSpec::hash(3).unwrap(),
            )
            .unwrap();
            for a in 0..arity {
                let mut atoms: Vec<Atom> = w.flat.rows().map(|r| r[a]).collect();
                atoms.sort_unstable();
                atoms.dedup();
                let mut picks: Vec<Atom> = atoms
                    .iter()
                    .step_by((atoms.len() / 3).max(1))
                    .copied()
                    .collect();
                picks.push(Atom(atoms.last().expect("workloads are non-empty").id() + 1));
                picks.sort_unstable();
                picks.dedup();
                let probes = ValueSet::new(picks).unwrap();
                for s in 0..sharded.shard_count() {
                    let tuples = sharded.shard(s).relation().tuples();
                    for seg in sharded.shard_segments(s).segments() {
                        if seg.admits(a, &probes) {
                            continue;
                        }
                        for t in &tuples[seg.range()] {
                            let hit = t.components()[a]
                                .as_slice()
                                .iter()
                                .any(|v| probes.as_slice().binary_search(v).is_ok());
                            prop_assert!(
                                !hit,
                                "{}: skipped segment of shard {s} holds a match on attr {a}",
                                w.label
                            );
                        }
                    }
                }
            }
        }
    }

    /// §4 maintenance schedules: after a mixed op batch is applied
    /// through the auto point/rebuild policy, every shard that reports
    /// fresh segments still tiles exactly, and every stale shard has a
    /// recorded delta awaiting absorption.
    #[test]
    fn maintenance_keeps_freshness_honest(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let order = NestOrder::identity(arity);
            let ops = workload::op_trace(&w, 40, 40, seed ^ 0x2e);
            for spec in [ShardSpec::hash(1).unwrap(), ShardSpec::hash(4).unwrap()] {
                let mut sharded =
                    ShardedCanonical::from_flat(&w.flat, order.clone(), spec.clone())
                        .unwrap();
                let mut cost = MaintenanceCost::new(sharded.shard_count());
                sharded.apply_batch_auto(&ops, &mut cost).unwrap();
                for s in 0..sharded.shard_count() {
                    let segs = sharded.shard_segments(s);
                    if segs.is_fresh() {
                        assert_exact_tiling(sharded.shard(s).relation().tuples(), segs);
                    } else {
                        prop_assert!(
                            segs.delta_ops() > 0,
                            "{} {:?}: stale shard {s} must carry a delta",
                            w.label, spec
                        );
                    }
                }
            }
        }
    }
}

/// Builds an engine over `groups` canonical tuples (unique `b…` outer
/// key per group, `width` inner `a…` values each), pre-interning the
/// whole value universe in sorted order so the dictionary stays
/// id-ordered — the fresh-segment merge path's dynamic precondition.
fn ordered_engine(groups: usize, width: usize, shards: usize) -> nf2_query::Engine {
    use nf2_storage::NfTable;

    let engine = nf2_query::Engine::builder().shards(shards).build().unwrap();
    let rows: Vec<[String; 2]> = (0..groups)
        .flat_map(|g| (0..width).map(move |j| [format!("a{g:03}x{j}"), format!("b{g:04}")]))
        .collect();
    for r in &rows {
        engine.dict().intern(&r[0]);
    }
    for g in 0..groups {
        engine.dict().intern(&format!("b{g:04}"));
    }
    let refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| vec![r[0].as_str(), r[1].as_str()])
        .collect();
    let table = NfTable::bulk_load_strs_sharded(
        "t",
        &["A", "B"],
        refs,
        NestOrder::identity(2),
        ShardSpec::hash(shards).unwrap(),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    engine
}

/// Resolves an ordered SQL result to strings, component by component.
fn ordered_strings(engine: &mut nf2_query::Engine, sql: &str) -> Vec<Vec<Vec<String>>> {
    let session = engine.session();
    let snap = session.engine().dict().snapshot();
    session
        .query(sql)
        .unwrap()
        .map(|t| {
            t.as_tuple()
                .components()
                .iter()
                .map(|c| {
                    c.as_slice()
                        .iter()
                        .map(|&a| snap.resolve(a).expect("interned atom").to_owned())
                        .collect()
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The ordered SQL surface is layout- and path-independent: `ORDER
    /// BY B, A LIMIT k` returns the same tuples (resolved to strings)
    /// on 1- and 4-shard engines, matches the oracle (groups sorted by
    /// their unique outer key), and is unchanged when a §4 point insert
    /// staleness-forces the bounded-heap fallback on the same SQL.
    #[test]
    fn ordered_sql_is_layout_and_path_independent(
        groups in 5usize..40,
        width in 1usize..4,
        k in 1usize..12,
    ) {
        // k ≤ groups, so the post-insert sentinel (which sorts last)
        // can never enter the top-k and both arms stay comparable.
        let k = k.min(groups);
        let sql = format!("SELECT * FROM t ORDER BY B, A LIMIT {k}");
        let mut results = Vec::new();
        for shards in [1usize, 4] {
            let mut engine = ordered_engine(groups, width, shards);
            let merged = ordered_strings(&mut engine, &sql);
            prop_assert_eq!(merged.len(), k);
            // The oracle: group g surfaces as ({a…}, {b<g>}) and the
            // unique zero-padded outer keys sort textually.
            for (i, t) in merged.iter().enumerate() {
                prop_assert_eq!(&t[1], &vec![format!("b{i:04}")]);
                prop_assert_eq!(t[0].len(), width);
            }
            // One point insert (sorting after the whole universe, so
            // the answer is unchanged and the dictionary stays
            // id-ordered) marks a shard stale: the same SQL must fall
            // back to the heap and stay identical.
            engine
                .session()
                .run("INSERT INTO t VALUES ('zz_a', 'zz_b')")
                .unwrap();
            {
                let t = engine.table("t").unwrap();
                prop_assert!(
                    (0..t.shard_count())
                        .any(|s| !t.sharded().shard_segments(s).is_fresh()),
                    "the point insert leaves a shard stale"
                );
            }
            let heaped = ordered_strings(&mut engine, &sql);
            prop_assert_eq!(&heaped, &merged, "stale fallback at {} shards", shards);
            results.push(merged);
        }
        prop_assert_eq!(&results[0], &results[1], "1-shard ≡ 4-shard ordering");
    }
}
