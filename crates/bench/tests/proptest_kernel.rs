//! Property tests pinning the single-pass nest kernel tuple-identical to
//! the legacy ν cascade — and, through Theorem 2, to literal pairwise
//! composition under random pick orders — across **all** the `nf2-workload`
//! generators, under the deterministic proptest seeds (CI pins
//! `PROPTEST_RNG_SEED=0`).
//!
//! This is the safety net behind routing every layer (bulk rebuilds,
//! storage bulk loads, the query NEST operator, the E8/E10/E14/E16
//! experiments) through the kernel.

use proptest::prelude::*;

use nf2_core::bulk::{apply_batch, apply_batch_auto_with};
use nf2_core::kernel::NestKernel;
use nf2_core::maintenance::{CanonicalRelation, CostCounter};
use nf2_core::nest::{canonical_of_flat_legacy, nest, nest_pairwise};
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_workload as workload;
use nf2_workload::Workload;

/// Instantiates every generator at property-test scale, driven by one
/// seed so each case explores a different instance of each shape.
fn all_generators(seed: u64) -> Vec<Workload> {
    vec![
        workload::university(8 + (seed % 13) as usize, 3, 10, 2, 4, seed),
        workload::relationship(40 + (seed % 37) as usize, 12, 10, 3, seed),
        workload::block_product(2 + (seed % 4) as usize, &[2, 3, 2], seed),
        workload::uniform(30 + (seed % 21) as usize, &[8, 8, 8], seed),
        workload::zipf(40, &[16, 16, 16], 1.1, seed),
        workload::anti_correlated(8 + (seed % 9) as u32, 3, seed),
        workload::prerequisites(8, 2, 2, seed).0,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The kernel is tuple-identical to the legacy fixpoint cascade on
    /// every workload generator, for every nest order of the schema.
    #[test]
    fn kernel_equals_legacy_on_all_generators(seed in any::<u64>()) {
        let mut kernel = NestKernel::new();
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            for order in NestOrder::all(arity) {
                let fast = kernel.canonical_of_flat(&w.flat, &order);
                let slow = canonical_of_flat_legacy(&w.flat, &order);
                prop_assert_eq!(&fast, &slow, "{} under {}", w.label, order);
                // Theorem 1 both ways: no information gained or lost.
                prop_assert_eq!(fast.expand(), w.flat.clone(), "{}", w.label);
            }
        }
    }

    /// Theorem 2 closes the loop: the kernel's per-attribute fixpoints
    /// also equal literal pairwise composition under random pick orders.
    /// (Pairwise composition is quadratic, so this leg runs on the
    /// smaller generator instances only.)
    #[test]
    fn kernel_nest_equals_pairwise_composition(seed in any::<u64>(), pick_seed in any::<u64>()) {
        let mut kernel = NestKernel::new();
        let small = vec![
            workload::university(5, 2, 6, 2, 3, seed),
            workload::uniform(18, &[5, 5], seed),
            workload::anti_correlated(6, 2, seed),
        ];
        for w in small {
            let base = NfRelation::from_flat(&w.flat);
            for attr in 0..w.flat.schema().arity() {
                let via_kernel = kernel.nest_once(&base, attr);
                prop_assert_eq!(&via_kernel, &nest(&base, attr), "{}", w.label);
                let mut state = pick_seed | 1;
                let pairwise = nest_pairwise(&base, attr, move |k| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as usize % k
                });
                prop_assert_eq!(&via_kernel, &pairwise, "{} attr {}", w.label, attr);
            }
        }
    }

    /// The kernel-backed rebuild arm of `apply_batch_auto` agrees with
    /// pure §4 incremental maintenance on replayed op traces, and one
    /// kernel instance can serve many batches.
    #[test]
    fn kernel_rebuild_arm_matches_incremental(seed in any::<u64>(), ops in 8usize..40) {
        let w = workload::university(6 + (seed % 7) as usize, 2, 8, 2, 3, seed);
        let trace = workload::op_trace(&w, ops, 35, seed ^ 0xABCD);
        let order = NestOrder::identity(3);
        let base = CanonicalRelation::from_flat(&w.flat, order).unwrap();

        let mut incremental = base.clone();
        let mut cost = CostCounter::new();
        apply_batch(&mut incremental, &trace, &mut cost).unwrap();

        let mut kernel = NestKernel::new();
        for chunk in [trace.len(), 1 + trace.len() / 2] {
            let mut auto = base.clone();
            for batch in trace.chunks(chunk.max(1)) {
                apply_batch_auto_with(&mut kernel, &mut auto, batch, &mut cost).unwrap();
            }
            prop_assert_eq!(auto.relation(), incremental.relation());
            auto.verify().unwrap();
        }
    }
}
