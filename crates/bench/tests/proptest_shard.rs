//! Property tests pinning the sharded canonical store tuple-identical to
//! the unsharded canonical form — across **all** the `nf2-workload`
//! generators, shard counts {1, 2, 7}, and both routing modes (hash and
//! range), under the deterministic proptest seeds (CI pins
//! `PROPTEST_RNG_SEED=0`).
//!
//! This is the safety net behind `nf2-core::shard`'s claim that
//! value-routing on the outermost nest attribute `P(n−1)` is exact:
//! stages `0…n−2` of the canonical fold never cross `P(n−1)` values, and
//! the final `ν_{P(n−1)}` merge is associative, so per-shard canonical
//! forms always merge back to `ν_P(R*)` — whatever the data shape, the
//! shard count, or the routing function.

use proptest::prelude::*;

use nf2_core::bulk::{apply_batch, Op};
use nf2_core::maintenance::{CanonicalRelation, CostCounter};
use nf2_core::nest::canonical_of_flat;
use nf2_core::schema::NestOrder;
use nf2_core::shard::{MaintenanceCost, ShardSpec, ShardedCanonical};
use nf2_core::value::Atom;
use nf2_workload as workload;
use nf2_workload::Workload;

/// Instantiates every generator at property-test scale, driven by one
/// seed so each case explores a different instance of each shape.
fn all_generators(seed: u64) -> Vec<Workload> {
    vec![
        workload::university(8 + (seed % 13) as usize, 3, 10, 2, 4, seed),
        workload::relationship(40 + (seed % 37) as usize, 12, 10, 3, seed),
        workload::block_product(2 + (seed % 4) as usize, &[2, 3, 2], seed),
        workload::uniform(30 + (seed % 21) as usize, &[8, 8, 8], seed),
        workload::zipf(40, &[16, 16, 16], 1.1, seed),
        workload::anti_correlated(8 + (seed % 9) as u32, 3, seed),
        workload::prerequisites(8, 2, 2, seed).0,
    ]
}

/// Every spec under test for one workload: shard counts {1, 2, 7} for
/// hash routing, plus range routing with boundaries drawn from the
/// workload's own outermost-attribute values (so several range shards
/// are actually populated).
fn specs_for(w: &Workload, order: &NestOrder) -> Vec<ShardSpec> {
    let mut specs = vec![
        ShardSpec::hash(1).unwrap(),
        ShardSpec::hash(2).unwrap(),
        ShardSpec::hash(7).unwrap(),
    ];
    let outer = order.attr_at(order.arity() - 1);
    let mut values: Vec<Atom> = w.flat.rows().map(|r| r[outer]).collect();
    values.sort_unstable();
    values.dedup();
    if values.len() >= 3 {
        let lo = values[values.len() / 3];
        let hi = values[2 * values.len() / 3];
        if lo < hi {
            specs.push(ShardSpec::range(vec![lo, hi]).unwrap());
        }
    }
    if let (Some(first), Some(last)) = (values.first(), values.last()) {
        // A deliberately skewed range: everything below/above the data.
        specs.push(ShardSpec::range(vec![Atom(first.id().saturating_sub(1))]).unwrap());
        specs.push(ShardSpec::range(vec![Atom(last.id().saturating_add(1))]).unwrap());
    }
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded ≡ unsharded canonical relation (tuple-identical) on every
    /// generator, for the identity order and a rotated order, across all
    /// shard counts and routing modes.
    #[test]
    fn sharded_equals_unsharded_on_all_generators(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let mut rotated: Vec<usize> = (0..arity).collect();
            rotated.rotate_left(1.min(arity.saturating_sub(1)));
            let orders = [
                NestOrder::identity(arity),
                NestOrder::new(rotated, arity).unwrap(),
            ];
            for order in &orders {
                let unsharded = canonical_of_flat(&w.flat, order);
                for spec in specs_for(&w, order) {
                    let sharded =
                        ShardedCanonical::from_flat(&w.flat, order.clone(), spec.clone())
                            .unwrap();
                    prop_assert_eq!(
                        &sharded.to_relation(),
                        &unsharded,
                        "{} under {} with {:?}",
                        w.label,
                        order,
                        spec
                    );
                    prop_assert_eq!(sharded.flat_count(), w.flat.len() as u128);
                }
            }
        }
    }

    /// Routed §4 maintenance and parallel batches agree with the
    /// unsharded incremental path on replayed op streams.
    #[test]
    fn sharded_batches_match_unsharded_maintenance(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let order = NestOrder::identity(arity);
            let ops: Vec<Op> = workload::op_trace(&w, 40, 40, seed ^ 0x18);
            let mut oracle = CanonicalRelation::from_flat(&w.flat, order.clone()).unwrap();
            let mut oracle_cost = CostCounter::new();
            let oracle_summary = apply_batch(&mut oracle, &ops, &mut oracle_cost).unwrap();
            for spec in specs_for(&w, &order) {
                let mut sharded =
                    ShardedCanonical::from_flat(&w.flat, order.clone(), spec.clone()).unwrap();
                let mut cost = MaintenanceCost::new(sharded.shard_count());
                let (summary, _) = sharded.apply_batch_auto(&ops, &mut cost).unwrap();
                prop_assert_eq!(summary, oracle_summary, "{} {:?}", w.label, spec);
                prop_assert_eq!(
                    &sharded.to_relation(),
                    oracle.relation(),
                    "{} {:?}",
                    w.label,
                    spec
                );
                // The aggregate cost is exactly the per-shard sum.
                let probe_sum: u64 =
                    cost.per_shard.iter().map(|c| c.candidate_probes).sum();
                prop_assert_eq!(probe_sum, cost.total.candidate_probes);
            }
        }
    }
}
