//! Property tests for the PR-5 query surface: the streaming **top-k**
//! operator and **shard-pruned** scans.
//!
//! * `ORDER BY + LIMIT k` via the bounded-heap top-k must be
//!   tuple-identical to a stable full sort followed by truncation —
//!   ties included — across **all** the `nf2-workload` generators,
//!   shard counts {1, 2, 7}, both directions, every attribute, at the
//!   algebra level (raw atom streams off the sharded store) *and*
//!   through the full SQL surface (`ORDER BY` over interned strings).
//! * Pruned scans must answer exactly like unpruned scans: routing a
//!   selection on the outermost nest attribute to its shard subset may
//!   skip work, never rows.
//!
//! Deterministic under the vendored proptest seeds (CI pins
//! `PROPTEST_RNG_SEED=0`).

use proptest::prelude::*;

use nf2_algebra::stream::{RelStream, SortDir, TupleOrder};
use nf2_algebra::{eval_stream, Env, Expr, StreamEnv};
use nf2_core::nest::canonical_of_flat;
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_core::shard::{ShardSpec, ShardedCanonical};
use nf2_core::tuple::{NfTuple, TupleView};
use nf2_core::value::Atom;
use nf2_query::Engine;
use nf2_storage::NfTable;
use nf2_workload as workload;
use nf2_workload::Workload;

/// Every generator at property-test scale (mirrors `proptest_shard.rs`).
fn all_generators(seed: u64) -> Vec<Workload> {
    vec![
        workload::university(8 + (seed % 13) as usize, 3, 10, 2, 4, seed),
        workload::relationship(40 + (seed % 37) as usize, 12, 10, 3, seed),
        workload::block_product(2 + (seed % 4) as usize, &[2, 3, 2], seed),
        workload::uniform(30 + (seed % 21) as usize, &[8, 8, 8], seed),
        workload::zipf(40, &[16, 16, 16], 1.1, seed),
        workload::anti_correlated(8 + (seed % 9) as u32, 3, seed),
        workload::prerequisites(8, 2, 2, seed).0,
    ]
}

/// Stable sort-then-truncate oracle over an in-order tuple list, using
/// the operator's own key/tie rules.
fn sort_truncate(tuples: &[NfTuple], order: &TupleOrder, k: usize) -> Vec<NfTuple> {
    let mut keyed: Vec<(Atom, usize, NfTuple)> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| (order.key_of(t), i, t.clone()))
        .collect();
    keyed.sort_by(|(ka, sa, _), (kb, sb, _)| order.cmp_keys(*ka, *kb).then(sa.cmp(sb)));
    keyed.into_iter().take(k).map(|(_, _, t)| t).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Algebra level: top-k over the sharded store's concatenated scan
    /// ≡ stable sort + truncate, for every generator × shard count ×
    /// attribute × direction × k.
    #[test]
    fn top_k_equals_sort_truncate_on_all_generators(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let order = NestOrder::identity(arity);
            for shards in [1usize, 2, 7] {
                let sharded = ShardedCanonical::from_flat(
                    &w.flat,
                    order.clone(),
                    ShardSpec::hash(shards).unwrap(),
                )
                .unwrap();
                // The exact stream a table scan yields: per-shard
                // tuples, back to back.
                let stream_tuples: Vec<NfTuple> = (0..sharded.shard_count())
                    .flat_map(|i| sharded.shard(i).relation().tuples().iter().cloned())
                    .collect();
                for attr in 0..arity {
                    for dir in [SortDir::Asc, SortDir::Desc] {
                        let tuple_order = TupleOrder::by_atom_id(attr, dir);
                        for k in [0usize, 1, 3, stream_tuples.len(), stream_tuples.len() + 5] {
                            let parts: Vec<RelStream<'_>> = (0..sharded.shard_count())
                                .map(|i| RelStream::scan(sharded.shard(i).relation()))
                                .collect();
                            let got: Vec<NfTuple> = RelStream::concat(
                                w.flat.schema().clone(),
                                parts,
                            )
                            .top_k(tuple_order.clone(), k)
                            .map(TupleView::into_owned)
                            .collect();
                            prop_assert_eq!(
                                &got,
                                &sort_truncate(&stream_tuples, &tuple_order, k),
                                "{} shards {} attr {} dir {:?} k {}",
                                w.label, shards, attr, dir, k
                            );
                        }
                    }
                }
            }
        }
    }

    /// SQL level: `ORDER BY <outer> [DESC] LIMIT k` through an engine
    /// (strings, dictionary comparator, compiled plans) ≡ the bare
    /// `ORDER BY` stream truncated, per shard count.
    #[test]
    fn sql_order_by_limit_matches_truncated_sort(seed in any::<u64>()) {
        for w in all_generators(seed).into_iter().step_by(2) {
            let names: Vec<String> = w.flat.schema().attr_names().map(str::to_owned).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let rows: Vec<Vec<String>> = w
                .flat
                .rows()
                .map(|r| r.iter().map(|a| format!("v{:06}", a.id())).collect())
                .collect();
            for shards in [1usize, 2, 7] {
                let engine = Engine::builder().shards(shards).build().unwrap();
                let row_refs: Vec<Vec<&str>> =
                    rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
                let table = NfTable::bulk_load_strs_sharded(
                    "t",
                    &refs,
                    row_refs,
                    NestOrder::identity(names.len()),
                    ShardSpec::hash(shards).unwrap(),
                    engine.dict().clone(),
                )
                .unwrap();
                engine.attach_table(table).unwrap();
                let session = engine.session();
                let outer = names.last().unwrap();
                for dir in ["", " DESC"] {
                    let full: Vec<NfTuple> = session
                        .query(&format!("SELECT * FROM t ORDER BY {outer}{dir}"))
                        .unwrap()
                        .map(|t| t.into_owned())
                        .collect();
                    for k in [0usize, 1, 2, 5, full.len() + 3] {
                        let got: Vec<NfTuple> = session
                            .query(&format!(
                                "SELECT * FROM t ORDER BY {outer}{dir} LIMIT {k}"
                            ))
                            .unwrap()
                            .map(|t| t.into_owned())
                            .collect();
                        let want: Vec<NfTuple> =
                            full.iter().take(k).cloned().collect();
                        prop_assert_eq!(
                            &got, &want,
                            "{} shards {} dir {:?} k {}", w.label, shards, dir, k
                        );
                    }
                }
            }
        }
    }

    /// Pruned scans ≡ unpruned scans: a selection on the outermost nest
    /// attribute evaluated over the routed (pruning) sharded source
    /// yields the same `R*` as the strict evaluator over the whole
    /// relation, for every generator × spec and both predicate shapes
    /// (equality and IN).
    #[test]
    fn pruned_scans_equal_unpruned_scans(seed in any::<u64>()) {
        for w in all_generators(seed) {
            let arity = w.flat.schema().arity();
            let order = NestOrder::identity(arity);
            let outer = order.attr_at(arity - 1);
            let outer_name: String = w
                .flat
                .schema()
                .attr_names()
                .nth(outer)
                .unwrap()
                .to_owned();
            let whole = canonical_of_flat(&w.flat, &order);
            let mut env_strict = Env::new();
            env_strict.insert("t", whole.clone());
            // Values to select: a present value, a pair, and an absent one.
            let mut present: Vec<Atom> = w.flat.rows().map(|r| r[outer]).collect();
            present.sort_unstable();
            present.dedup();
            let value_sets: Vec<Vec<Atom>> = vec![
                vec![present[0]],
                present.iter().copied().take(2).collect(),
                vec![Atom(u32::MAX - 1)],
            ];
            for shards in [2usize, 7] {
                let sharded = ShardedCanonical::from_flat(
                    &w.flat,
                    order.clone(),
                    ShardSpec::hash(shards).unwrap(),
                )
                .unwrap();
                let shard_rels: Vec<&NfRelation> = (0..sharded.shard_count())
                    .map(|i| sharded.shard(i).relation())
                    .collect();
                let mut env = StreamEnv::new();
                env.insert_sharded_relations_routed(
                    "t",
                    w.flat.schema().clone(),
                    shard_rels,
                    sharded.router().clone(),
                );
                for values in &value_sets {
                    let expr = Expr::SelectBox {
                        input: Box::new(Expr::rel("t")),
                        constraints: vec![(outer_name.clone(), values.clone())],
                    };
                    let pruned = eval_stream(&expr, &env)
                        .unwrap()
                        .into_relation()
                        .unwrap();
                    let strict = expr.eval(&env_strict).unwrap();
                    prop_assert_eq!(
                        pruned.expand().into_rows(),
                        strict.expand().into_rows(),
                        "{} shards {} values {:?}",
                        w.label, shards, values
                    );
                }
            }
        }
    }
}
