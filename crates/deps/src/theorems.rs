//! Executable forms of §3.4's Theorems 3–5 and the permutation-choice
//! heuristic ("nesting on left-side attributes of FDs or MVDs allows us to
//! get to 'better' NFRs").
//!
//! Theorem 3: if FD `F → E` holds, **every** irreducible form is fixed on
//! `F`. Theorem 4: if MVD `F →→ E1 | … | Em` holds, **some** irreducible
//! form is fixed on `F` (not all — Example 3). Theorem 5: for any nest
//! order there is a canonical form fixed on the `n−1` attributes other
//! than the first-nested one.

use nf2_core::irreducible::{reduce, ReduceStrategy};
use nf2_core::nest::canonical_of_flat;
use nf2_core::properties::is_fixed_on;
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{AttrId, NestOrder};

use crate::attrset::AttrSet;
use crate::fd::Fd;
use crate::mvd::Mvd;

/// Evidence gathered while stress-testing Theorem 3 on an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Theorem3Report {
    /// Whether the FD holds on the instance at all.
    pub fd_holds: bool,
    /// Number of distinct irreducible forms sampled.
    pub forms_sampled: usize,
    /// Whether every sampled form was fixed on the FD's left side.
    pub all_fixed: bool,
}

/// Samples irreducible forms of `flat` (every canonical order plus random
/// reductions) and checks each is fixed on `fd.lhs` — Theorem 3's claim.
///
/// Theorem 3 holds in §3.4's standing setting: the relation is a 3NF
/// fragment whose attributes are exactly `F ∪ E` (determinant plus
/// dependents). With a *free* attribute outside `F ∪ E`, two tuples that
/// agree on `F` and `E` but differ on the free attribute can compose over
/// `F`, splitting an `F`-value across tuples — the conclusion fails (see
/// DESIGN.md D9 and the `theorem3_requires_fragment_scope` test). This
/// checker reports whatever the instance exhibits; callers wanting the
/// theorem's guarantee should pass fragments.
pub fn check_theorem3(flat: &FlatRelation, fd: &Fd, random_samples: u64) -> Theorem3Report {
    let fd_holds = crate::fd::holds_fd(flat, fd);
    let lhs: Vec<AttrId> = fd.lhs.iter().collect();
    let forms = sample_irreducible_forms(flat, random_samples);
    let all_fixed = forms.iter().all(|r| is_fixed_on(r, &lhs));
    Theorem3Report {
        fd_holds,
        forms_sampled: forms.len(),
        all_fixed,
    }
}

/// Evidence for Theorem 4 on an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Theorem4Report {
    /// Whether the MVD holds on the instance.
    pub mvd_holds: bool,
    /// Number of distinct irreducible forms sampled.
    pub forms_sampled: usize,
    /// How many sampled forms were fixed on the MVD's left side.
    pub fixed_count: usize,
}

impl Theorem4Report {
    /// Theorem 4 asserts existence: at least one fixed form.
    pub fn exists_fixed(&self) -> bool {
        self.fixed_count > 0
    }

    /// Example 3's observation: some forms may fail to be fixed.
    pub fn exists_unfixed(&self) -> bool {
        self.fixed_count < self.forms_sampled
    }
}

/// Samples irreducible forms and counts how many are fixed on `mvd.lhs` —
/// Theorem 4 plus Example 3's converse.
pub fn check_theorem4(flat: &FlatRelation, mvd: &Mvd, random_samples: u64) -> Theorem4Report {
    let mvd_holds = crate::mvd::holds_mvd(flat, mvd);
    let lhs: Vec<AttrId> = mvd.lhs.iter().collect();
    let forms = sample_irreducible_forms(flat, random_samples);
    let fixed_count = forms.iter().filter(|r| is_fixed_on(r, &lhs)).count();
    Theorem4Report {
        mvd_holds,
        forms_sampled: forms.len(),
        fixed_count,
    }
}

/// Theorem 5 check: the canonical form for `order` is fixed on the
/// `n−1` attributes excluding the first-nested one.
pub fn check_theorem5(flat: &FlatRelation, order: &NestOrder) -> bool {
    let canon = canonical_of_flat(flat, order);
    let rest: Vec<AttrId> = (0..flat.schema().arity())
        .filter(|&a| a != order.attr_at(0))
        .collect();
    is_fixed_on(&canon, &rest)
}

/// Collects a diverse sample of irreducible forms: all canonical forms
/// (when the arity permits enumerating `n!`) plus `random_samples` random
/// reductions. Deduplicated.
pub fn sample_irreducible_forms(flat: &FlatRelation, random_samples: u64) -> Vec<NfRelation> {
    let base = NfRelation::from_flat(flat);
    let mut forms: Vec<NfRelation> = Vec::new();
    let mut push = |r: NfRelation| {
        if !forms.contains(&r) {
            forms.push(r);
        }
    };
    if flat.schema().arity() <= 5 {
        for order in NestOrder::all(flat.schema().arity()) {
            push(canonical_of_flat(flat, &order));
        }
    }
    push(reduce(&base, ReduceStrategy::FirstFit));
    push(reduce(&base, ReduceStrategy::GreedyLargest));
    for seed in 0..random_samples {
        push(reduce(&base, ReduceStrategy::Random(seed)));
    }
    forms
}

/// §3.4's design heuristic: a nest order whose canonical form is fixed on
/// the determinants of the given dependencies.
///
/// Dependent (right-side) attributes are nested **first** and determinant
/// (left-side) attributes **last**; by the Theorem 5 argument the result
/// is fixed on every attribute nested after position 0 — in particular on
/// all determinants. (In the paper's reversed notation this is exactly
/// "P is a permutation of F1 … Fk" heading the sequence.)
pub fn suggest_nest_order(arity: usize, fds: &[Fd], mvds: &[Mvd]) -> NestOrder {
    let mut determinants = AttrSet::EMPTY;
    for fd in fds {
        determinants = determinants.union(fd.lhs);
    }
    for mvd in mvds {
        determinants = determinants.union(mvd.lhs);
    }
    let dependents = AttrSet::full(arity).minus(determinants);
    let mut order: Vec<AttrId> = dependents.iter().collect();
    order.extend(determinants.iter());
    NestOrder::new(order, arity).expect("constructed from a partition of 0..arity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::schema::Schema;
    use nf2_core::value::Atom;

    fn rel3(rows: &[[u32; 3]]) -> FlatRelation {
        let schema = Schema::new("R", &["A", "B", "C"]).unwrap();
        FlatRelation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Atom(v)).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    /// Example 3's instance: MVD A ->-> B | C.
    fn example3() -> FlatRelation {
        rel3(&[[1, 11, 21], [1, 12, 21], [2, 11, 21], [2, 11, 22]])
    }

    #[test]
    fn theorem3_fd_implies_all_forms_fixed() {
        // 3NF fragment R(A,B) with FD A -> B (U = F ∪ E, the §3.4
        // setting): every irreducible form is fixed on {A}.
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let r = FlatRelation::from_rows(
            schema,
            [[1u32, 11], [2, 11], [3, 12], [4, 12], [5, 11]]
                .iter()
                .map(|row| row.iter().map(|&v| Atom(v)).collect::<Vec<_>>()),
        )
        .unwrap();
        let fd = Fd::new([0], [1]);
        let report = check_theorem3(&r, &fd, 24);
        assert!(report.fd_holds);
        assert!(report.forms_sampled >= 1);
        assert!(
            report.all_fixed,
            "Theorem 3: every irreducible form fixed on A"
        );
    }

    #[test]
    fn theorem3_requires_fragment_scope() {
        // With a free attribute C outside F ∪ E the conclusion fails:
        // (1,11,21) and (3,11,21) compose over A, after which a1 and a3
        // share a tuple while (1,11,22) still holds a1 — not fixed on A.
        // This is why §3.4 assumes 3NF fragments (DESIGN.md D9).
        let r = rel3(&[
            [1, 11, 21],
            [1, 11, 22],
            [2, 12, 21],
            [3, 11, 23],
            [3, 11, 21],
        ]);
        let fd = Fd::new([0], [1]);
        let report = check_theorem3(&r, &fd, 48);
        assert!(report.fd_holds, "the FD itself holds");
        assert!(
            !report.all_fixed,
            "a free attribute breaks fixedness on the determinant"
        );
    }

    #[test]
    fn theorem3_without_fd_can_fail() {
        // No FD A -> B here; some irreducible forms are not fixed on A.
        let r = rel3(&[[1, 11, 21], [1, 12, 21], [2, 11, 21], [2, 12, 22]]);
        let fd = Fd::new([0], [1]);
        let report = check_theorem3(&r, &fd, 24);
        assert!(!report.fd_holds);
        assert!(!report.all_fixed);
    }

    #[test]
    fn theorem4_mvd_gives_existence_not_universality() {
        let r = example3();
        let mvd = Mvd::new([0], [1]);
        let report = check_theorem4(&r, &mvd, 32);
        assert!(report.mvd_holds, "Example 3 assumes A ->-> B|C");
        assert!(
            report.exists_fixed(),
            "Theorem 4: some irreducible form is fixed on A"
        );
        assert!(
            report.exists_unfixed(),
            "Example 3: R8 is an irreducible form not fixed on A ({} of {} fixed)",
            report.fixed_count,
            report.forms_sampled
        );
    }

    #[test]
    fn theorem5_holds_for_every_order() {
        let r = example3();
        for order in NestOrder::all(3) {
            assert!(check_theorem5(&r, &order), "order {order}");
        }
    }

    #[test]
    fn suggested_order_nests_determinants_last() {
        // FD A -> B over R(A,B,C): A is the determinant, so A is nested
        // last and the canonical form is fixed on {A}.
        let fds = vec![Fd::new([0], [1])];
        let order = suggest_nest_order(3, &fds, &[]);
        assert_eq!(*order.as_slice().last().unwrap(), 0);

        let r = rel3(&[[1, 11, 21], [1, 11, 22], [2, 12, 21], [3, 11, 23]]);
        let canon = canonical_of_flat(&r, &order);
        assert!(
            is_fixed_on(&canon, &[0]),
            "canonical under suggested order fixed on A"
        );
    }

    #[test]
    fn suggested_order_covers_mvd_determinants() {
        let mvds = vec![Mvd::new([0], [1])];
        let order = suggest_nest_order(3, &[], &mvds);
        // Determinant {A} last; dependents {B, C} first.
        assert_eq!(*order.as_slice().last().unwrap(), 0);
        let r = example3();
        let canon = canonical_of_flat(&r, &order);
        assert!(is_fixed_on(&canon, &[0]));
    }

    #[test]
    fn suggested_order_with_no_deps_is_identity() {
        let order = suggest_nest_order(3, &[], &[]);
        assert_eq!(order.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn sample_forms_are_distinct_and_equivalent() {
        let r = example3();
        let forms = sample_irreducible_forms(&r, 16);
        for f in &forms {
            assert_eq!(f.expand(), r);
        }
        // Deduplicated.
        for (i, a) in forms.iter().enumerate() {
            for b in forms.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}

#[cfg(test)]
mod cardinality_tests {
    use super::*;
    use nf2_core::properties::{cardinality_class, CardinalityClass};
    use nf2_core::schema::Schema;
    use nf2_core::value::Atom;

    /// Theorem 3 also characterises the Def. 6 classes of an irreducible
    /// form under an FD. On the fragment R(A,B) with A -> B, every
    /// irreducible form has one tuple per B-value: the determinant's
    /// values sit inside compound sets of single tuples (our `n:1`) and
    /// each dependent value appears exactly once as a singleton. The
    /// paper writes the dependent class as "1:n" — the same
    /// value-to-tuple correspondence read in the opposite orientation
    /// (one tuple holding n determinant values per dependent value).
    #[test]
    fn theorem3_cardinality_classes_on_fragment() {
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let flat = FlatRelation::from_rows(
            schema,
            [[1u32, 11], [2, 11], [3, 12], [4, 12], [5, 11]]
                .iter()
                .map(|row| row.iter().map(|&v| Atom(v)).collect::<Vec<_>>()),
        )
        .unwrap();
        for form in sample_irreducible_forms(&flat, 16) {
            assert_eq!(
                cardinality_class(&form, 0),
                CardinalityClass::NToOne,
                "determinant values group inside single tuples"
            );
            assert_eq!(
                cardinality_class(&form, 1),
                CardinalityClass::OneToOne,
                "each dependent value heads exactly one tuple"
            );
        }
    }

    /// Theorem 4's class claim: under an MVD the dependents of a fixed
    /// irreducible form are `m:n` — values recur across tuples and inside
    /// compound sets. Example 3's R7 exhibits it exactly.
    #[test]
    fn theorem4_cardinality_class_is_m_to_n() {
        let schema = Schema::new("R", &["A", "B", "C"]).unwrap();
        let flat = FlatRelation::from_rows(
            schema,
            [[1u32, 11, 21], [1, 12, 21], [2, 11, 21], [2, 11, 22]]
                .iter()
                .map(|row| row.iter().map(|&v| Atom(v)).collect::<Vec<_>>()),
        )
        .unwrap();
        // R7 = the A-fixed irreducible form from Example 3.
        let forms = sample_irreducible_forms(&flat, 16);
        let r7 = forms
            .iter()
            .find(|f| is_fixed_on(f, &[0]))
            .expect("Theorem 4: a fixed form exists");
        assert_eq!(
            cardinality_class(r7, 1),
            CardinalityClass::MToN,
            "dependent B of R7 is m:n as Theorem 4 states"
        );
    }
}
