//! The chase: a sound and **complete** decision procedure for
//! implication of functional and multivalued dependencies, and for the
//! lossless-join property of decompositions.
//!
//! The dependency basis ([`crate::basis`]) treats FDs only through their
//! MVD images; rules that *mix* the two — e.g. coalescence
//! (`X →→ Y`, `Z → W`, `W ⊆ Y`, `Z ∩ Y = ∅` ⟹ `X → W`) — need the
//! chase. §3.4 of the paper reasons from both kinds of dependency at
//! once, so the substrate must decide the mixed theory.
//!
//! The tableau starts with two rows that agree exactly on the left side
//! of the dependency being tested. Chasing applies:
//!
//! * the **FD rule** — rows agreeing on `lhs` get their `rhs` symbols
//!   unified (smaller symbol wins, globally);
//! * the **MVD rule** — rows agreeing on `lhs` spawn the row that swaps
//!   their `rhs` components.
//!
//! Each column only ever holds symbols present in it initially, so the
//! tableau is bounded (≤ `s^n` rows for `s` symbols per column) and the
//! fixpoint exists.

use std::collections::BTreeSet;

use crate::attrset::AttrSet;
use crate::fd::Fd;
use crate::mvd::Mvd;

/// A chase tableau: rows of symbols, one column per attribute.
#[derive(Debug, Clone)]
struct Tableau {
    arity: usize,
    rows: Vec<Vec<u32>>,
    seen: BTreeSet<Vec<u32>>,
}

impl Tableau {
    fn new(arity: usize, rows: Vec<Vec<u32>>) -> Self {
        let seen = rows.iter().cloned().collect();
        Tableau { arity, rows, seen }
    }

    /// Globally renames symbol `from` to `to` (the FD equate step).
    fn rename(&mut self, from: u32, to: u32) {
        for row in &mut self.rows {
            for sym in row.iter_mut() {
                if *sym == from {
                    *sym = to;
                }
            }
        }
        self.seen = self.rows.iter().cloned().collect();
    }

    /// One FD pass. Returns whether anything changed.
    fn apply_fds(&mut self, fds: &[Fd]) -> bool {
        let mut changed = false;
        loop {
            let mut pair: Option<(u32, u32)> = None;
            'scan: for fd in fds {
                for i in 0..self.rows.len() {
                    for j in (i + 1)..self.rows.len() {
                        let (a, b) = (&self.rows[i], &self.rows[j]);
                        if fd.lhs.iter().all(|c| a[c] == b[c]) {
                            for c in fd.rhs.iter() {
                                if a[c] != b[c] {
                                    pair = Some((a[c].max(b[c]), a[c].min(b[c])));
                                    break 'scan;
                                }
                            }
                        }
                    }
                }
            }
            match pair {
                Some((from, to)) => {
                    self.rename(from, to);
                    changed = true;
                }
                None => return changed,
            }
        }
    }

    /// One MVD pass: adds every derivable swap row. Returns whether
    /// anything was added.
    fn apply_mvds(&mut self, mvds: &[Mvd]) -> bool {
        let mut changed = false;
        loop {
            let mut added = false;
            for mvd in mvds {
                let n = self.rows.len();
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let (a, b) = (&self.rows[i], &self.rows[j]);
                        if !mvd.lhs.iter().all(|c| a[c] == b[c]) {
                            continue;
                        }
                        // Swap: rhs columns from `a`, the rest from `b`.
                        let row: Vec<u32> = (0..self.arity)
                            .map(|c| if mvd.rhs.contains(c) { a[c] } else { b[c] })
                            .collect();
                        if self.seen.insert(row.clone()) {
                            self.rows.push(row);
                            added = true;
                        }
                    }
                }
            }
            if !added {
                return changed;
            }
            changed = true;
        }
    }

    /// Chases to fixpoint under both rule kinds.
    fn chase(&mut self, fds: &[Fd], mvds: &[Mvd]) {
        loop {
            let f = self.apply_fds(fds);
            let m = self.apply_mvds(mvds);
            if !f && !m {
                break;
            }
        }
    }
}

/// The canonical two-row start: rows agree exactly on `lhs`
/// (symbol = column index there), and use disjoint fresh symbols
/// elsewhere.
fn two_row_start(arity: usize, lhs: AttrSet) -> Tableau {
    let row0: Vec<u32> = (0..arity).map(|c| c as u32).collect();
    let row1: Vec<u32> = (0..arity)
        .map(|c| {
            if lhs.contains(c) {
                c as u32
            } else {
                (arity + c) as u32
            }
        })
        .collect();
    Tableau::new(arity, vec![row0, row1])
}

/// Whether `fds ∪ mvds ⊨ target` (an FD), decided by the chase.
/// Complete for the mixed FD+MVD theory.
pub fn chase_implies_fd(arity: usize, fds: &[Fd], mvds: &[Mvd], target: &Fd) -> bool {
    if target.is_trivial() {
        return true;
    }
    let mut t = two_row_start(arity, target.lhs);
    t.chase(fds, mvds);
    // The two start rows live at indices 0 and 1 (chase never reorders).
    target.rhs.iter().all(|c| t.rows[0][c] == t.rows[1][c])
}

/// Whether `fds ∪ mvds ⊨ target` (an MVD), decided by the chase.
/// Complete for the mixed FD+MVD theory.
pub fn chase_implies_mvd(arity: usize, fds: &[Fd], mvds: &[Mvd], target: &Mvd) -> bool {
    if target.is_trivial(arity) {
        return true;
    }
    let mut t = two_row_start(arity, target.lhs);
    t.chase(fds, mvds);
    // Implied iff the swap of the two start rows on `rhs` is present.
    let (r0, r1) = (t.rows[0].clone(), t.rows[1].clone());
    let want: Vec<u32> = (0..arity)
        .map(|c| if target.rhs.contains(c) { r0[c] } else { r1[c] })
        .collect();
    t.seen.contains(&want)
}

/// Whether decomposing a relation over `arity` attributes into
/// `fragments` has a lossless join under `fds ∪ mvds` (the classical
/// tableau test: one row per fragment, distinguished symbols on the
/// fragment's attributes; lossless iff chasing produces an
/// all-distinguished row).
pub fn is_lossless_join(arity: usize, fds: &[Fd], mvds: &[Mvd], fragments: &[AttrSet]) -> bool {
    let rows: Vec<Vec<u32>> = fragments
        .iter()
        .enumerate()
        .map(|(i, frag)| {
            (0..arity)
                .map(|c| {
                    if frag.contains(c) {
                        c as u32 // distinguished
                    } else {
                        (arity * (i + 1) + c) as u32 // fresh per row
                    }
                })
                .collect()
        })
        .collect();
    let mut t = Tableau::new(arity, rows);
    t.chase(fds, mvds);
    let goal: Vec<u32> = (0..arity).map(|c| c as u32).collect();
    t.seen.contains(&goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::implies;

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    fn mvd(lhs: &[usize], rhs: &[usize]) -> Mvd {
        Mvd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn fd_transitivity() {
        let fds = [fd(&[0], &[1]), fd(&[1], &[2])];
        assert!(chase_implies_fd(3, &fds, &[], &fd(&[0], &[2])));
        assert!(!chase_implies_fd(3, &fds, &[], &fd(&[2], &[0])));
    }

    #[test]
    fn fd_augmentation_and_reflexivity() {
        let fds = [fd(&[0], &[1])];
        assert!(chase_implies_fd(3, &fds, &[], &fd(&[0, 2], &[1, 2])));
        assert!(chase_implies_fd(3, &[], &[], &fd(&[0, 1], &[1])));
    }

    #[test]
    fn chase_agrees_with_closure_on_fd_only_sets() {
        // Pseudo-exhaustive check over a small space: all single-attr FDs
        // over 3 attributes, premises of size 2.
        let singles: Vec<Fd> = (0..3)
            .flat_map(|a| (0..3).filter(move |&b| b != a).map(move |b| fd(&[a], &[b])))
            .collect();
        for i in 0..singles.len() {
            for j in 0..singles.len() {
                let premises = [singles[i], singles[j]];
                for goal in &singles {
                    assert_eq!(
                        chase_implies_fd(3, &premises, &[], goal),
                        implies(&premises, goal),
                        "premises {premises:?} goal {goal:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mvd_complementation() {
        let mvds = [mvd(&[0], &[1])];
        assert!(chase_implies_mvd(3, &[], &mvds, &mvd(&[0], &[2])));
    }

    #[test]
    fn mvd_augmentation() {
        let mvds = [mvd(&[0], &[1])];
        assert!(chase_implies_mvd(4, &[], &mvds, &mvd(&[0, 2], &[1])));
    }

    #[test]
    fn mvd_transitivity() {
        // X ->-> Y, Y ->-> Z ⟹ X ->-> Z − Y. U=ABCD, A->->B, B->->C.
        let mvds = [mvd(&[0], &[1]), mvd(&[1], &[2])];
        assert!(chase_implies_mvd(4, &[], &mvds, &mvd(&[0], &[2])));
    }

    #[test]
    fn mvd_not_implied_without_premises() {
        assert!(!chase_implies_mvd(3, &[], &[], &mvd(&[0], &[1])));
    }

    #[test]
    fn fd_implies_its_mvd_image() {
        let fds = [fd(&[0], &[1])];
        assert!(chase_implies_mvd(3, &fds, &[], &mvd(&[0], &[1])));
    }

    #[test]
    fn coalescence_needs_the_chase() {
        // A ->-> B (over ABC) plus C -> B imply the FD A -> B — the
        // mixed-theory rule the dependency basis alone cannot see.
        let fds = [fd(&[2], &[1])];
        let mvds = [mvd(&[0], &[1])];
        assert!(chase_implies_fd(3, &fds, &mvds, &fd(&[0], &[1])));
        // Sanity: neither premise alone implies it.
        assert!(!chase_implies_fd(3, &fds, &[], &fd(&[0], &[1])));
        assert!(!chase_implies_fd(3, &[], &mvds, &fd(&[0], &[1])));
    }

    #[test]
    fn trivial_targets_short_circuit() {
        assert!(chase_implies_fd(3, &[], &[], &fd(&[0, 1], &[0])));
        assert!(chase_implies_mvd(3, &[], &[], &mvd(&[0], &[1, 2])));
    }

    #[test]
    fn lossless_binary_fd_split() {
        // R(A,B,C), A -> B: {A,B} ⋈ {A,C} is lossless.
        let fds = [fd(&[0], &[1])];
        let frags = [AttrSet::from_attrs([0, 1]), AttrSet::from_attrs([0, 2])];
        assert!(is_lossless_join(3, &fds, &[], &frags));
    }

    #[test]
    fn lossy_split_detected() {
        // R(A,B,C) with no dependencies: {A,B} ⋈ {B,C} loses.
        let frags = [AttrSet::from_attrs([0, 1]), AttrSet::from_attrs([1, 2])];
        assert!(!is_lossless_join(3, &[], &[], &frags));
    }

    #[test]
    fn mvd_split_is_lossless() {
        // Fagin's theorem: R = {X,Y} ⋈ {X,Z} lossless iff X ->-> Y.
        // The paper's R1: Student ->-> Course | Club.
        let mvds = [mvd(&[0], &[1])];
        let frags = [AttrSet::from_attrs([0, 1]), AttrSet::from_attrs([0, 2])];
        assert!(is_lossless_join(3, &[], &mvds, &frags));
        assert!(!is_lossless_join(3, &[], &[], &frags));
    }

    #[test]
    fn three_way_split_with_fds() {
        // R(A,B,C,D), A -> B, A -> C, A -> D: star split on A lossless.
        let fds = [fd(&[0], &[1]), fd(&[0], &[2]), fd(&[0], &[3])];
        let frags = [
            AttrSet::from_attrs([0, 1]),
            AttrSet::from_attrs([0, 2]),
            AttrSet::from_attrs([0, 3]),
        ];
        assert!(is_lossless_join(4, &fds, &[], &frags));
    }

    #[test]
    fn single_fragment_is_trivially_lossless() {
        assert!(is_lossless_join(3, &[], &[], &[AttrSet::full(3)]));
    }

    #[test]
    fn chase_agrees_with_basis_on_mvd_only_sets() {
        // Both procedures are complete for pure MVD theories; they must
        // agree on every small instance.
        use crate::basis::implies_mvd_basis;
        let all_mvds: Vec<Mvd> = (0..3)
            .flat_map(|a| {
                (0..3)
                    .filter(move |&b| b != a)
                    .map(move |b| mvd(&[a], &[b]))
            })
            .collect();
        for i in 0..all_mvds.len() {
            for j in 0..all_mvds.len() {
                let premises = [all_mvds[i], all_mvds[j]];
                for goal in &all_mvds {
                    assert_eq!(
                        chase_implies_mvd(3, &[], &premises, goal),
                        implies_mvd_basis(3, &[], &premises, goal),
                        "premises {premises:?} goal {goal:?}"
                    );
                }
            }
        }
    }
}
