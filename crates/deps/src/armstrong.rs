//! Armstrong derivations: *checkable proof trees* for FD implication.
//!
//! [`crate::fd::implies`] answers "does `F ⊨ X → Y` hold?" with a bit;
//! this module answers with evidence — a derivation tree built from
//! Armstrong's axioms (reflexivity, augmentation, transitivity) plus the
//! derived union rule, which can be re-verified step by step without
//! reference to the closure algorithm that produced it. The same
//! philosophy as the executable Theorems 3–5: results the paper's
//! tradition states on paper become artifacts a test suite can audit.

use std::fmt;

use crate::attrset::AttrSet;
use crate::fd::Fd;

/// A proof tree deriving one FD from a set of given FDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derivation {
    /// An FD from the hypothesis set (its index is kept for display).
    Given {
        /// Position in the hypothesis list.
        index: usize,
        /// The hypothesis itself.
        fd: Fd,
    },
    /// Reflexivity: `X → Y` whenever `Y ⊆ X`.
    Reflexivity {
        /// The concluded (trivial) FD.
        fd: Fd,
    },
    /// Augmentation: from `X → Y` infer `XZ → YZ`.
    Augmentation {
        /// Proof of the base FD.
        base: Box<Derivation>,
        /// The attributes `Z` added to both sides.
        with: AttrSet,
    },
    /// Transitivity: from `X → Y` and `Y → Z` infer `X → Z`.
    Transitivity {
        /// Proof of `X → Y`.
        first: Box<Derivation>,
        /// Proof of `Y → Z`; its left side must equal the first's right
        /// side exactly.
        second: Box<Derivation>,
    },
    /// Union (derived rule): from `X → Y` and `X → Z` infer `X → YZ`.
    Union {
        /// Proof of `X → Y`.
        left: Box<Derivation>,
        /// Proof of `X → Z` (same left side).
        right: Box<Derivation>,
    },
}

impl Derivation {
    /// The FD this tree concludes.
    pub fn conclusion(&self) -> Fd {
        match self {
            Derivation::Given { fd, .. } | Derivation::Reflexivity { fd } => *fd,
            Derivation::Augmentation { base, with } => {
                let b = base.conclusion();
                Fd {
                    lhs: b.lhs.union(*with),
                    rhs: b.rhs.union(*with),
                }
            }
            Derivation::Transitivity { first, second } => Fd {
                lhs: first.conclusion().lhs,
                rhs: second.conclusion().rhs,
            },
            Derivation::Union { left, right } => {
                let l = left.conclusion();
                Fd {
                    lhs: l.lhs,
                    rhs: l.rhs.union(right.conclusion().rhs),
                }
            }
        }
    }

    /// Structurally verifies every step against `given`, with no appeal
    /// to the closure algorithm. Returns whether the tree is sound.
    pub fn verify(&self, given: &[Fd]) -> bool {
        match self {
            Derivation::Given { index, fd } => given.get(*index) == Some(fd),
            Derivation::Reflexivity { fd } => fd.rhs.is_subset_of(fd.lhs),
            Derivation::Augmentation { base, .. } => base.verify(given),
            Derivation::Transitivity { first, second } => {
                first.verify(given)
                    && second.verify(given)
                    && first.conclusion().rhs == second.conclusion().lhs
            }
            Derivation::Union { left, right } => {
                left.verify(given)
                    && right.verify(given)
                    && left.conclusion().lhs == right.conclusion().lhs
            }
        }
    }

    /// Number of rule applications (tree nodes).
    pub fn len(&self) -> usize {
        match self {
            Derivation::Given { .. } | Derivation::Reflexivity { .. } => 1,
            Derivation::Augmentation { base, .. } => 1 + base.len(),
            Derivation::Transitivity { first, second }
            | Derivation::Union {
                left: first,
                right: second,
            } => 1 + first.len() + second.len(),
        }
    }

    /// Always false (a derivation has at least one node); for API
    /// symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            Derivation::Given { index, fd } => format!("{pad}given #{index}: {fd}"),
            Derivation::Reflexivity { fd } => format!("{pad}reflexivity: {fd}"),
            Derivation::Augmentation { with, .. } => {
                format!("{pad}augment with {with}: {}", self.conclusion())
            }
            Derivation::Transitivity { .. } => {
                format!("{pad}transitivity: {}", self.conclusion())
            }
            Derivation::Union { .. } => format!("{pad}union: {}", self.conclusion()),
        };
        out.push_str(&line);
        out.push('\n');
        match self {
            Derivation::Given { .. } | Derivation::Reflexivity { .. } => {}
            Derivation::Augmentation { base, .. } => base.render(depth + 1, out),
            Derivation::Transitivity { first, second }
            | Derivation::Union {
                left: first,
                right: second,
            } => {
                first.render(depth + 1, out);
                second.render(depth + 1, out);
            }
        }
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(out.trim_end())
    }
}

/// Derives `target` from `given`, or `None` when it is not implied.
///
/// Constructive closure: a proof of `X → S` is grown from reflexivity
/// (`S = X`); each closure step that fires a hypothesis `V → W` extends
/// it via reflexivity (`S → V`), transitivity (`X → V`, then `X → W`)
/// and union (`X → S ∪ W`). The final tree is pruned to the target with
/// one more reflexivity + transitivity, and is `verify`-sound by
/// construction (property-tested against [`crate::fd::implies`]).
pub fn derive(given: &[Fd], target: &Fd) -> Option<Derivation> {
    let x = target.lhs;
    // proof : X → closed
    let mut closed = x;
    let mut proof = Derivation::Reflexivity {
        fd: Fd { lhs: x, rhs: x },
    };
    loop {
        let mut progressed = false;
        for (index, fd) in given.iter().enumerate() {
            if fd.lhs.is_subset_of(closed) && !fd.rhs.is_subset_of(closed) {
                // X → V by X → closed, closed → V (reflexivity), transitivity.
                let to_v = Derivation::Transitivity {
                    first: Box::new(proof.clone()),
                    second: Box::new(Derivation::Reflexivity {
                        fd: Fd {
                            lhs: closed,
                            rhs: fd.lhs,
                        },
                    }),
                };
                // X → W via the hypothesis.
                let to_w = Derivation::Transitivity {
                    first: Box::new(to_v),
                    second: Box::new(Derivation::Given { index, fd: *fd }),
                };
                // X → closed ∪ W by union.
                proof = Derivation::Union {
                    left: Box::new(proof),
                    right: Box::new(to_w),
                };
                closed = closed.union(fd.rhs);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    if !target.rhs.is_subset_of(closed) {
        return None;
    }
    // Prune: X → target.rhs from X → closed, closed → target.rhs.
    Some(Derivation::Transitivity {
        first: Box::new(proof),
        second: Box::new(Derivation::Reflexivity {
            fd: Fd {
                lhs: closed,
                rhs: target.rhs,
            },
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::implies;

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn derives_transitive_chain() {
        let given = [fd(&[0], &[1]), fd(&[1], &[2]), fd(&[2], &[3])];
        let target = fd(&[0], &[3]);
        let proof = derive(&given, &target).expect("implied");
        assert_eq!(proof.conclusion(), target);
        assert!(proof.verify(&given));
        assert!(proof.len() >= 4, "uses every hypothesis: {proof}");
    }

    #[test]
    fn derives_trivial_fd_by_reflexivity() {
        let target = fd(&[0, 1], &[1]);
        let proof = derive(&[], &target).expect("trivial");
        assert_eq!(proof.conclusion(), target);
        assert!(proof.verify(&[]));
    }

    #[test]
    fn rejects_non_implied_targets() {
        let given = [fd(&[0], &[1])];
        assert!(derive(&given, &fd(&[1], &[0])).is_none());
        assert!(derive(&[], &fd(&[0], &[1])).is_none());
    }

    #[test]
    fn union_of_two_branches() {
        let given = [fd(&[0], &[1]), fd(&[0], &[2])];
        let target = fd(&[0], &[1, 2]);
        let proof = derive(&given, &target).expect("implied");
        assert_eq!(proof.conclusion(), target);
        assert!(proof.verify(&given));
    }

    #[test]
    fn derive_agrees_with_closure_exhaustively() {
        // All single-attribute FD pairs over 3 attributes as hypotheses,
        // all single-attribute targets.
        let singles: Vec<Fd> = (0..3)
            .flat_map(|a| (0..3).filter(move |&b| b != a).map(move |b| fd(&[a], &[b])))
            .collect();
        for i in 0..singles.len() {
            for j in 0..singles.len() {
                let given = [singles[i], singles[j]];
                for goal in &singles {
                    let derived = derive(&given, goal);
                    assert_eq!(
                        derived.is_some(),
                        implies(&given, goal),
                        "given {given:?} goal {goal}"
                    );
                    if let Some(p) = derived {
                        assert!(p.verify(&given), "unsound proof for {goal}: {p}");
                        assert_eq!(p.conclusion(), *goal);
                    }
                }
            }
        }
    }

    #[test]
    fn verify_rejects_tampered_trees() {
        let given = [fd(&[0], &[1])];
        // A "Given" pointing at the wrong index.
        let bogus = Derivation::Given {
            index: 3,
            fd: fd(&[0], &[1]),
        };
        assert!(!bogus.verify(&given));
        // A "Given" whose FD does not match the hypothesis at the index.
        let bogus = Derivation::Given {
            index: 0,
            fd: fd(&[0], &[2]),
        };
        assert!(!bogus.verify(&given));
        // Fake reflexivity (rhs ⊄ lhs).
        let bogus = Derivation::Reflexivity { fd: fd(&[0], &[1]) };
        assert!(!bogus.verify(&[]));
        // Transitivity with mismatched middle.
        let bogus = Derivation::Transitivity {
            first: Box::new(Derivation::Given {
                index: 0,
                fd: fd(&[0], &[1]),
            }),
            second: Box::new(Derivation::Reflexivity {
                fd: fd(&[0, 2], &[2]),
            }),
        };
        assert!(!bogus.verify(&given));
        // Union with different left sides.
        let bogus = Derivation::Union {
            left: Box::new(Derivation::Reflexivity { fd: fd(&[0], &[0]) }),
            right: Box::new(Derivation::Reflexivity { fd: fd(&[1], &[1]) }),
        };
        assert!(!bogus.verify(&[]));
    }

    #[test]
    fn augmentation_is_sound_when_built_by_hand() {
        let given = [fd(&[0], &[1])];
        let aug = Derivation::Augmentation {
            base: Box::new(Derivation::Given {
                index: 0,
                fd: given[0],
            }),
            with: AttrSet::single(2),
        };
        assert!(aug.verify(&given));
        assert_eq!(aug.conclusion(), fd(&[0, 2], &[1, 2]));
        assert!(!aug.is_empty());
    }

    #[test]
    fn display_renders_an_indented_tree() {
        let given = [fd(&[0], &[1]), fd(&[1], &[2])];
        let proof = derive(&given, &fd(&[0], &[2])).unwrap();
        let text = proof.to_string();
        assert!(text.contains("transitivity"), "{text}");
        assert!(text.contains("given #0"), "{text}");
        assert!(text.contains("given #1"), "{text}");
    }
}
