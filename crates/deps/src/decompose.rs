//! 4NF decomposition (Fagin 1977, the paper's reference \[2\]).
//!
//! §2 of the paper argues NFRs "may throw away the 4NF concept": instead
//! of decomposing `R1(Student, Course, Club)` on its MVD, one nests it.
//! To *measure* that claim (experiment E12) we need the thing being
//! thrown away — the classical 4NF decomposition — implemented for real:
//! repeatedly split a fragment on a non-trivial MVD whose left side is
//! not a superkey, until none remains.
//!
//! MVD candidates inside a fragment come from the projected dependency
//! basis: by Beeri's completeness theorem, `X →→ Y` holds in `π_S(R)`
//! exactly when `Y` is a union of `S`-projections of `DEP(X)` blocks.
//! Superkey tests use the [`crate::chase`] (complete for the mixed
//! FD+MVD theory, including coalescence-derived FDs).

use std::fmt;

use crate::attrset::AttrSet;
use crate::basis::dependency_basis;
use crate::chase::chase_implies_fd;
use crate::fd::Fd;
use crate::mvd::Mvd;

/// One binary split performed by the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitStep {
    /// The fragment that was split.
    pub fragment: AttrSet,
    /// Left side of the violating MVD.
    pub lhs: AttrSet,
    /// The (projected) right side it was split on.
    pub rhs: AttrSet,
    /// Resulting fragment `lhs ∪ rhs`.
    pub left: AttrSet,
    /// Resulting fragment `fragment − rhs`.
    pub right: AttrSet,
}

impl fmt::Display for SplitStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} --[{} ->-> {}]--> {} , {}",
            self.fragment, self.lhs, self.rhs, self.left, self.right
        )
    }
}

/// The result of [`decompose_4nf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Final fragments, each in 4NF under the projected dependencies.
    pub fragments: Vec<AttrSet>,
    /// The splits that produced them, in application order.
    pub steps: Vec<SplitStep>,
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let frags: Vec<String> = self.fragments.iter().map(AttrSet::to_string).collect();
        write!(f, "{}", frags.join(" ⋈ "))
    }
}

/// Whether `x` is a superkey of the fragment `s`: every attribute of
/// `s − x` is functionally determined (in the mixed FD+MVD theory).
pub fn is_superkey_in(arity: usize, fds: &[Fd], mvds: &[Mvd], x: AttrSet, s: AttrSet) -> bool {
    s.minus(x).iter().all(|a| {
        chase_implies_fd(
            arity,
            fds,
            mvds,
            &Fd {
                lhs: x,
                rhs: AttrSet::single(a),
            },
        )
    })
}

/// Finds a 4NF violation inside fragment `s`: a non-trivial projected
/// MVD `x →→ b` (with `b` a projected dependency-basis block) whose left
/// side is not a superkey of `s`. Deterministic: smallest `x` (by size,
/// then mask), then smallest block.
pub fn find_violation(
    arity: usize,
    fds: &[Fd],
    mvds: &[Mvd],
    s: AttrSet,
) -> Option<(AttrSet, AttrSet)> {
    if s.len() <= 2 {
        return None; // a binary fragment has no non-trivial MVD
    }
    let mut candidates: Vec<AttrSet> = s.subsets().filter(|x| *x != s).collect();
    candidates.sort_by_key(|x| (x.len(), x.mask()));
    for x in candidates {
        // Projected basis: DEP(x) blocks intersected with s.
        let mut blocks: Vec<AttrSet> = dependency_basis(x, arity, fds, mvds)
            .into_iter()
            .map(|b| b.intersect(s))
            .filter(|b| !b.is_empty())
            .collect();
        blocks.sort_by_key(|b| b.mask());
        if blocks.len() < 2 {
            continue; // only the trivial split exists inside s
        }
        if is_superkey_in(arity, fds, mvds, x, s) {
            continue;
        }
        // Any single block is a non-trivial violating MVD.
        return blocks.first().map(|b| (x, *b));
    }
    None
}

/// Whether fragment `s` is in 4NF under the projected dependencies.
pub fn is_4nf_fragment(arity: usize, fds: &[Fd], mvds: &[Mvd], s: AttrSet) -> bool {
    find_violation(arity, fds, mvds, s).is_none()
}

/// Decomposes the full relation (over `arity` attributes) into 4NF
/// fragments by repeated binary splits. Every split is lossless by
/// Fagin's theorem, so the overall decomposition is lossless (the test
/// suite re-verifies this with the chase tableau and on instances).
pub fn decompose_4nf(arity: usize, fds: &[Fd], mvds: &[Mvd]) -> Decomposition {
    let mut worklist = vec![AttrSet::full(arity)];
    let mut fragments = Vec::new();
    let mut steps = Vec::new();
    while let Some(s) = worklist.pop() {
        match find_violation(arity, fds, mvds, s) {
            Some((x, b)) => {
                let left = x.union(b);
                let right = s.minus(b);
                steps.push(SplitStep {
                    fragment: s,
                    lhs: x,
                    rhs: b,
                    left,
                    right,
                });
                worklist.push(left);
                worklist.push(right);
            }
            None => fragments.push(s),
        }
    }
    // Drop fragments subsumed by others (can arise when splits share
    // attributes), then sort for determinism.
    fragments.sort_by_key(|f| (std::cmp::Reverse(f.len()), f.mask()));
    let mut kept: Vec<AttrSet> = Vec::new();
    for f in fragments {
        if !kept.iter().any(|k| f.is_subset_of(*k)) {
            kept.push(f);
        }
    }
    kept.sort_by_key(|f| f.mask());
    Decomposition {
        fragments: kept,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::is_lossless_join;
    use nf2_core::relation::FlatRelation;
    use nf2_core::schema::Schema;
    use nf2_core::value::Atom;
    use std::collections::BTreeSet;

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    fn mvd(lhs: &[usize], rhs: &[usize]) -> Mvd {
        Mvd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn paper_r1_splits_on_the_student_mvd() {
        // R1(Student, Course, Club), Student ->-> Course | Club:
        // classical 4NF schema = SC(Student, Course) ⋈ SB(Student, Club).
        let d = decompose_4nf(3, &[], &[mvd(&[0], &[1])]);
        assert_eq!(
            d.fragments,
            vec![AttrSet::from_attrs([0, 1]), AttrSet::from_attrs([0, 2])]
        );
        assert_eq!(d.steps.len(), 1);
        assert_eq!(d.steps[0].lhs, AttrSet::single(0));
    }

    #[test]
    fn relation_already_in_4nf_stays_whole() {
        // Fig. 1 R2(Student, Course, Semester) has no dependency: 4NF.
        let d = decompose_4nf(3, &[], &[]);
        assert_eq!(d.fragments, vec![AttrSet::full(3)]);
        assert!(d.steps.is_empty());
    }

    #[test]
    fn key_mvd_does_not_split() {
        // A ->-> B but A is a key (A -> BC): no violation.
        let fds = [fd(&[0], &[1, 2])];
        let d = decompose_4nf(3, &fds, &[mvd(&[0], &[1])]);
        assert_eq!(d.fragments, vec![AttrSet::full(3)]);
    }

    #[test]
    fn fd_violation_splits_like_bcnf() {
        // R(A,B,C) with B -> C (B not a key): the FD's MVD image splits
        // into BC and AB.
        let fds = [fd(&[1], &[2])];
        let d = decompose_4nf(3, &fds, &[]);
        assert_eq!(
            d.fragments,
            vec![AttrSet::from_attrs([0, 1]), AttrSet::from_attrs([1, 2])]
        );
    }

    #[test]
    fn nested_splits_reach_all_fragments() {
        // R(A,B,C,D): A ->-> B, and inside {A,C,D}: C -> D.
        let fds = [fd(&[2], &[3])];
        let mvds = [mvd(&[0], &[1])];
        let d = decompose_4nf(4, &fds, &mvds);
        assert!(d.fragments.len() >= 2, "{d}");
        for f in &d.fragments {
            assert!(is_4nf_fragment(4, &fds, &mvds, *f), "fragment {f} not 4NF");
        }
        assert!(is_lossless_join(4, &fds, &mvds, &d.fragments));
    }

    #[test]
    fn every_decomposition_is_lossless_by_tableau() {
        let cases: Vec<(usize, Vec<Fd>, Vec<Mvd>)> = vec![
            (3, vec![], vec![mvd(&[0], &[1])]),
            (3, vec![fd(&[1], &[2])], vec![]),
            (4, vec![fd(&[2], &[3])], vec![mvd(&[0], &[1])]),
            (4, vec![], vec![mvd(&[0], &[1]), mvd(&[0], &[2])]),
            (5, vec![fd(&[0], &[4])], vec![mvd(&[0], &[1, 2])]),
        ];
        for (arity, fds, mvds) in cases {
            let d = decompose_4nf(arity, &fds, &mvds);
            assert!(
                is_lossless_join(arity, &fds, &mvds, &d.fragments),
                "lossy: arity={arity} fds={fds:?} mvds={mvds:?} → {d}"
            );
            for f in &d.fragments {
                assert!(
                    is_4nf_fragment(arity, &fds, &mvds, *f),
                    "{f} not 4NF in {d}"
                );
            }
        }
    }

    #[test]
    fn binary_fragments_never_split() {
        assert!(is_4nf_fragment(
            2,
            &[],
            &[mvd(&[0], &[1])],
            AttrSet::full(2)
        ));
    }

    #[test]
    fn superkey_in_fragment_uses_mixed_theory() {
        // Coalescence: A ->-> B, C -> B imply A -> B; inside {A,B}
        // A is then a superkey.
        let fds = [fd(&[2], &[1])];
        let mvds = [mvd(&[0], &[1])];
        assert!(is_superkey_in(
            3,
            &fds,
            &mvds,
            AttrSet::single(0),
            AttrSet::from_attrs([0, 1])
        ));
        // Without the MVD the coalescence rule has no premise.
        assert!(!is_superkey_in(
            3,
            &fds,
            &[],
            AttrSet::single(0),
            AttrSet::from_attrs([0, 1])
        ));
    }

    /// Instance-level losslessness: project a satisfying instance onto
    /// the fragments and join back; the original rows must reappear.
    #[test]
    fn instance_round_trip_on_paper_r1() {
        let schema = Schema::new("R1", &["Student", "Course", "Club"]).unwrap();
        // Product-per-student data (satisfies Student ->-> Course).
        let mut rows = Vec::new();
        for s in 0..3u32 {
            for c in 0..2u32 {
                for b in 0..2u32 {
                    rows.push(vec![Atom(s), Atom(10 + c + s), Atom(20 + b)]);
                }
            }
        }
        let rel = FlatRelation::from_rows(schema, rows).unwrap();
        let mvds = [mvd(&[0], &[1])];
        let d = decompose_4nf(3, &[], &mvds);

        // Project each fragment.
        let project = |attrs: AttrSet| -> BTreeSet<Vec<Atom>> {
            rel.rows()
                .map(|r| attrs.iter().map(|a| r[a]).collect())
                .collect()
        };
        let frags: Vec<(Vec<usize>, BTreeSet<Vec<Atom>>)> = d
            .fragments
            .iter()
            .map(|f| (f.iter().collect::<Vec<_>>(), project(*f)))
            .collect();

        // Join all fragments on shared original attribute indices.
        let mut acc: Vec<Vec<Option<Atom>>> = vec![vec![None; 3]];
        for (attrs, rows) in &frags {
            let mut next = Vec::new();
            for partial in &acc {
                'row: for row in rows {
                    let mut merged = partial.clone();
                    for (pos, &attr) in attrs.iter().enumerate() {
                        match merged[attr] {
                            Some(v) if v != row[pos] => continue 'row,
                            _ => merged[attr] = Some(row[pos]),
                        }
                    }
                    next.push(merged);
                }
            }
            acc = next;
        }
        let joined: BTreeSet<Vec<Atom>> = acc
            .into_iter()
            .map(|r| {
                r.into_iter()
                    .map(|v| v.expect("all attrs covered"))
                    .collect()
            })
            .collect();
        let original: BTreeSet<Vec<Atom>> = rel.rows().cloned().collect();
        assert_eq!(
            joined, original,
            "4NF decomposition must be lossless on instances"
        );
    }

    #[test]
    fn display_renders_steps_and_fragments() {
        let d = decompose_4nf(3, &[], &[mvd(&[0], &[1])]);
        assert!(d.to_string().contains('⋈'), "{d}");
        assert!(d.steps[0].to_string().contains("->->"), "{}", d.steps[0]);
    }
}
