//! Functional dependencies: closure, keys, minimal cover, and
//! satisfaction checking on instances.
//!
//! The paper assumes "all the relations are in 3NF, which are mechanically
//! obtained \[13\]" (§3.4); this module supplies the machinery reference
//! \[13\] (Bernstein 1976) relies on.

use std::collections::HashMap;

use nf2_core::relation::FlatRelation;
use nf2_core::value::Atom;

use crate::attrset::AttrSet;

/// A functional dependency `lhs → rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant attributes (the paper's `F1 … Fk`).
    pub lhs: AttrSet,
    /// Dependent attributes (the paper's `E1 … Em`).
    pub rhs: AttrSet,
}

impl Fd {
    /// Builds `lhs → rhs` from attribute index lists.
    pub fn new<L, R>(lhs: L, rhs: R) -> Self
    where
        L: IntoIterator<Item = usize>,
        R: IntoIterator<Item = usize>,
    {
        Fd {
            lhs: AttrSet::from_attrs(lhs),
            rhs: AttrSet::from_attrs(rhs),
        }
    }

    /// Whether the FD is trivial (`rhs ⊆ lhs`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset_of(self.lhs)
    }
}

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

/// The attribute closure `attrs⁺` under `fds` (textbook fixpoint).
pub fn closure(attrs: AttrSet, fds: &[Fd]) -> AttrSet {
    let mut closed = attrs;
    loop {
        let mut changed = false;
        for fd in fds {
            if fd.lhs.is_subset_of(closed) && !fd.rhs.is_subset_of(closed) {
                closed = closed.union(fd.rhs);
                changed = true;
            }
        }
        if !changed {
            return closed;
        }
    }
}

/// Whether `fds` logically imply `fd` (via closure).
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    fd.rhs.is_subset_of(closure(fd.lhs, fds))
}

/// Whether `attrs` is a superkey of a relation over `arity` attributes.
pub fn is_superkey(attrs: AttrSet, arity: usize, fds: &[Fd]) -> bool {
    AttrSet::full(arity).is_subset_of(closure(attrs, fds))
}

/// All candidate keys (minimal superkeys) of a relation over `arity`
/// attributes. Exponential in arity; the paper's degrees are small.
pub fn candidate_keys(arity: usize, fds: &[Fd]) -> Vec<AttrSet> {
    let full = AttrSet::full(arity);
    let mut keys: Vec<AttrSet> = Vec::new();
    // Enumerate subsets ordered by size so minimality falls out naturally.
    let mut subsets: Vec<AttrSet> = full.subsets().collect();
    subsets.sort_by_key(|s| s.len());
    for s in subsets {
        if s.is_empty() && arity > 0 && !is_superkey(s, arity, fds) {
            continue;
        }
        if is_superkey(s, arity, fds) && !keys.iter().any(|k| k.is_subset_of(s)) {
            keys.push(s);
        }
    }
    keys
}

/// A minimal cover: singleton right-hand sides, no extraneous left-hand
/// attributes, no redundant FDs (Bernstein's step 1).
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // 1. Split RHS into singletons, dropping trivial parts.
    let mut cover: Vec<Fd> = Vec::new();
    for fd in fds {
        for a in fd.rhs.minus(fd.lhs).iter() {
            cover.push(Fd {
                lhs: fd.lhs,
                rhs: AttrSet::single(a),
            });
        }
    }
    // 2. Remove extraneous LHS attributes.
    let snapshot = cover.clone();
    for fd in &mut cover {
        loop {
            let mut reduced = None;
            for a in fd.lhs.iter() {
                let smaller = fd.lhs.minus(AttrSet::single(a));
                if !smaller.is_empty() && fd.rhs.is_subset_of(closure(smaller, &snapshot)) {
                    reduced = Some(smaller);
                    break;
                }
            }
            match reduced {
                Some(smaller) => fd.lhs = smaller,
                None => break,
            }
        }
    }
    cover.sort_by_key(|fd| (fd.lhs.mask(), fd.rhs.mask()));
    cover.dedup();
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i];
        let mut rest = cover.clone();
        rest.remove(i);
        if implies(&rest, &fd) {
            cover = rest;
        } else {
            i += 1;
        }
    }
    cover
}

/// Whether the instance `rel` satisfies `fd`: no two rows agree on `lhs`
/// but differ on `rhs`.
pub fn holds_fd(rel: &FlatRelation, fd: &Fd) -> bool {
    let lhs: Vec<usize> = fd.lhs.iter().collect();
    let rhs: Vec<usize> = fd.rhs.iter().collect();
    let mut seen: HashMap<Vec<Atom>, Vec<Atom>> = HashMap::new();
    for row in rel.rows() {
        let key: Vec<Atom> = lhs.iter().map(|&a| row[a]).collect();
        let val: Vec<Atom> = rhs.iter().map(|&a| row[a]).collect();
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(o) => {
                if *o.get() != val {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(val);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::schema::Schema;

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn closure_fixpoint() {
        // A -> B, B -> C: {A}+ = {A,B,C}.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert_eq!(closure(AttrSet::single(0), &fds), AttrSet::full(3));
        assert_eq!(closure(AttrSet::single(2), &fds), AttrSet::single(2));
    }

    #[test]
    fn implication_via_closure() {
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert!(implies(&fds, &fd(&[0], &[2])));
        assert!(!implies(&fds, &fd(&[2], &[0])));
    }

    #[test]
    fn trivial_fd_detection() {
        assert!(fd(&[0, 1], &[1]).is_trivial());
        assert!(!fd(&[0], &[1]).is_trivial());
    }

    #[test]
    fn candidate_keys_minimal() {
        // R(A,B,C) with A -> B, B -> C: key = {A}.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert_eq!(candidate_keys(3, &fds), vec![AttrSet::single(0)]);
    }

    #[test]
    fn candidate_keys_multiple() {
        // R(A,B) with A -> B and B -> A: both {A} and {B} are keys.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[0])];
        let keys = candidate_keys(2, &fds);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&AttrSet::single(0)));
        assert!(keys.contains(&AttrSet::single(1)));
    }

    #[test]
    fn no_fds_key_is_everything() {
        let keys = candidate_keys(3, &[]);
        assert_eq!(keys, vec![AttrSet::full(3)]);
    }

    #[test]
    fn minimal_cover_splits_and_prunes() {
        // AB -> C where A -> C already: B is extraneous.
        let fds = vec![fd(&[0, 1], &[2]), fd(&[0], &[2])];
        let cover = minimal_cover(&fds);
        assert_eq!(cover, vec![fd(&[0], &[2])]);
    }

    #[test]
    fn minimal_cover_removes_redundant() {
        // A -> B, B -> C, A -> C: the last is implied.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2]), fd(&[0], &[2])];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2);
        assert!(cover.contains(&fd(&[0], &[1])));
        assert!(cover.contains(&fd(&[1], &[2])));
    }

    #[test]
    fn minimal_cover_of_compound_rhs() {
        let fds = vec![fd(&[0], &[1, 2])];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|f| f.rhs.len() == 1));
    }

    #[test]
    fn holds_fd_on_instances() {
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let sat = FlatRelation::from_rows(
            schema.clone(),
            vec![
                vec![Atom(1), Atom(10)],
                vec![Atom(2), Atom(10)],
                vec![Atom(1), Atom(10)],
            ],
        )
        .unwrap();
        assert!(holds_fd(&sat, &fd(&[0], &[1])));
        let unsat = FlatRelation::from_rows(
            schema,
            vec![vec![Atom(1), Atom(10)], vec![Atom(1), Atom(11)]],
        )
        .unwrap();
        assert!(!holds_fd(&unsat, &fd(&[0], &[1])));
        assert!(holds_fd(&unsat, &fd(&[1], &[0])));
    }

    #[test]
    fn display_formats() {
        assert_eq!(fd(&[0], &[1]).to_string(), "{E0} -> {E1}");
    }
}
