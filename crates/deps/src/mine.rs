//! Dependency discovery on instances.
//!
//! §2 argues that "when we consider compound value domains, we should not
//! assume some dependencies already exist" — whether `R1` enjoys
//! `Student →→ Course | Club` is a property of the data. These miners
//! recover the minimal FDs and the non-trivial binary MVDs an instance
//! satisfies, so the §3.4 permutation choice can be driven by the data
//! itself.

use nf2_core::relation::FlatRelation;

use crate::attrset::AttrSet;
use crate::fd::{holds_fd, Fd};
use crate::mvd::{holds_mvd, Mvd};

/// All minimal non-trivial FDs `X → a` satisfied by `rel`.
///
/// For every attribute `a`, returns the minimal determinants among
/// subsets of `U − {a}`. Exponential in arity (bounded to ≤ 12).
pub fn mine_fds(rel: &FlatRelation) -> Vec<Fd> {
    let arity = rel.schema().arity();
    assert!(
        arity <= 12,
        "mine_fds enumerates subsets; arity {arity} too large"
    );
    let mut found = Vec::new();
    for target in 0..arity {
        let candidates = AttrSet::full(arity).minus(AttrSet::single(target));
        let mut minimal: Vec<AttrSet> = Vec::new();
        let mut subsets: Vec<AttrSet> = candidates.subsets().collect();
        subsets.sort_by_key(|s| s.len());
        for lhs in subsets {
            if minimal.iter().any(|m| m.is_subset_of(lhs)) {
                continue; // a smaller determinant already works
            }
            let fd = Fd {
                lhs,
                rhs: AttrSet::single(target),
            };
            if holds_fd(rel, &fd) {
                minimal.push(lhs);
                found.push(fd);
            }
        }
    }
    found
}

/// All non-trivial MVDs `X →→ Y` with `Y` minimal per determinant,
/// satisfied by `rel`, excluding those already implied by a mined FD
/// (`X → Y` implies `X →→ Y`).
pub fn mine_mvds(rel: &FlatRelation, fds: &[Fd]) -> Vec<Mvd> {
    let arity = rel.schema().arity();
    assert!(
        arity <= 8,
        "mine_mvds enumerates subset pairs; arity {arity} too large"
    );
    let full = AttrSet::full(arity);
    let mut found = Vec::new();
    let mut lhs_sets: Vec<AttrSet> = full.subsets().collect();
    lhs_sets.sort_by_key(|s| s.len());
    for lhs in lhs_sets {
        if lhs == full {
            continue;
        }
        let rest = full.minus(lhs);
        let mut rhs_sets: Vec<AttrSet> = rest.subsets().collect();
        rhs_sets.sort_by_key(|s| s.len());
        for rhs in rhs_sets {
            let mvd = Mvd { lhs, rhs };
            if mvd.is_trivial(arity) {
                continue;
            }
            // Skip the FD-implied case: X → Y (restricted to mined FDs).
            let fd_implied = crate::fd::implies(fds, &Fd { lhs, rhs });
            if fd_implied {
                continue;
            }
            // Skip complements of already-found MVDs for the same lhs.
            if found
                .iter()
                .any(|m: &Mvd| m.lhs == lhs && m.complement(arity).rhs == rhs)
            {
                continue;
            }
            if holds_mvd(rel, &mvd) {
                found.push(mvd);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::schema::Schema;
    use nf2_core::value::Atom;

    fn rel3(rows: &[[u32; 3]]) -> FlatRelation {
        let schema = Schema::new("R", &["A", "B", "C"]).unwrap();
        FlatRelation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Atom(v)).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    #[test]
    fn mines_simple_fd() {
        // B is a function of A.
        let r = rel3(&[[1, 10, 21], [1, 10, 22], [2, 11, 21]]);
        let fds = mine_fds(&r);
        assert!(
            fds.contains(&Fd::new([0], [1])),
            "A -> B should be mined: {fds:?}"
        );
        assert!(!fds.contains(&Fd::new([0], [2])), "A does not determine C");
    }

    #[test]
    fn mined_fds_are_minimal() {
        let r = rel3(&[[1, 10, 21], [1, 10, 22], [2, 11, 21]]);
        let fds = mine_fds(&r);
        // {A,C} -> B holds but {A} -> B is minimal; the larger one must
        // not be reported.
        assert!(!fds.contains(&Fd::new([0, 2], [1])));
    }

    #[test]
    fn mines_mvd_from_product_structure() {
        // Student ->-> Course | Club: courses × clubs per student.
        let r = rel3(&[
            [1, 10, 20],
            [1, 10, 21],
            [1, 11, 20],
            [1, 11, 21],
            [2, 12, 22],
        ]);
        let fds = mine_fds(&r);
        let mvds = mine_mvds(&r, &fds);
        assert!(
            mvds.iter().any(|m| m.lhs == AttrSet::single(0)
                && (m.rhs == AttrSet::single(1) || m.rhs == AttrSet::single(2))),
            "A ->-> B | C should be mined: {mvds:?}"
        );
    }

    #[test]
    fn no_mvd_in_relationship_data() {
        // The paper's R2-style data: no product structure for student 1.
        let r = rel3(&[[1, 10, 20], [1, 11, 21], [2, 10, 20]]);
        let fds = mine_fds(&r);
        let mvds = mine_mvds(&r, &fds);
        assert!(
            !mvds.iter().any(|m| m.lhs == AttrSet::single(0)),
            "student determines nothing multivalued here: {mvds:?}"
        );
    }

    #[test]
    fn empty_relation_satisfies_everything() {
        let r = rel3(&[]);
        let fds = mine_fds(&r);
        // Vacuously, ∅ -> a for every attribute.
        assert!(fds.iter().all(|f| f.lhs.is_empty()));
        assert_eq!(fds.len(), 3);
    }
}
