//! # nf2-deps — dependency-theory substrate for NF² relations
//!
//! §3.4 of the paper chooses "best" canonical forms using functional and
//! multivalued dependencies, assuming 3NF schemas "mechanically obtained"
//! via Bernstein's synthesis. This crate supplies all of that machinery:
//!
//! * [`attrset`] — compact attribute sets;
//! * [`armstrong`] — checkable Armstrong-derivation proof trees for FD
//!   implication;
//! * [`fd`] — FDs: closure, implication, candidate keys, minimal cover,
//!   instance satisfaction;
//! * [`mvd`] — MVDs (Fagin): satisfaction, complementation, 4NF;
//! * [`basis`] — the dependency basis (Beeri) and fast MVD implication;
//! * [`chase`] — the chase: complete implication for the mixed FD+MVD
//!   theory and the lossless-join tableau test;
//! * [`decompose`] — classical 4NF decomposition (the thing §2 says NFRs
//!   "may throw away" — implemented so experiment E12 can measure the
//!   trade);
//! * [`synthesis`] — Bernstein 3NF synthesis (reference \[13\]);
//! * [`mine`] — FD/MVD discovery on instances (§2: dependencies are a
//!   property of the data, not an assumption);
//! * [`theorems`] — executable Theorems 3–5 and the §3.4 nest-order
//!   suggestion.

pub mod armstrong;
pub mod attrset;
pub mod basis;
pub mod chase;
pub mod decompose;
pub mod fd;
pub mod mine;
pub mod mvd;
pub mod synthesis;
pub mod theorems;

pub use armstrong::{derive, Derivation};
pub use attrset::AttrSet;
pub use basis::{dependency_basis, implies_mvd_basis};
pub use chase::{chase_implies_fd, chase_implies_mvd, is_lossless_join};
pub use decompose::{decompose_4nf, is_4nf_fragment, Decomposition, SplitStep};
pub use fd::{candidate_keys, closure, holds_fd, implies, is_superkey, minimal_cover, Fd};
pub use mine::{mine_fds, mine_mvds};
pub use mvd::{holds_mvd, is_4nf, Mvd};
pub use synthesis::{synthesize_3nf, Fragment, Synthesis};
pub use theorems::{
    check_theorem3, check_theorem4, check_theorem5, sample_irreducible_forms, suggest_nest_order,
    Theorem3Report, Theorem4Report,
};
