//! Multivalued dependencies (Fagin 1977, the paper's reference \[2\]).
//!
//! `X →→ Y | Z` (with `Z = U − X − Y`) holds when, within each `X`-group,
//! the set of `(Y, Z)` combinations is the Cartesian product of the
//! `Y`-projections and `Z`-projections of the group. The paper's central
//! §2 example — `Student →→ Course | Club` in `R1`, no MVD in `R2` —
//! is what makes updates on `R1` local and on `R2` messy.

use std::collections::{HashMap, HashSet};

use nf2_core::relation::FlatRelation;
use nf2_core::value::Atom;

use crate::attrset::AttrSet;

/// A multivalued dependency `lhs →→ rhs` (complement `U − lhs − rhs`
/// implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mvd {
    /// Determinant attributes.
    pub lhs: AttrSet,
    /// One side of the split.
    pub rhs: AttrSet,
}

impl Mvd {
    /// Builds `lhs →→ rhs`.
    pub fn new<L, R>(lhs: L, rhs: R) -> Self
    where
        L: IntoIterator<Item = usize>,
        R: IntoIterator<Item = usize>,
    {
        Mvd {
            lhs: AttrSet::from_attrs(lhs),
            rhs: AttrSet::from_attrs(rhs),
        }
    }

    /// The complement side `U − lhs − rhs` for a given arity.
    pub fn complement_side(&self, arity: usize) -> AttrSet {
        AttrSet::full(arity).minus(self.lhs).minus(self.rhs)
    }

    /// The complementation rule: `X →→ Y` implies `X →→ U − X − Y`.
    pub fn complement(&self, arity: usize) -> Mvd {
        Mvd {
            lhs: self.lhs,
            rhs: self.complement_side(arity),
        }
    }

    /// Whether the MVD is trivial for the given arity
    /// (`rhs ⊆ lhs` or `lhs ∪ rhs = U`).
    pub fn is_trivial(&self, arity: usize) -> bool {
        self.rhs.is_subset_of(self.lhs) || self.lhs.union(self.rhs) == AttrSet::full(arity)
    }
}

impl std::fmt::Display for Mvd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ->-> {}", self.lhs, self.rhs)
    }
}

/// Whether the instance `rel` satisfies `mvd`: per `X`-group, the
/// `(Y, Z)` pairs form a full Cartesian product.
pub fn holds_mvd(rel: &FlatRelation, mvd: &Mvd) -> bool {
    let arity = rel.schema().arity();
    let xs: Vec<usize> = mvd.lhs.iter().collect();
    let ys: Vec<usize> = mvd.rhs.minus(mvd.lhs).iter().collect();
    let zs: Vec<usize> = mvd.complement_side(arity).iter().collect();

    #[derive(Default)]
    struct Group {
        ys: HashSet<Vec<Atom>>,
        zs: HashSet<Vec<Atom>>,
        pairs: HashSet<(Vec<Atom>, Vec<Atom>)>,
    }

    let mut groups: HashMap<Vec<Atom>, Group> = HashMap::new();
    for row in rel.rows() {
        let x: Vec<Atom> = xs.iter().map(|&a| row[a]).collect();
        let y: Vec<Atom> = ys.iter().map(|&a| row[a]).collect();
        let z: Vec<Atom> = zs.iter().map(|&a| row[a]).collect();
        let g = groups.entry(x).or_default();
        g.ys.insert(y.clone());
        g.zs.insert(z.clone());
        g.pairs.insert((y, z));
    }
    groups
        .values()
        .all(|g| g.pairs.len() == g.ys.len() * g.zs.len())
}

/// Whether `rel` is in 4NF with respect to `mvds` and `fds`: every
/// non-trivial MVD's determinant is a superkey.
pub fn is_4nf(arity: usize, fds: &[crate::fd::Fd], mvds: &[Mvd]) -> bool {
    mvds.iter()
        .filter(|m| !m.is_trivial(arity))
        .all(|m| crate::fd::is_superkey(m.lhs, arity, fds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::schema::Schema;

    fn rel(rows: &[[u32; 3]]) -> FlatRelation {
        let schema = Schema::new("R", &["Student", "Course", "Club"]).unwrap();
        FlatRelation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Atom(v)).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    #[test]
    fn paper_r1_satisfies_student_mvd() {
        // R1: each student's courses × clubs form a product.
        let r1 = rel(&[
            [1, 11, 21],
            [1, 12, 21],
            [1, 13, 21],
            [2, 11, 22],
            [2, 12, 22],
        ]);
        assert!(holds_mvd(&r1, &Mvd::new([0], [1])));
        assert!(holds_mvd(&r1, &Mvd::new([0], [2])));
    }

    #[test]
    fn non_product_group_violates_mvd() {
        // Student 1 pairs course 11 only with club 21, course 12 only
        // with club 22: not a product.
        let r = rel(&[[1, 11, 21], [1, 12, 22]]);
        assert!(!holds_mvd(&r, &Mvd::new([0], [1])));
    }

    #[test]
    fn complement_rule() {
        let m = Mvd::new([0], [1]);
        let c = m.complement(3);
        assert_eq!(c.rhs, AttrSet::single(2));
        // Complementation is an involution.
        assert_eq!(c.complement(3), m);
    }

    #[test]
    fn complement_satisfaction_mirrors() {
        // Fagin: X ->-> Y holds iff X ->-> U-X-Y holds.
        let r = rel(&[
            [1, 11, 21],
            [1, 12, 21],
            [1, 11, 22],
            [1, 12, 22],
            [2, 13, 23],
        ]);
        let m = Mvd::new([0], [1]);
        assert_eq!(holds_mvd(&r, &m), holds_mvd(&r, &m.complement(3)));
    }

    #[test]
    fn trivial_mvds() {
        assert!(Mvd::new([0, 1], [1]).is_trivial(3));
        assert!(Mvd::new([0], [1, 2]).is_trivial(3));
        assert!(!Mvd::new([0], [1]).is_trivial(3));
    }

    #[test]
    fn trivial_mvd_always_holds() {
        let r = rel(&[[1, 11, 21], [1, 12, 22], [2, 13, 21]]);
        assert!(holds_mvd(&r, &Mvd::new([0], [1, 2])));
        assert!(holds_mvd(&r, &Mvd::new([0, 1], [1])));
    }

    #[test]
    fn fd_implies_mvd_on_instances() {
        // Any instance satisfying the FD Student -> Course also satisfies
        // the MVD Student ->-> Course.
        let r = rel(&[[1, 11, 21], [1, 11, 22], [2, 12, 21]]);
        assert!(crate::fd::holds_fd(&r, &crate::fd::Fd::new([0], [1])));
        assert!(holds_mvd(&r, &Mvd::new([0], [1])));
    }

    #[test]
    fn four_nf_check() {
        // MVD A ->-> B with A not a key: not 4NF.
        let fds = vec![];
        let mvds = vec![Mvd::new([0], [1])];
        assert!(!is_4nf(3, &fds, &mvds));
        // If A is a key, 4NF holds.
        let fds = vec![crate::fd::Fd::new([0], [1, 2])];
        assert!(is_4nf(3, &fds, &mvds));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Mvd::new([0], [1]).to_string(), "{E0} ->-> {E1}");
    }
}
