//! The dependency basis (Beeri 1980) — the structure behind Fagin's
//! MVDs and the engine of 4NF decomposition.
//!
//! For a set `X ⊆ U` and dependencies `D`, the **dependency basis**
//! `DEP(X)` is the unique partition of `U − X` such that `X →→ Y` is
//! implied by `D` exactly when `Y − X` is a union of blocks. The paper
//! uses MVDs as the reason "entity" relations nest cleanly (§2,
//! Theorem 4); the basis tells us *all* the ways a given left side can
//! split the remaining attributes.
//!
//! The fixpoint below treats every FD `X → Y` through its MVD image
//! `X →→ Y` (sound, and complete for implication of MVDs from MVDs; the
//! FD/MVD interaction rules such as coalescence are covered by the
//! [`crate::chase`] oracle, which the tests cross-check against).

use crate::attrset::AttrSet;
use crate::fd::Fd;
use crate::mvd::Mvd;

/// Computes `DEP(x)`: the dependency basis of `x` under `fds ∪ mvds`
/// over a relation of the given arity. Blocks are returned sorted by
/// their lowest attribute; they partition `U − x`.
///
/// Classic refinement fixpoint (Ullman, *Principles of Database
/// Systems*): start from the single block `U − x`; any dependency
/// `V →→ W` whose left side avoids a block `B` splits `B` into `B ∩ W`
/// and `B − W` (when both halves are non-empty).
pub fn dependency_basis(x: AttrSet, arity: usize, fds: &[Fd], mvds: &[Mvd]) -> Vec<AttrSet> {
    let full = AttrSet::full(arity);
    let mut deps: Vec<Mvd> = mvds.to_vec();
    deps.extend(fds.iter().map(|fd| Mvd {
        lhs: fd.lhs,
        rhs: fd.rhs,
    }));
    // Each dependency also acts through its complement (Fagin's rule);
    // adding complements up front lets the loop body stay a pure split.
    let with_complements: Vec<Mvd> = deps
        .iter()
        .flat_map(|m| [*m, m.complement(arity)])
        .collect();

    let start = full.minus(x);
    if start.is_empty() {
        return Vec::new();
    }
    let mut blocks = vec![start];
    loop {
        let mut changed = false;
        'outer: for dep in &with_complements {
            // The split is licensed when the dependency's left side is
            // available: V ⊆ x ∪ (blocks disjoint from the one split).
            // The standard sufficient test: V ∩ B = ∅.
            for i in 0..blocks.len() {
                let b = blocks[i];
                if !dep.lhs.intersect(b).is_empty() {
                    continue;
                }
                if !dep.lhs.is_subset_of(x.union(full.minus(b))) {
                    continue;
                }
                let inside = b.intersect(dep.rhs);
                let outside = b.minus(dep.rhs);
                if !inside.is_empty() && !outside.is_empty() {
                    blocks.swap_remove(i);
                    blocks.push(inside);
                    blocks.push(outside);
                    changed = true;
                    continue 'outer;
                }
            }
        }
        if !changed {
            break;
        }
    }
    blocks.sort_by_key(|b| b.mask());
    blocks
}

/// Whether `D ⊨ x →→ y` according to the dependency basis: `y − x` must
/// be a union of blocks of `DEP(x)`.
///
/// Complete for MVD-only dependency sets; for mixed FD+MVD sets it is a
/// sound fast path (the chase decides the general case).
pub fn implies_mvd_basis(arity: usize, fds: &[Fd], mvds: &[Mvd], target: &Mvd) -> bool {
    let want = target.rhs.minus(target.lhs);
    if want.is_empty() {
        return true; // trivial: rhs ⊆ lhs
    }
    let blocks = dependency_basis(target.lhs, arity, fds, mvds);
    let mut covered = AttrSet::EMPTY;
    for b in &blocks {
        let inter = b.intersect(want);
        if inter == *b {
            covered = covered.union(*b);
        } else if !inter.is_empty() {
            return false; // a block straddles the boundary
        }
    }
    covered == want
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mvd(lhs: &[usize], rhs: &[usize]) -> Mvd {
        Mvd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn basis_partitions_the_complement() {
        // U = {A,B,C,D}, A ->-> B: DEP(A) splits {B,C,D} into {B} and {C,D}.
        let blocks = dependency_basis(AttrSet::single(0), 4, &[], &[mvd(&[0], &[1])]);
        assert_eq!(blocks.len(), 2);
        let union = blocks.iter().fold(AttrSet::EMPTY, |acc, b| acc.union(*b));
        assert_eq!(union, AttrSet::from_attrs([1, 2, 3]));
        assert!(blocks.contains(&AttrSet::single(1)));
        assert!(blocks.contains(&AttrSet::from_attrs([2, 3])));
    }

    #[test]
    fn basis_with_no_dependencies_is_one_block() {
        let blocks = dependency_basis(AttrSet::single(0), 3, &[], &[]);
        assert_eq!(blocks, vec![AttrSet::from_attrs([1, 2])]);
    }

    #[test]
    fn basis_of_full_set_is_empty() {
        let blocks = dependency_basis(AttrSet::full(3), 3, &[], &[mvd(&[0], &[1])]);
        assert!(blocks.is_empty());
    }

    #[test]
    fn two_mvds_refine_each_other() {
        // A ->-> B and A ->-> C over ABCD: DEP(A) = {B}, {C}, {D}.
        let blocks = dependency_basis(
            AttrSet::single(0),
            4,
            &[],
            &[mvd(&[0], &[1]), mvd(&[0], &[2])],
        );
        assert_eq!(
            blocks,
            vec![AttrSet::single(1), AttrSet::single(2), AttrSet::single(3)]
        );
    }

    #[test]
    fn fd_acts_through_its_mvd_image() {
        // A -> B over ABC: DEP(A) = {B}, {C}.
        let blocks = dependency_basis(AttrSet::single(0), 3, &[fd(&[0], &[1])], &[]);
        assert_eq!(blocks, vec![AttrSet::single(1), AttrSet::single(2)]);
    }

    #[test]
    fn transitive_split_via_disjoint_left_side() {
        // U=ABCD, A ->-> B, B ->-> C. DEP(A): {B} splits off; then B ->-> C
        // splits {C,D} (B avoids it) into {C}, {D}.
        let blocks = dependency_basis(
            AttrSet::single(0),
            4,
            &[],
            &[mvd(&[0], &[1]), mvd(&[1], &[2])],
        );
        assert_eq!(
            blocks,
            vec![AttrSet::single(1), AttrSet::single(2), AttrSet::single(3)]
        );
    }

    #[test]
    fn left_side_inside_block_does_not_split() {
        // U=ABC, B ->-> C cannot refine DEP(A)'s single block {B,C}
        // because B sits inside it.
        let blocks = dependency_basis(AttrSet::single(0), 3, &[], &[mvd(&[1], &[2])]);
        assert_eq!(blocks, vec![AttrSet::from_attrs([1, 2])]);
    }

    #[test]
    fn implication_by_union_of_blocks() {
        let mvds = [mvd(&[0], &[1]), mvd(&[0], &[2])];
        // A ->-> {B,C} is the union of blocks {B} and {C}.
        assert!(implies_mvd_basis(4, &[], &mvds, &mvd(&[0], &[1, 2])));
        // A ->-> {B,D}: {D} is a block too, so this also follows.
        assert!(implies_mvd_basis(4, &[], &mvds, &mvd(&[0], &[1, 3])));
        // but C alone cannot be cut out of {C} ∪ {D}… it can ({C} is a
        // block); a real failure needs a straddling target:
        let weaker = [mvd(&[0], &[1])];
        // DEP(A) = {B}, {C,D}: target A ->-> C straddles {C,D}.
        assert!(!implies_mvd_basis(4, &[], &weaker, &mvd(&[0], &[2])));
    }

    #[test]
    fn trivial_mvd_always_implied() {
        assert!(implies_mvd_basis(3, &[], &[], &mvd(&[0, 1], &[1])));
        assert!(implies_mvd_basis(3, &[], &[], &mvd(&[0], &[1, 2])));
    }

    #[test]
    fn complementation_is_built_in() {
        // A ->-> B over ABC implies A ->-> C.
        assert!(implies_mvd_basis(
            3,
            &[],
            &[mvd(&[0], &[1])],
            &mvd(&[0], &[2])
        ));
    }

    #[test]
    fn augmentation_of_left_side() {
        // A ->-> B over ABCD implies AC ->-> B.
        assert!(implies_mvd_basis(
            4,
            &[],
            &[mvd(&[0], &[1])],
            &mvd(&[0, 2], &[1])
        ));
    }

    #[test]
    fn paper_r1_mvd_basis() {
        // Fig. 1 R1 (Student, Course, Club) with Student ->-> Course:
        // DEP(Student) = {Course}, {Club} — exactly the entity split.
        let blocks = dependency_basis(AttrSet::single(0), 3, &[], &[mvd(&[0], &[1])]);
        assert_eq!(blocks, vec![AttrSet::single(1), AttrSet::single(2)]);
    }
}
