//! Bernstein's 3NF synthesis (the paper's reference \[13\]).
//!
//! §3.4 assumes "all the relations are in 3NF, which are mechanically
//! obtained" — this module performs that mechanical step: from a set of
//! FDs over `U`, produce a lossless, dependency-preserving set of 3NF
//! schemas (minimal cover → group by determinant → add a key schema if no
//! fragment contains one).

use crate::attrset::AttrSet;
use crate::fd::{candidate_keys, minimal_cover, Fd};

/// One synthesised 3NF fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Attributes of the fragment schema.
    pub attrs: AttrSet,
    /// FDs local to the fragment (projected from the cover).
    pub fds: Vec<Fd>,
    /// Whether this fragment was added solely to preserve a key.
    pub is_key_fragment: bool,
}

/// Result of the synthesis: fragments plus the global candidate keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synthesis {
    /// 3NF fragments covering all FDs.
    pub fragments: Vec<Fragment>,
    /// Candidate keys of the universal schema.
    pub keys: Vec<AttrSet>,
}

/// Synthesises 3NF fragments from `fds` over a schema of `arity`
/// attributes (Bernstein 1976, as used by §3.4).
pub fn synthesize_3nf(arity: usize, fds: &[Fd]) -> Synthesis {
    let cover = minimal_cover(fds);
    let keys = candidate_keys(arity, &cover);

    // Group cover FDs by determinant; one fragment per group with
    // attrs = lhs ∪ (all grouped rhs).
    let mut groups: Vec<(AttrSet, Vec<Fd>)> = Vec::new();
    for fd in &cover {
        match groups.iter_mut().find(|(lhs, _)| *lhs == fd.lhs) {
            Some((_, list)) => list.push(*fd),
            None => groups.push((fd.lhs, vec![*fd])),
        }
    }
    let mut fragments: Vec<Fragment> = groups
        .into_iter()
        .map(|(lhs, list)| {
            let attrs = list.iter().fold(lhs, |acc, fd| acc.union(fd.rhs));
            Fragment {
                attrs,
                fds: list,
                is_key_fragment: false,
            }
        })
        .collect();

    // Drop fragments subsumed by others.
    let snapshot = fragments.clone();
    fragments.retain(|f| {
        !snapshot
            .iter()
            .any(|other| other.attrs != f.attrs && f.attrs.is_subset_of(other.attrs))
    });

    // Ensure some fragment contains a candidate key (lossless join).
    let has_key = fragments
        .iter()
        .any(|f| keys.iter().any(|k| k.is_subset_of(f.attrs)));
    if !has_key {
        if let Some(k) = keys.first() {
            fragments.push(Fragment {
                attrs: *k,
                fds: Vec::new(),
                is_key_fragment: true,
            });
        }
    }

    Synthesis { fragments, keys }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::new(lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn chain_produces_two_fragments() {
        // A -> B, B -> C over R(A,B,C): fragments AB and BC; key {A}
        // contained in AB.
        let syn = synthesize_3nf(3, &[fd(&[0], &[1]), fd(&[1], &[2])]);
        assert_eq!(syn.fragments.len(), 2);
        let attr_sets: Vec<AttrSet> = syn.fragments.iter().map(|f| f.attrs).collect();
        assert!(attr_sets.contains(&AttrSet::from_attrs([0, 1])));
        assert!(attr_sets.contains(&AttrSet::from_attrs([1, 2])));
        assert!(syn.fragments.iter().all(|f| !f.is_key_fragment));
        assert_eq!(syn.keys, vec![AttrSet::single(0)]);
    }

    #[test]
    fn same_determinant_groups_together() {
        // A -> B and A -> C: one fragment ABC.
        let syn = synthesize_3nf(3, &[fd(&[0], &[1]), fd(&[0], &[2])]);
        assert_eq!(syn.fragments.len(), 1);
        assert_eq!(syn.fragments[0].attrs, AttrSet::full(3));
    }

    #[test]
    fn key_fragment_added_when_missing() {
        // R(A,B,C) with only B -> C: key is {A,B}, contained in no FD
        // fragment, so a key fragment is added.
        let syn = synthesize_3nf(3, &[fd(&[1], &[2])]);
        assert_eq!(syn.fragments.len(), 2);
        let key_frag = syn.fragments.iter().find(|f| f.is_key_fragment).unwrap();
        assert_eq!(key_frag.attrs, AttrSet::from_attrs([0, 1]));
    }

    #[test]
    fn no_fds_yields_single_key_fragment() {
        let syn = synthesize_3nf(2, &[]);
        assert_eq!(syn.fragments.len(), 1);
        assert!(syn.fragments[0].is_key_fragment);
        assert_eq!(syn.fragments[0].attrs, AttrSet::full(2));
    }

    #[test]
    fn fragments_cover_every_cover_fd() {
        let fds = [fd(&[0], &[1]), fd(&[1], &[2]), fd(&[2, 3], &[0])];
        let syn = synthesize_3nf(4, &fds);
        for f in minimal_cover(&fds) {
            assert!(
                syn.fragments
                    .iter()
                    .any(|frag| f.lhs.union(f.rhs).is_subset_of(frag.attrs)),
                "cover FD {f} must live inside some fragment"
            );
        }
    }
}
