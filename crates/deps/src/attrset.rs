//! Compact attribute sets.
//!
//! Dependency theory manipulates subsets of `U = {E1 … En}` constantly;
//! a bitmask keeps closures and covers allocation-free. Arity is capped at
//! 32 — far above the degrees the paper considers.

use std::fmt;

use nf2_core::schema::AttrId;

/// A subset of a schema's attributes, as a 32-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet(u32);

impl AttrSet {
    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Builds from attribute indices.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        let mut mask = 0u32;
        for a in attrs {
            assert!(a < 32, "attribute index {a} exceeds the 32-attribute cap");
            mask |= 1 << a;
        }
        AttrSet(mask)
    }

    /// The full set over `arity` attributes.
    pub fn full(arity: usize) -> Self {
        assert!(arity <= 32);
        if arity == 32 {
            AttrSet(u32::MAX)
        } else {
            AttrSet((1u32 << arity) - 1)
        }
    }

    /// A single attribute.
    pub fn single(attr: AttrId) -> Self {
        Self::from_attrs([attr])
    }

    /// The raw mask.
    pub fn mask(self) -> u32 {
        self.0
    }

    /// Set union.
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn minus(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Membership test.
    pub fn contains(self, attr: AttrId) -> bool {
        attr < 32 && self.0 & (1 << attr) != 0
    }

    /// Inserts an attribute.
    pub fn insert(&mut self, attr: AttrId) {
        assert!(attr < 32);
        self.0 |= 1 << attr;
    }

    /// Number of attributes.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates member attribute indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = AttrId> {
        (0..32usize).filter(move |&a| self.0 & (1 << a) != 0)
    }

    /// All subsets of `self`, including empty and `self`.
    pub fn subsets(self) -> impl Iterator<Item = AttrSet> {
        // Standard submask enumeration, ascending by mask value.
        let full = self.0;
        let mut cur: Option<u32> = Some(0);
        std::iter::from_fn(move || {
            let m = cur?;
            cur = if m == full {
                None
            } else {
                Some(((m | !full).wrapping_add(1)) & full)
            };
            Some(AttrSet(m))
        })
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|a| format!("E{a}")).collect();
        write!(f, "{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = AttrSet::from_attrs([0, 2]);
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(AttrSet::single(3).mask(), 8);
    }

    #[test]
    fn algebra() {
        let a = AttrSet::from_attrs([0, 1]);
        let b = AttrSet::from_attrs([1, 2]);
        assert_eq!(a.union(b), AttrSet::from_attrs([0, 1, 2]));
        assert_eq!(a.intersect(b), AttrSet::single(1));
        assert_eq!(a.minus(b), AttrSet::single(0));
        assert!(AttrSet::single(1).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(AttrSet::EMPTY.is_empty());
    }

    #[test]
    fn full_and_iter() {
        let f = AttrSet::full(4);
        assert_eq!(f.len(), 4);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn subsets_enumerates_power_set() {
        let s = AttrSet::from_attrs([0, 2]);
        let subs: Vec<AttrSet> = s.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&AttrSet::EMPTY));
        assert!(subs.contains(&AttrSet::single(0)));
        assert!(subs.contains(&AttrSet::single(2)));
        assert!(subs.contains(&s));
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(AttrSet::from_attrs([0, 3]).to_string(), "{E0,E3}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_large_indices() {
        let _ = AttrSet::from_attrs([40]);
    }
}
