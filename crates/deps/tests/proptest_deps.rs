//! Property tests for the dependency-theory substrate: closure laws,
//! cover equivalence, FD/MVD satisfaction laws, mining soundness, and —
//! crucially — agreement between the three independent implication
//! procedures (Armstrong closure, dependency basis, chase).

use proptest::prelude::*;

use nf2_core::relation::FlatRelation;
use nf2_core::schema::Schema;
use nf2_core::value::Atom;
use nf2_deps::{
    chase_implies_fd, chase_implies_mvd, closure, decompose_4nf, dependency_basis, derive,
    holds_fd, holds_mvd, implies, implies_mvd_basis, is_4nf_fragment, is_lossless_join, mine_fds,
    minimal_cover, AttrSet, Fd, Mvd,
};

fn arb_fds(arity: usize) -> impl Strategy<Value = Vec<Fd>> {
    let attr_set = move || {
        proptest::collection::btree_set(0usize..arity, 1..=arity).prop_map(AttrSet::from_attrs)
    };
    proptest::collection::vec((attr_set(), attr_set()), 0..6).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(lhs, rhs)| Fd { lhs, rhs })
            .collect()
    })
}

fn arb_flat() -> impl Strategy<Value = FlatRelation> {
    proptest::collection::vec(proptest::collection::vec(0u32..3, 3), 0..16).prop_map(|rows| {
        let schema = Schema::new("R", &["A", "B", "C"]).unwrap();
        FlatRelation::from_rows(
            schema,
            rows.into_iter().map(|r| {
                r.into_iter()
                    .enumerate()
                    .map(|(i, v)| Atom(v + 10 * i as u32))
                    .collect::<Vec<Atom>>()
            }),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Closure is extensive, monotone and idempotent.
    #[test]
    fn closure_is_a_closure_operator(fds in arb_fds(4), seed in 0u32..16) {
        let x = AttrSet::from_attrs((0..4).filter(|&a| seed & (1 << a) != 0));
        let cx = closure(x, &fds);
        prop_assert!(x.is_subset_of(cx), "extensive");
        prop_assert_eq!(closure(cx, &fds), cx, "idempotent");
        // Monotone: X ⊆ X ∪ {0} implies closure(X) ⊆ closure(X ∪ {0}).
        let bigger = x.union(AttrSet::single(0));
        prop_assert!(cx.is_subset_of(closure(bigger, &fds)), "monotone");
    }

    /// A minimal cover is logically equivalent to the original FD set.
    #[test]
    fn minimal_cover_is_equivalent(fds in arb_fds(4)) {
        let cover = minimal_cover(&fds);
        for fd in &fds {
            prop_assert!(implies(&cover, fd), "cover must imply original {fd}");
        }
        for fd in &cover {
            prop_assert!(implies(&fds, fd), "original must imply cover {fd}");
            prop_assert!(!fd.is_trivial());
            prop_assert_eq!(fd.rhs.len(), 1, "singleton right-hand sides");
        }
    }

    /// Instance law: an FD that holds implies the corresponding MVD holds
    /// (Fagin), and MVD complementation is satisfaction-invariant.
    #[test]
    fn fd_implies_mvd_and_complement_invariance(flat in arb_flat(), lhs in 0usize..3, rhs in 0usize..3) {
        prop_assume!(lhs != rhs);
        let fd = Fd::new([lhs], [rhs]);
        let mvd = Mvd::new([lhs], [rhs]);
        if holds_fd(&flat, &fd) {
            prop_assert!(holds_mvd(&flat, &mvd), "FD ⇒ MVD on instances");
        }
        prop_assert_eq!(
            holds_mvd(&flat, &mvd),
            holds_mvd(&flat, &mvd.complement(3)),
            "complementation rule"
        );
    }

    /// Mining soundness: every mined FD holds; minimality: no mined FD's
    /// proper LHS subset determines the same attribute.
    #[test]
    fn mined_fds_hold_and_are_minimal(flat in arb_flat()) {
        let fds = mine_fds(&flat);
        for fd in &fds {
            prop_assert!(holds_fd(&flat, fd), "mined FD {fd} must hold");
            for drop in fd.lhs.iter() {
                let smaller = Fd { lhs: fd.lhs.minus(AttrSet::single(drop)), rhs: fd.rhs };
                if !smaller.lhs.is_empty() || fd.lhs.len() == 1 {
                    prop_assert!(
                        !holds_fd(&flat, &smaller),
                        "mined FD {fd} not minimal: {smaller} also holds"
                    );
                }
            }
        }
    }

    /// Armstrong derivations exist exactly for implied FDs, and every
    /// produced proof tree verifies and concludes its target.
    #[test]
    fn derivations_are_complete_and_sound(fds in arb_fds(4), lhs_bits in 1u32..15, rhs_bits in 1u32..15) {
        let target = Fd {
            lhs: AttrSet::from_attrs((0..4).filter(|&a| lhs_bits & (1 << a) != 0)),
            rhs: AttrSet::from_attrs((0..4).filter(|&a| rhs_bits & (1 << a) != 0)),
        };
        match derive(&fds, &target) {
            Some(proof) => {
                prop_assert!(implies(&fds, &target), "derived but not implied");
                prop_assert!(proof.verify(&fds), "proof fails verification: {proof}");
                prop_assert_eq!(proof.conclusion(), target);
            }
            None => prop_assert!(!implies(&fds, &target), "implied but underivable"),
        }
    }

    /// The chase and the Armstrong closure are both complete for FD-only
    /// implication; they must agree on random dependency sets.
    #[test]
    fn chase_equals_closure_for_fd_implication(fds in arb_fds(4), lhs_bits in 1u32..15, rhs_bits in 1u32..15) {
        let target = Fd {
            lhs: AttrSet::from_attrs((0..4).filter(|&a| lhs_bits & (1 << a) != 0)),
            rhs: AttrSet::from_attrs((0..4).filter(|&a| rhs_bits & (1 << a) != 0)),
        };
        prop_assert_eq!(
            chase_implies_fd(4, &fds, &[], &target),
            implies(&fds, &target),
            "fds {:?} target {}", &fds, target
        );
    }

    /// The chase and the dependency basis are both complete for MVD-only
    /// implication; they must agree on random MVD sets.
    #[test]
    fn chase_equals_basis_for_mvd_implication(
        pairs in proptest::collection::vec((1u32..15, 1u32..15), 0..4),
        lhs_bits in 1u32..15,
        rhs_bits in 1u32..15,
    ) {
        let mvds: Vec<Mvd> = pairs
            .into_iter()
            .map(|(l, r)| Mvd {
                lhs: AttrSet::from_attrs((0..4).filter(|&a| l & (1 << a) != 0)),
                rhs: AttrSet::from_attrs((0..4).filter(|&a| r & (1 << a) != 0)),
            })
            .collect();
        let target = Mvd {
            lhs: AttrSet::from_attrs((0..4).filter(|&a| lhs_bits & (1 << a) != 0)),
            rhs: AttrSet::from_attrs((0..4).filter(|&a| rhs_bits & (1 << a) != 0)),
        };
        prop_assert_eq!(
            chase_implies_mvd(4, &[], &mvds, &target),
            implies_mvd_basis(4, &[], &mvds, &target),
            "mvds {:?} target {}", &mvds, target
        );
    }

    /// The dependency basis always partitions `U − X`, and every block
    /// yields a chase-implied MVD (soundness of the basis fixpoint).
    #[test]
    fn basis_blocks_partition_and_are_implied(
        fds in arb_fds(4),
        pairs in proptest::collection::vec((1u32..15, 1u32..15), 0..3),
        x_bits in 0u32..16,
    ) {
        let mvds: Vec<Mvd> = pairs
            .into_iter()
            .map(|(l, r)| Mvd {
                lhs: AttrSet::from_attrs((0..4).filter(|&a| l & (1 << a) != 0)),
                rhs: AttrSet::from_attrs((0..4).filter(|&a| r & (1 << a) != 0)),
            })
            .collect();
        let x = AttrSet::from_attrs((0..4).filter(|&a| x_bits & (1 << a) != 0));
        let blocks = dependency_basis(x, 4, &fds, &mvds);
        // Partition: disjoint, union = U − X.
        let mut union = AttrSet::EMPTY;
        for (i, b) in blocks.iter().enumerate() {
            prop_assert!(!b.is_empty());
            prop_assert!(union.intersect(*b).is_empty(), "block {i} overlaps");
            union = union.union(*b);
        }
        prop_assert_eq!(union, AttrSet::full(4).minus(x));
        // Soundness: X ->-> B must be chase-implied for every block.
        for b in &blocks {
            prop_assert!(
                chase_implies_mvd(4, &fds, &mvds, &Mvd { lhs: x, rhs: *b }),
                "block {b} of DEP({x}) not implied"
            );
        }
    }

    /// Every 4NF decomposition is lossless (tableau-verified) and all
    /// its fragments are in 4NF.
    #[test]
    fn random_4nf_decompositions_are_lossless(
        fds in arb_fds(4),
        pairs in proptest::collection::vec((1u32..15, 1u32..15), 0..3),
    ) {
        let mvds: Vec<Mvd> = pairs
            .into_iter()
            .map(|(l, r)| Mvd {
                lhs: AttrSet::from_attrs((0..4).filter(|&a| l & (1 << a) != 0)),
                rhs: AttrSet::from_attrs((0..4).filter(|&a| r & (1 << a) != 0)),
            })
            .collect();
        let d = decompose_4nf(4, &fds, &mvds);
        prop_assert!(!d.fragments.is_empty());
        prop_assert!(
            is_lossless_join(4, &fds, &mvds, &d.fragments),
            "lossy decomposition {d} from fds {:?} mvds {:?}", &fds, &mvds
        );
        for f in &d.fragments {
            prop_assert!(is_4nf_fragment(4, &fds, &mvds, *f), "fragment {f} of {d} not 4NF");
        }
        // Attribute coverage: fragments must cover U.
        let covered = d.fragments.iter().fold(AttrSet::EMPTY, |acc, f| acc.union(*f));
        prop_assert_eq!(covered, AttrSet::full(4));
    }
}
