//! Property test: the SQL printer and the parser are inverses.
//!
//! Generates statements of **every** kind — identifiers, literals with
//! quote escapes, `?` placeholders, joins, IN lists, aggregates,
//! EXPLAIN wrappers — renders them with `Statement`'s `Display`
//! implementation, re-parses the text, and requires the exact same
//! tree back. This pins the printer and the grammar together, so
//! either drifting (a new clause printed but not parsed, an escaping
//! bug, placeholder numbering) fails immediately.

use proptest::prelude::*;

use nf2_query::ast::{
    EqPredicate, OrderBy, OrderDir, OrderKey, Predicate, Projection, Statement, Value,
};
use nf2_query::parse;

/// Identifiers start with `x`, which no keyword does, so generated
/// table/attribute names can never collide with the contextual keywords
/// (`where`, `join`, `in`, …) of the grammar.
fn ident() -> impl Strategy<Value = String> {
    "x[a-z0-9_]{0,6}"
}

/// Literal contents: printable ASCII, including `'` (escaped as `''` by
/// the printer) and whitespace.
fn lit() -> impl Strategy<Value = String> {
    "[ -~]{0,8}"
}

/// A value slot: a literal or a `?` placeholder. Placeholder indices are
/// renumbered to textual order by [`renumber`] after the statement is
/// assembled (matching what the parser produces).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![lit().prop_map(Value::Lit), Just(Value::Param(0))]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (ident(), value()).prop_map(|(attr, value)| Predicate::Eq(EqPredicate { attr, value })),
        (ident(), proptest::collection::vec(value(), 1..4))
            .prop_map(|(attr, values)| Predicate::In { attr, values }),
    ]
}

fn projection() -> impl Strategy<Value = Projection> {
    prop_oneof![
        Just(Projection::All),
        Just(Projection::CountStar),
        ident().prop_map(Projection::CountDistinct),
        proptest::collection::vec(ident(), 1..4).prop_map(Projection::Attrs),
    ]
}

fn order_by() -> impl Strategy<Value = Option<OrderBy>> {
    let key = (ident(), proptest::strategy::any::<bool>()).prop_map(|(attr, desc)| OrderKey {
        attr,
        dir: if desc { OrderDir::Desc } else { OrderDir::Asc },
    });
    prop_oneof![
        Just(None),
        proptest::collection::vec(key, 1..4).prop_map(|keys| Some(OrderBy { keys })),
    ]
}

fn select() -> impl Strategy<Value = Statement> {
    (
        projection(),
        ident(),
        proptest::collection::vec(ident(), 0..3),
        proptest::collection::vec(predicate(), 0..3),
        order_by(),
        prop_oneof![Just(None), (0usize..10_000).prop_map(Some)],
    )
        .prop_map(|(projection, table, joins, predicates, order_by, limit)| {
            Statement::Select {
                projection,
                table,
                joins,
                predicates,
                order_by,
                limit,
            }
        })
}

/// Every statement kind the grammar knows.
fn statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (
            ident(),
            proptest::collection::vec(ident(), 1..4),
            prop_oneof![
                Just(None),
                proptest::collection::vec(ident(), 1..4).prop_map(Some)
            ],
        )
            .prop_map(|(name, attrs, nest_order)| Statement::CreateTable {
                name,
                attrs,
                nest_order,
            }),
        ident().prop_map(|name| Statement::DropTable { name }),
        (
            ident(),
            proptest::collection::vec(proptest::collection::vec(value(), 1..4), 1..3),
        )
            .prop_map(|(table, rows)| Statement::Insert { table, rows }),
        (ident(), proptest::collection::vec(predicate(), 0..3))
            .prop_map(|(table, predicates)| Statement::Delete { table, predicates }),
        select(),
        (
            ident(),
            proptest::collection::vec(
                (ident(), value()).prop_map(|(attr, value)| EqPredicate { attr, value }),
                1..3
            ),
            proptest::collection::vec(predicate(), 0..3),
        )
            .prop_map(|(table, assignments, predicates)| Statement::Update {
                table,
                assignments,
                predicates,
            }),
        (ident(), ident()).prop_map(|(table, attr)| Statement::Nest { table, attr }),
        (ident(), ident()).prop_map(|(table, attr)| Statement::Unnest { table, attr }),
        (ident(), proptest::strategy::any::<bool>())
            .prop_map(|(table, flat)| Statement::Show { table, flat }),
        Just(Statement::Tables),
        ident().prop_map(|table| Statement::Stats { table }),
        Just(Statement::Begin),
        Just(Statement::Commit),
        Just(Statement::Rollback),
        (
            select(),
            proptest::strategy::any::<bool>(),
            proptest::strategy::any::<bool>(),
            proptest::strategy::any::<bool>(),
        )
            .prop_map(|(inner, optimized, verify, analyze)| Statement::Explain {
                inner: Box::new(inner),
                optimized,
                verify,
                analyze,
            }),
    ]
}

/// Renumbers `?` placeholders to appearance (textual) order — the
/// invariant the parser maintains — walking values exactly as the
/// printer emits them.
fn renumber(stmt: &mut Statement) {
    fn value(v: &mut Value, next: &mut usize) {
        if matches!(v, Value::Param(_)) {
            *v = Value::Param(*next);
            *next += 1;
        }
    }
    fn predicate(p: &mut Predicate, next: &mut usize) {
        match p {
            Predicate::Eq(e) => value(&mut e.value, next),
            Predicate::In { values, .. } => values.iter_mut().for_each(|v| value(v, next)),
        }
    }
    let mut next = 0usize;
    match stmt {
        Statement::Insert { rows, .. } => {
            rows.iter_mut().flatten().for_each(|v| value(v, &mut next))
        }
        Statement::Delete { predicates, .. } | Statement::Select { predicates, .. } => {
            predicates.iter_mut().for_each(|p| predicate(p, &mut next))
        }
        Statement::Update {
            assignments,
            predicates,
            ..
        } => {
            assignments
                .iter_mut()
                .for_each(|a| value(&mut a.value, &mut next));
            predicates.iter_mut().for_each(|p| predicate(p, &mut next));
        }
        Statement::Explain { inner, .. } => renumber(inner),
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(render(stmt)) == stmt` for every statement kind.
    #[test]
    fn statement_round_trips_through_sql(mut stmt in statement()) {
        renumber(&mut stmt);
        let sql = stmt.to_string();
        let reparsed = parse(&sql)
            .unwrap_or_else(|e| panic!("printed SQL must parse: {e}\n  sql: {sql}\n  ast: {stmt:?}"));
        prop_assert_eq!(&reparsed, &stmt, "sql: {}", sql);
        // And the printer is a fixpoint: rendering the reparsed tree
        // yields the same text.
        prop_assert_eq!(reparsed.to_string(), sql);
    }

    /// Binding all parameters of any statement produces a param-free
    /// statement that still round-trips.
    #[test]
    fn bound_statements_round_trip(mut stmt in statement(), fills in proptest::collection::vec(lit(), 0..12)) {
        renumber(&mut stmt);
        let n = stmt.param_count();
        prop_assume!(n <= fills.len());
        let params: Vec<&str> = fills.iter().take(n).map(String::as_str).collect();
        let bound = stmt.bind(&params).expect("dense parameter list binds");
        prop_assert_eq!(bound.param_count(), 0);
        let reparsed = parse(&bound.to_string()).expect("bound SQL parses");
        prop_assert_eq!(reparsed, bound);
    }
}
