//! Checked-plan execution is shard- and mode-invariant: the same
//! random workload loaded into engines across the {1 shard, 4 shards}
//! × {Structural, Realization} matrix answers every query identically.
//!
//! In debug builds (and under `NF2_VERIFY=1` in release) every plan
//! built here has already passed the rewrite-soundness gate and the
//! physical checker, so this doubles as an execution-level test of the
//! verified plans — in particular that shard-pruned scans (legal only
//! on the routing attribute, which the checker enforces) never drop
//! tuples relative to the unsharded engine.

use std::collections::BTreeSet;

use proptest::prelude::*;

use nf2_core::tuple::FlatTuple;
use nf2_query::{Engine, Output, QueryError};

/// A canonical, order-insensitive digest of an [`Output`] for
/// cross-engine comparison (row order may legitimately differ between
/// shard layouts; tuple *sets* may not).
#[derive(Debug, PartialEq, Eq)]
enum Digest {
    Rows(BTreeSet<FlatTuple>),
    Count(u128),
    Affected(usize),
    Message(String),
}

fn digest(output: Output) -> Digest {
    match output {
        Output::Relation { relation, .. } => Digest::Rows(relation.expand().into_rows()),
        Output::Count(n) => Digest::Count(n),
        Output::Affected(n) => Digest::Affected(n),
        Output::Message(m) => Digest::Message(m),
    }
}

/// Number of NF² tuples in a relation output (for LIMIT checks, where
/// tie-breaking may keep different-but-equally-ranked tuples per
/// layout, but never a different number of them).
fn row_count(output: Output) -> usize {
    match output {
        Output::Relation { relation, .. } => relation.tuple_count(),
        other => panic!("expected a relation, got {other:?}"),
    }
}

fn build_engine(shards: usize, realization: bool, script: &str) -> Engine {
    let mut builder = Engine::builder().shards(shards);
    if realization {
        builder = builder.rewrite_mode(nf2_algebra::RewriteMode::Realization);
    }
    let engine = builder.build().unwrap();
    engine.session().run_script(script).unwrap();
    engine
}

fn run(engine: &mut Engine, sql: &str) -> Result<Output, QueryError> {
    engine.session().run(sql)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn query_results_are_shard_and_mode_invariant(
        t_rows in proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 1..24),
        u_rows in proptest::collection::vec((0u8..3, 0u8..3), 1..10),
        probe in 0u8..3,
        limit in 1usize..4,
    ) {
        // t(A, B, C): identity nest order, so C = P(n−1) routes shards.
        // u(C, D) joins t on C.
        let mut script = String::from("CREATE TABLE t (A, B, C);\nCREATE TABLE u (C, D);\n");
        for (a, b, c) in &t_rows {
            script.push_str(&format!("INSERT INTO t VALUES ('a{a}', 'b{b}', 'c{c}');\n"));
        }
        for (c, d) in &u_rows {
            script.push_str(&format!("INSERT INTO u VALUES ('c{c}', 'd{d}');\n"));
        }

        let mut engines: Vec<Engine> = [(1, false), (4, false), (1, true), (4, true)]
            .iter()
            .map(|&(shards, realization)| build_engine(shards, realization, &script))
            .collect();

        let queries = [
            "SELECT * FROM t".to_string(),
            // Routing-attribute predicates: pruned on the 4-shard legs.
            format!("SELECT * FROM t WHERE C = 'c{probe}'"),
            format!("SELECT A, C FROM t WHERE C IN ('c0', 'c{probe}')"),
            format!("SELECT COUNT(*) FROM t WHERE C = 'c{probe}'"),
            // Non-routing predicate + full ordered result.
            format!("SELECT * FROM t WHERE A = 'a{probe}' ORDER BY C DESC"),
            format!("SELECT COUNT(DISTINCT B) FROM t WHERE C = 'c{probe}'"),
            format!("SELECT * FROM t JOIN u WHERE C = 'c{probe}'"),
        ];
        for sql in &queries {
            let mut digests = engines
                .iter_mut()
                .map(|e| run(e, sql).map(digest));
            let reference = digests.next().unwrap();
            for (i, d) in digests.enumerate() {
                match (&reference, &d) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a, b, "{} diverged on engine #{}", sql, i + 1
                    ),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(false, "{} errored on some engines only", sql),
                }
            }
        }

        // Top-k: tie-breaking may select different-but-equal-ranked
        // tuples per shard layout; the retained tuple count may not
        // differ.
        let full = format!("SELECT * FROM t WHERE A = 'a{probe}' ORDER BY C DESC");
        let topk = format!("{full} LIMIT {limit}");
        let full_count = row_count(run(&mut engines[0], &full).unwrap());
        for engine in &mut engines {
            let kept = row_count(run(engine, &topk).unwrap());
            prop_assert_eq!(kept, full_count.min(limit), "{}", &topk);
        }
    }
}
