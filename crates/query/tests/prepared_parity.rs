//! Prepared re-execution is tuple-identical to one-shot `run` across the
//! workload generators.
//!
//! Each generator's flat relation is loaded into an engine (values
//! interned as `v<atom>` strings), then the same point/projection/count
//! queries are issued twice per value: once as freshly-parsed one-shot
//! statements, once through a single [`Prepared`] handle re-executed
//! with bound parameters. The [`Output`]s must be equal — relations
//! compare as NF² tuple sets *and* as rendered text, so any drift in
//! planning, binding or streaming shows up.

use nf2_core::schema::NestOrder;
use nf2_query::{Engine, Output, Session};
use nf2_storage::NfTable;
use nf2_workload::{block_product, relationship, uniform, university, zipf, Workload};

/// Loads a workload into the engine under `name`, interning each atom as
/// the string `v<id>`.
fn load(engine: &mut Engine, name: &str, w: &Workload) -> Vec<String> {
    let attrs: Vec<&str> = w.flat.schema().attr_names().collect();
    let rows: Vec<Vec<String>> = w
        .flat
        .rows()
        .map(|row| row.iter().map(|a| format!("v{}", a.id())).collect())
        .collect();
    let refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let table = NfTable::bulk_load_strs(
        name,
        &attrs,
        refs,
        NestOrder::identity(attrs.len()),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    // Probe values: a handful of present attr-0 values plus a miss.
    let mut values: Vec<String> = w
        .flat
        .rows()
        .map(|row| format!("v{}", row[0].id()))
        .take(300)
        .collect();
    values.dedup();
    values.truncate(5);
    values.push("ghost".to_owned());
    values
}

/// One-shot vs prepared for point selects, a projection, and COUNT(*),
/// re-executing each prepared handle across every probe value.
fn assert_parity(
    session: &mut Session<'_>,
    table: &str,
    attr0: &str,
    attr1: &str,
    values: &[String],
) {
    let mut point = session
        .prepare(&format!("SELECT * FROM {table} WHERE {attr0} = ?"))
        .unwrap();
    let mut project = session
        .prepare(&format!("SELECT {attr1} FROM {table} WHERE {attr0} = ?"))
        .unwrap();
    let mut count = session
        .prepare(&format!("SELECT COUNT(*) FROM {table} WHERE {attr0} = ?"))
        .unwrap();
    for v in values {
        let lit = format!("'{v}'");
        let one_shot = session
            .run(&format!("SELECT * FROM {table} WHERE {attr0} = {lit}"))
            .unwrap();
        let prepared = point.execute(session, &[v.as_str()]).unwrap();
        assert_eq!(prepared, one_shot, "{table} point {v}");

        let one_shot = session
            .run(&format!(
                "SELECT {attr1} FROM {table} WHERE {attr0} = {lit}"
            ))
            .unwrap();
        let prepared = project.execute(session, &[v.as_str()]).unwrap();
        assert_eq!(prepared, one_shot, "{table} project {v}");

        let one_shot = session
            .run(&format!(
                "SELECT COUNT(*) FROM {table} WHERE {attr0} = {lit}"
            ))
            .unwrap();
        let prepared = count.execute(session, &[v.as_str()]).unwrap();
        assert_eq!(prepared, one_shot, "{table} count {v}");

        // The streaming cursor agrees with the materialized output.
        let streamed = point
            .query(session, &[v.as_str()])
            .unwrap()
            .into_relation()
            .unwrap();
        match point.execute(session, &[v.as_str()]).unwrap() {
            Output::Relation { relation, .. } => {
                assert_eq!(relation, streamed, "{table} cursor {v}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn prepared_matches_run_across_generators() {
    let workloads: Vec<(&str, Workload)> = vec![
        ("uni", university(40, 3, 25, 2, 8, 7)),
        ("rel", relationship(250, 25, 25, 4, 9)),
        ("blk", block_product(12, &[4, 5], 0)),
        ("unf", uniform(200, &[40, 40], 3)),
        ("zpf", zipf(250, &[60, 60], 1.2, 5)),
    ];
    let mut engine = Engine::new();
    let mut probes = Vec::new();
    for (name, w) in &workloads {
        let values = load(&mut engine, name, w);
        let attrs: Vec<String> = w.flat.schema().attr_names().map(str::to_owned).collect();
        probes.push((name.to_owned(), attrs, values));
    }
    let mut session = engine.session();
    for (name, attrs, values) in &probes {
        assert_parity(&mut session, name, &attrs[0], &attrs[1], values);
    }
}

#[test]
fn prepared_join_parity_on_university_split() {
    // Split the university workload into SC(Student, Course) and
    // CB(Course, Club) projections and exercise a prepared join.
    let w = university(25, 3, 20, 2, 6, 11);
    let mut engine = Engine::new();
    let values = load(&mut engine, "uni", &w);
    let mut session = engine.session();
    session.run("CREATE TABLE marks (Student, Grade)").unwrap();
    // Give every third student a mark so the join is selective.
    let students: Vec<String> = values.iter().filter(|v| *v != "ghost").cloned().collect();
    for (i, s) in students.iter().enumerate() {
        session
            .run(&format!("INSERT INTO marks VALUES ('{s}', 'g{}')", i % 3))
            .unwrap();
    }
    let mut joined = session
        .prepare("SELECT Student, Grade FROM uni JOIN marks WHERE Grade = ?")
        .unwrap();
    for g in ["g0", "g1", "g2", "g9"] {
        let one_shot = session
            .run(&format!(
                "SELECT Student, Grade FROM uni JOIN marks WHERE Grade = '{g}'"
            ))
            .unwrap();
        let prepared = joined.execute(&mut session, &[g]).unwrap();
        assert_eq!(prepared, one_shot, "join grade {g}");
    }
}
