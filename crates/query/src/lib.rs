//! # nf2-query — the NF² data-manipulation language
//!
//! The paper defers its DML ("We didn't address the data manipulation
//! language which we will show elsewhere", §5). This crate implements a
//! small but complete one over the storage engine:
//!
//! ```text
//! CREATE TABLE sc (Student, Course, Club) NEST ORDER (Student, Course, Club);
//! INSERT INTO sc VALUES ('s1','c1','b1'), ('s2','c1','b2');
//! SELECT Course FROM sc WHERE Student = 's1';
//! SELECT Student FROM sc JOIN cp WHERE Prof = 'p1';
//! UPDATE sc SET Club = 'b3' WHERE Student = 's1';
//! DELETE FROM sc WHERE Student = 's1' AND Course = 'c1';
//! EXPLAIN SELECT Student FROM sc JOIN cp;
//! NEST sc ON Course;      -- ad-hoc ν_Course
//! UNNEST sc ON Course;
//! SHOW sc;  SHOW FLAT sc;  TABLES;
//! ```
//!
//! Pipeline: [`token`] → [`parser`] → [`ast`] → [`exec`] (which plans
//! SELECTs into `nf2-algebra` expressions and routes mutations through
//! §4's incremental canonical maintenance).

pub mod ast;
pub mod cursor;
pub mod engine;
pub mod exec;
pub mod parser;
pub mod prepare;
pub mod token;
pub(crate) mod verify;

pub use ast::{EqPredicate, Projection, Statement, Value};
pub use cursor::{Cursor, FlatRows};
pub use engine::{Engine, EngineBuilder, Session};
pub use exec::{Database, Output, QueryError};
pub use parser::{parse, parse_script, ParseError};
pub use prepare::{Param, Prepared, NO_PARAMS};
pub use token::{lex, LexError, Token};
