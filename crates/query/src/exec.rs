//! Statement execution against a database of NF² tables.
//!
//! SELECT statements compile into `nf2-algebra` expressions evaluated on
//! the stored canonical relations; INSERT/DELETE drive the §4 incremental
//! maintenance inside [`NfTable`].

use std::collections::BTreeMap;
use std::fmt;

use nf2_algebra::optimize::{estimate, optimize, RewriteMode, SchemaCatalog};
use nf2_algebra::{Env, Expr};
use nf2_core::display::{render_flat, render_nf};
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_core::value::Atom;
use nf2_storage::{NfTable, SharedDictionary};

use crate::ast::{Predicate, Projection, Statement};
use crate::parser::{parse_script, ParseError};

/// Errors from statement execution.
#[derive(Debug)]
pub enum QueryError {
    /// Parsing failed.
    Parse(ParseError),
    /// The referenced table does not exist.
    NoSuchTable(String),
    /// A table with the name already exists.
    TableExists(String),
    /// The model or storage layer rejected the operation.
    Storage(nf2_storage::StorageError),
    /// The model layer rejected the operation.
    Model(nf2_core::NfError),
    /// A predicate referenced an unknown value, so nothing can match.
    Semantic(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            QueryError::TableExists(n) => write!(f, "table already exists: {n}"),
            QueryError::Storage(e) => write!(f, "{e}"),
            QueryError::Model(e) => write!(f, "{e}"),
            QueryError::Semantic(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}
impl From<nf2_storage::StorageError> for QueryError {
    fn from(e: nf2_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}
impl From<nf2_core::NfError> for QueryError {
    fn from(e: nf2_core::NfError) -> Self {
        QueryError::Model(e)
    }
}

/// Result of executing one statement.
#[derive(Debug)]
pub enum Output {
    /// A message (DDL acknowledgements, table lists).
    Message(String),
    /// Number of rows affected by a mutation.
    Affected(usize),
    /// An aggregate result (`COUNT(*)`, `COUNT(DISTINCT …)`).
    Count(u128),
    /// A query result relation (with a rendered table).
    Relation {
        /// The result relation.
        relation: NfRelation,
        /// ASCII rendering using the database dictionary.
        rendered: String,
    },
}

impl Output {
    /// The rendered/normal textual form of the output.
    pub fn to_text(&self) -> String {
        match self {
            Output::Message(m) => m.clone(),
            Output::Affected(n) => format!("{n} row(s) affected"),
            Output::Count(n) => n.to_string(),
            Output::Relation { rendered, .. } => rendered.clone(),
        }
    }
}

/// One reverse operation in a transaction's undo log.
#[derive(Debug, Clone)]
enum Undo {
    /// A delete (or the delete half of an update) removed this row.
    Reinsert { table: String, row: Vec<Atom> },
    /// An insert added this row.
    Remove { table: String, row: Vec<Atom> },
}

/// An in-memory database: a dictionary shared by all tables plus a
/// catalog of NF² tables, with single-level transactions (BEGIN /
/// COMMIT / ROLLBACK) over the row-mutation statements.
#[derive(Debug, Default)]
pub struct Database {
    dict: SharedDictionary,
    tables: BTreeMap<String, NfTable>,
    /// Undo log of the open transaction, if any.
    txn: Option<Vec<Undo>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &SharedDictionary {
        &self.dict
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Result<&NfTable, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::NoSuchTable(name.to_owned()))
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut NfTable, QueryError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| QueryError::NoSuchTable(name.to_owned()))
    }

    /// Parses and executes a whole script, returning one output per
    /// statement.
    pub fn run_script(&mut self, script: &str) -> Result<Vec<Output>, QueryError> {
        let stmts = parse_script(script)?;
        stmts.into_iter().map(|s| self.execute(s)).collect()
    }

    /// Parses and executes a single statement.
    pub fn run(&mut self, statement: &str) -> Result<Output, QueryError> {
        self.execute(crate::parser::parse(statement)?)
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: Statement) -> Result<Output, QueryError> {
        match stmt {
            Statement::CreateTable {
                name,
                attrs,
                nest_order,
            } => {
                if self.txn.is_some() {
                    return Err(QueryError::Semantic(
                        "DDL inside a transaction is not supported".into(),
                    ));
                }
                if self.tables.contains_key(&name) {
                    return Err(QueryError::TableExists(name));
                }
                let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let schema = nf2_core::Schema::new(name.clone(), &attr_refs)?;
                let order = match nest_order {
                    Some(names) => {
                        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        NestOrder::from_names(&schema, &refs)?
                    }
                    None => NestOrder::identity(attrs.len()),
                };
                let table = NfTable::create(&name, &attr_refs, order, self.dict.clone())?;
                self.tables.insert(name.clone(), table);
                Ok(Output::Message(format!("created table {name}")))
            }
            Statement::DropTable { name } => {
                if self.txn.is_some() {
                    return Err(QueryError::Semantic(
                        "DDL inside a transaction is not supported".into(),
                    ));
                }
                if self.tables.remove(&name).is_none() {
                    return Err(QueryError::NoSuchTable(name));
                }
                Ok(Output::Message(format!("dropped table {name}")))
            }
            Statement::Insert { table, rows } => {
                let t = self.table_mut(&table)?;
                let mut affected = 0;
                let mut undo = Vec::new();
                for row in rows {
                    let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                    let atoms = t.row_from_strs(&refs)?;
                    if t.insert_atoms(atoms.clone())? {
                        affected += 1;
                        undo.push(Undo::Remove {
                            table: table.clone(),
                            row: atoms,
                        });
                    }
                }
                self.log_undo(undo);
                Ok(Output::Affected(affected))
            }
            Statement::Delete { table, predicates } => {
                let dict = self.dict.clone();
                let t = self.table_mut(&table)?;
                // Resolve predicates; a predicate with no known value
                // matches nothing.
                let Some(bound) = resolve_bound(t, &dict, &predicates)? else {
                    return Ok(Output::Affected(0));
                };
                // Collect matching flat rows, then delete them one by one
                // through §4 maintenance.
                let victims: Vec<Vec<Atom>> = t
                    .relation()
                    .expand()
                    .rows()
                    .filter(|row| bound.iter().all(|(a, vs)| vs.contains(&row[*a])))
                    .cloned()
                    .collect();
                let mut affected = 0;
                let mut undo = Vec::new();
                for row in &victims {
                    if t.delete_atoms(row)? {
                        affected += 1;
                        undo.push(Undo::Reinsert {
                            table: table.clone(),
                            row: row.clone(),
                        });
                    }
                }
                self.log_undo(undo);
                Ok(Output::Affected(affected))
            }
            Statement::Update {
                table,
                assignments,
                predicates,
            } => {
                let dict = self.dict.clone();
                let t = self.table_mut(&table)?;
                // Resolve assignment targets (values are interned on use).
                let mut sets: Vec<(usize, Atom)> = Vec::new();
                for a in &assignments {
                    let attr = t.schema().attr_id(&a.attr)?;
                    sets.push((attr, dict.intern(&a.value)));
                }
                // Resolve the selection; unknown values match nothing.
                let Some(bound) = resolve_bound(t, &dict, &predicates)? else {
                    return Ok(Output::Affected(0));
                };
                let victims: Vec<Vec<Atom>> = t
                    .relation()
                    .expand()
                    .rows()
                    .filter(|row| bound.iter().all(|(a, vs)| vs.contains(&row[*a])))
                    .cloned()
                    .collect();
                let mut affected = 0;
                let mut undo = Vec::new();
                for row in &victims {
                    let mut updated = row.clone();
                    for &(attr, v) in &sets {
                        updated[attr] = v;
                    }
                    if updated == *row {
                        continue; // no-op rewrite
                    }
                    t.delete_atoms(row)?;
                    undo.push(Undo::Reinsert {
                        table: table.clone(),
                        row: row.clone(),
                    });
                    // The rewritten row may collide with an existing one —
                    // set semantics absorb it (and then there is nothing to
                    // undo for the insert half).
                    if t.insert_atoms(updated.clone())? {
                        undo.push(Undo::Remove {
                            table: table.clone(),
                            row: updated,
                        });
                    }
                    affected += 1;
                }
                self.log_undo(undo);
                Ok(Output::Affected(affected))
            }
            Statement::Select {
                projection,
                table,
                joins,
                predicates,
            } => {
                let (expr, env) = self.plan_select(&table, &joins, &projection, &predicates)?;
                let Some(expr) = expr else {
                    // Unknown predicate value: empty result.
                    if matches!(
                        projection,
                        Projection::CountStar | Projection::CountDistinct(_)
                    ) {
                        return Ok(Output::Count(0));
                    }
                    let t = self.table(&table)?;
                    let empty = NfRelation::new(t.schema().clone());
                    let rendered = render_nf(&empty, &self.dict.snapshot());
                    return Ok(Output::Relation {
                        relation: empty,
                        rendered,
                    });
                };
                // Structural-mode optimization is always sound: the result
                // is tuple-identical to the unoptimized plan's.
                let catalog = SchemaCatalog::from_env(&env);
                let expr = optimize(&expr, &catalog, RewriteMode::Structural).expr;
                let relation = expr.eval(&env)?;
                match projection {
                    Projection::CountStar | Projection::CountDistinct(_) => {
                        Ok(Output::Count(relation.flat_count()))
                    }
                    _ => {
                        let rendered = render_nf(&relation, &self.dict.snapshot());
                        Ok(Output::Relation { relation, rendered })
                    }
                }
            }
            Statement::Explain { inner, optimized } => {
                let Statement::Select {
                    projection,
                    table,
                    joins,
                    predicates,
                } = *inner
                else {
                    return Err(QueryError::Semantic(
                        "EXPLAIN supports SELECT statements only".into(),
                    ));
                };
                let (expr, env) = self.plan_select(&table, &joins, &projection, &predicates)?;
                let Some(expr) = expr else {
                    return Ok(Output::Message(
                        "plan: <empty result — predicate value never interned>".to_owned(),
                    ));
                };
                let mut text = format!("plan:\n{}", explain_expr(&expr, 0));
                if optimized {
                    let catalog = SchemaCatalog::from_env(&env);
                    let opt = optimize(&expr, &catalog, RewriteMode::Structural);
                    let sizes: std::collections::HashMap<String, usize> = env
                        .names()
                        .iter()
                        .map(|n| {
                            (
                                n.to_string(),
                                env.get(n).map(|r| r.tuple_count()).unwrap_or(0),
                            )
                        })
                        .collect();
                    let before = estimate(&expr, &sizes);
                    let after = estimate(&opt.expr, &sizes);
                    text.push_str("\nrewrites:");
                    if opt.trace.is_empty() {
                        text.push_str("\n  (none applicable)");
                    }
                    for step in &opt.trace {
                        text.push_str(&format!("\n  [{}] {}", step.rule, step.result));
                    }
                    text.push_str(&format!(
                        "\noptimized plan:\n{}",
                        explain_expr(&opt.expr, 0)
                    ));
                    text.push_str(&format!(
                        "\nestimated work: {:.0} -> {:.0}",
                        before.total_work, after.total_work
                    ));
                }
                Ok(Output::Message(text))
            }
            Statement::Nest { table, attr } => {
                let t = self.table(&table)?;
                let id = t.schema().attr_id(&attr)?;
                // Ad-hoc ν over one attribute through the interning nest
                // kernel (tuple-identical to `nest::nest`, which stays as
                // the Def. 4 reference).
                let relation = nf2_core::kernel::NestKernel::new().nest_once(t.relation(), id);
                let rendered = render_nf(&relation, &self.dict.snapshot());
                Ok(Output::Relation { relation, rendered })
            }
            Statement::Unnest { table, attr } => {
                let t = self.table(&table)?;
                let id = t.schema().attr_id(&attr)?;
                let relation = nf2_core::nest::unnest(t.relation(), id);
                let rendered = render_nf(&relation, &self.dict.snapshot());
                Ok(Output::Relation { relation, rendered })
            }
            Statement::Show { table, flat } => {
                let t = self.table(&table)?;
                let dict = self.dict.snapshot();
                if flat {
                    let f = t.relation().expand();
                    let rendered = render_flat(&f, &dict);
                    Ok(Output::Relation {
                        relation: NfRelation::from_flat(&f),
                        rendered,
                    })
                } else {
                    let rendered = render_nf(t.relation(), &dict);
                    Ok(Output::Relation {
                        relation: t.relation().clone(),
                        rendered,
                    })
                }
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(QueryError::Semantic(
                        "a transaction is already open (nested BEGIN is not supported)".into(),
                    ));
                }
                self.txn = Some(Vec::new());
                Ok(Output::Message("transaction started".into()))
            }
            Statement::Commit => match self.txn.take() {
                Some(log) => Ok(Output::Message(format!(
                    "committed ({} row mutation(s))",
                    log.len()
                ))),
                None => Err(QueryError::Semantic("no open transaction to COMMIT".into())),
            },
            Statement::Rollback => {
                let Some(log) = self.txn.take() else {
                    return Err(QueryError::Semantic(
                        "no open transaction to ROLLBACK".into(),
                    ));
                };
                let n = log.len();
                for entry in log.into_iter().rev() {
                    match entry {
                        Undo::Reinsert { table, row } => {
                            self.table_mut(&table)?.insert_atoms(row)?;
                        }
                        Undo::Remove { table, row } => {
                            self.table_mut(&table)?.delete_atoms(&row)?;
                        }
                    }
                }
                Ok(Output::Message(format!("rolled back {n} row mutation(s)")))
            }
            Statement::Stats { table } => {
                let t = self.table(&table)?;
                let tuples = t.tuple_count();
                let flats = t.flat_count();
                let ratio = if tuples == 0 {
                    1.0
                } else {
                    flats as f64 / tuples as f64
                };
                let cost = t.maintenance_cost();
                let stats = t.stats();
                Ok(Output::Message(format!(
                    "table {table}: {tuples} nf-tuples / {flats} flat rows (compression {ratio:.2}x)\n\
                     nest order: {}\n\
                     maintenance: {} compositions, {} decompositions, {} candidate probes, {} recons calls\n\
                     access: {} lookups probing {} units; {} inserts, {} deletes",
                    t.order(),
                    cost.compositions,
                    cost.decompositions,
                    cost.candidate_probes,
                    cost.recons_calls,
                    stats.lookups,
                    stats.units_probed,
                    stats.inserts,
                    stats.deletes,
                )))
            }
            Statement::Tables => {
                let mut lines: Vec<String> = Vec::new();
                for (name, t) in &self.tables {
                    lines.push(format!(
                        "{name}: {} nf-tuples / {} flat rows, order {}",
                        t.tuple_count(),
                        t.flat_count(),
                        t.order()
                    ));
                }
                if lines.is_empty() {
                    lines.push("(no tables)".into());
                }
                Ok(Output::Message(lines.join("\n")))
            }
        }
    }

    /// Appends undo entries to the open transaction's log (no-op when
    /// running in autocommit).
    fn log_undo(&mut self, entries: Vec<Undo>) {
        if let Some(log) = self.txn.as_mut() {
            log.extend(entries);
        }
    }

    /// Compiles a SELECT into an algebra expression plus the evaluation
    /// environment. Returns `Ok((None, env))` when some predicate has no
    /// interned value at all (the result is statically empty).
    #[allow(clippy::type_complexity)]
    fn plan_select(
        &self,
        table: &str,
        joins: &[String],
        projection: &Projection,
        predicates: &[Predicate],
    ) -> Result<(Option<Expr>, Env), QueryError> {
        let t = self.table(table)?;
        let mut env = Env::new();
        env.insert(table.to_owned(), t.relation().clone());
        let mut expr = Expr::rel(table);
        for other in joins {
            let o = self.table(other)?;
            env.insert(other.to_owned(), o.relation().clone());
            expr = Expr::Join(Box::new(expr), Box::new(Expr::rel(other)));
        }
        if !predicates.is_empty() {
            // Predicate attributes are resolved against the joined shape
            // at eval time; here we only resolve values. An IN keeps its
            // known values; a predicate with none is statically empty.
            let mut constraints = Vec::with_capacity(predicates.len());
            for p in predicates {
                let atoms: Vec<Atom> = p
                    .values()
                    .iter()
                    .filter_map(|v| self.dict.lookup(v))
                    .collect();
                if atoms.is_empty() {
                    return Ok((None, env));
                }
                constraints.push((p.attr().to_owned(), atoms));
            }
            expr = Expr::SelectBox {
                input: Box::new(expr),
                constraints,
            };
        }
        match projection {
            Projection::Attrs(attrs) => {
                expr = Expr::Project {
                    input: Box::new(expr),
                    attrs: attrs.clone(),
                };
            }
            Projection::CountDistinct(attr) => {
                expr = Expr::Project {
                    input: Box::new(expr),
                    attrs: vec![attr.clone()],
                };
            }
            Projection::All | Projection::CountStar => {}
        }
        Ok((Some(expr), env))
    }
}

/// Resolves WHERE predicates to `(attr id, allowed atoms)` pairs against
/// one table. `None` when some predicate has no known value (nothing can
/// match).
#[allow(clippy::type_complexity)]
fn resolve_bound(
    table: &NfTable,
    dict: &SharedDictionary,
    predicates: &[Predicate],
) -> Result<Option<Vec<(usize, Vec<Atom>)>>, QueryError> {
    let mut bound = Vec::with_capacity(predicates.len());
    for p in predicates {
        let attr = table.schema().attr_id(p.attr())?;
        let atoms: Vec<Atom> = p.values().iter().filter_map(|v| dict.lookup(v)).collect();
        if atoms.is_empty() {
            return Ok(None);
        }
        bound.push((attr, atoms));
    }
    Ok(Some(bound))
}

/// Renders an algebra expression as an indented plan tree for EXPLAIN.
fn explain_expr(expr: &Expr, depth: usize) -> String {
    let pad = "  ".repeat(depth);
    match expr {
        Expr::Rel(name) => format!("{pad}scan {name}"),
        Expr::SelectBox { input, constraints } => {
            let preds: Vec<String> = constraints
                .iter()
                .map(|(a, vs)| format!("{a} IN {vs:?}"))
                .collect();
            format!(
                "{pad}select [{}]\n{}",
                preds.join(" AND "),
                explain_expr(input, depth + 1)
            )
        }
        Expr::Project { input, attrs } => {
            format!(
                "{pad}project [{}]\n{}",
                attrs.join(", "),
                explain_expr(input, depth + 1)
            )
        }
        Expr::Join(l, r) => format!(
            "{pad}natural-join\n{}\n{}",
            explain_expr(l, depth + 1),
            explain_expr(r, depth + 1)
        ),
        Expr::Union(l, r) => format!(
            "{pad}union\n{}\n{}",
            explain_expr(l, depth + 1),
            explain_expr(r, depth + 1)
        ),
        Expr::Difference(l, r) => format!(
            "{pad}difference\n{}\n{}",
            explain_expr(l, depth + 1),
            explain_expr(r, depth + 1)
        ),
        Expr::Intersect(l, r) => format!(
            "{pad}intersect\n{}\n{}",
            explain_expr(l, depth + 1),
            explain_expr(r, depth + 1)
        ),
        Expr::Nest { input, attr } => {
            format!("{pad}nest [{attr}]\n{}", explain_expr(input, depth + 1))
        }
        Expr::Unnest { input, attr } => {
            format!("{pad}unnest [{attr}]\n{}", explain_expr(input, depth + 1))
        }
        Expr::Canonicalize { input, order } => {
            format!(
                "{pad}canonicalize [{}]\n{}",
                order.join(" -> "),
                explain_expr(input, depth + 1)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course, Club) NEST ORDER (Student, Course, Club);\n\
             INSERT INTO sc VALUES ('s1','c1','b1'), ('s2','c1','b1'), ('s1','c2','b1');",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_show_flow() {
        let mut db = seeded_db();
        let out = db.run("SHOW sc").unwrap();
        let text = out.to_text();
        assert!(text.contains("Student"));
        assert!(db.table("sc").unwrap().flat_count() == 3);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut db = seeded_db();
        assert!(matches!(
            db.run("CREATE TABLE sc (A)"),
            Err(QueryError::TableExists(_))
        ));
    }

    #[test]
    fn insert_counts_new_rows_only() {
        let mut db = seeded_db();
        let out = db
            .run("INSERT INTO sc VALUES ('s1','c1','b1'), ('s9','c9','b9')")
            .unwrap();
        assert!(matches!(out, Output::Affected(1)));
    }

    #[test]
    fn select_with_predicate_and_projection() {
        let mut db = seeded_db();
        let out = db
            .run("SELECT Course FROM sc WHERE Student = 's1'")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.expand().len(), 2, "s1 takes c1 and c2");
                assert_eq!(relation.arity(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_unknown_value_is_empty_not_error() {
        let mut db = seeded_db();
        let out = db.run("SELECT * FROM sc WHERE Student = 'ghost'").unwrap();
        match out {
            Output::Relation { relation, .. } => assert!(relation.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_unknown_attr_is_error() {
        let mut db = seeded_db();
        assert!(db.run("SELECT * FROM sc WHERE Nope = 's1'").is_err());
    }

    #[test]
    fn delete_with_partial_predicate() {
        let mut db = seeded_db();
        let out = db.run("DELETE FROM sc WHERE Student = 's1'").unwrap();
        assert!(matches!(out, Output::Affected(2)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 1);
    }

    #[test]
    fn delete_everything_with_empty_where() {
        let mut db = seeded_db();
        let out = db.run("DELETE FROM sc").unwrap();
        assert!(matches!(out, Output::Affected(3)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 0);
    }

    #[test]
    fn nest_and_unnest_are_ad_hoc() {
        let mut db = seeded_db();
        let nested = db.run("NEST sc ON Student").unwrap();
        match nested {
            Output::Relation { relation, .. } => {
                assert!(relation.tuple_count() <= db.table("sc").unwrap().tuple_count());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The stored table is unchanged.
        assert_eq!(db.table("sc").unwrap().flat_count(), 3);
        assert!(db.run("UNNEST sc ON Student").is_ok());
    }

    #[test]
    fn show_flat_renders_rows() {
        let mut db = seeded_db();
        let out = db.run("SHOW FLAT sc").unwrap();
        let text = out.to_text();
        assert!(text.matches("s1").count() >= 2, "two s1 rows in R*: {text}");
    }

    #[test]
    fn tables_lists_catalog() {
        let mut db = seeded_db();
        let out = db.run("TABLES").unwrap();
        assert!(out.to_text().contains("sc:"));
        db.run("DROP TABLE sc").unwrap();
        assert!(db.run("TABLES").unwrap().to_text().contains("no tables"));
    }

    #[test]
    fn stats_reports_realization_numbers() {
        let mut db = seeded_db();
        db.run("SELECT * FROM sc WHERE Student = 's1'").unwrap();
        let text = db.run("STATS sc").unwrap().to_text();
        assert!(text.contains("3 flat rows"), "{text}");
        assert!(text.contains("compression"), "{text}");
        assert!(text.contains("recons calls"), "{text}");
        assert!(text.contains("3 inserts"), "{text}");
        assert!(db.run("STATS ghost").is_err());
    }

    #[test]
    fn drop_missing_table_errors() {
        let mut db = Database::new();
        assert!(matches!(
            db.run("DROP TABLE ghost"),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn errors_display() {
        let e = QueryError::NoSuchTable("x".into());
        assert!(e.to_string().contains("no such table"));
    }
}

#[cfg(test)]
mod join_explain_tests {
    use super::*;

    fn db_with_two_tables() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');
             CREATE TABLE cp (Course, Prof);
             INSERT INTO cp VALUES ('c1','p1'), ('c2','p2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_join_matches_flat_join() {
        let mut db = db_with_two_tables();
        let out = db.run("SELECT * FROM sc JOIN cp").unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.arity(), 3, "Student, Course, Prof");
                assert_eq!(relation.expand().len(), 3, "one row per sc row");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_join_with_predicate_and_projection() {
        let mut db = db_with_two_tables();
        let out = db
            .run("SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.expand().len(), 2, "s1 and s2 take p1's course");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_with_missing_table_errors() {
        let mut db = db_with_two_tables();
        assert!(matches!(
            db.run("SELECT * FROM sc JOIN ghost"),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn explain_renders_plan_tree() {
        let mut db = db_with_two_tables();
        let out = db
            .run("EXPLAIN SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        let text = out.to_text();
        assert!(text.contains("project [Student]"), "{text}");
        assert!(text.contains("select ["), "{text}");
        assert!(text.contains("natural-join"), "{text}");
        assert!(text.contains("scan sc"), "{text}");
        assert!(text.contains("scan cp"), "{text}");
    }

    #[test]
    fn explain_of_impossible_predicate() {
        let mut db = db_with_two_tables();
        let out = db
            .run("EXPLAIN SELECT * FROM sc WHERE Student = 'ghost'")
            .unwrap();
        assert!(out.to_text().contains("empty result"));
    }

    #[test]
    fn explain_non_select_is_rejected_at_parse() {
        let mut db = db_with_two_tables();
        assert!(db.run("EXPLAIN SHOW sc").is_err());
    }
}

#[cfg(test)]
mod transaction_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
        )
        .unwrap();
        db
    }

    fn snapshot(db: &Database) -> NfRelation {
        db.table("sc").unwrap().relation().clone()
    }

    #[test]
    fn rollback_restores_the_exact_relation() {
        let mut db = db();
        let before = snapshot(&db);
        db.run("BEGIN").unwrap();
        db.run("INSERT INTO sc VALUES ('s9','c9'), ('s9','c1')")
            .unwrap();
        db.run("DELETE FROM sc WHERE Student = 's1'").unwrap();
        db.run("UPDATE sc SET Course = 'c7' WHERE Student = 's2'")
            .unwrap();
        assert_ne!(snapshot(&db), before, "mutations visible inside the txn");
        let out = db.run("ROLLBACK").unwrap();
        assert!(out.to_text().contains("rolled back"), "{}", out.to_text());
        assert_eq!(
            snapshot(&db),
            before,
            "rollback restores the canonical form"
        );
        // And the restored relation is still canonical for its order.
        let t = db.table("sc").unwrap();
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(t.relation(), &fresh);
    }

    #[test]
    fn commit_keeps_changes() {
        let mut db = db();
        db.run("BEGIN").unwrap();
        db.run("INSERT INTO sc VALUES ('s9','c9')").unwrap();
        db.run("COMMIT").unwrap();
        assert_eq!(db.table("sc").unwrap().flat_count(), 4);
        // After commit there is nothing to roll back.
        assert!(db.run("ROLLBACK").is_err());
    }

    #[test]
    fn rollback_of_update_collision_is_exact() {
        let mut db = db();
        let before = snapshot(&db);
        db.run("BEGIN").unwrap();
        // (s1,c1) → (s1,c2) collides with the existing (s1,c2).
        db.run("UPDATE sc SET Course = 'c2' WHERE Course = 'c1'")
            .unwrap();
        db.run("ROLLBACK").unwrap();
        assert_eq!(snapshot(&db), before);
    }

    #[test]
    fn chained_updates_roll_back_through_intermediates() {
        let mut db = db();
        let before = snapshot(&db);
        db.run("BEGIN").unwrap();
        db.run("UPDATE sc SET Course = 'cX' WHERE Course = 'c1'")
            .unwrap();
        db.run("UPDATE sc SET Course = 'cY' WHERE Course = 'cX'")
            .unwrap();
        db.run("ROLLBACK").unwrap();
        assert_eq!(snapshot(&db), before);
    }

    #[test]
    fn transaction_state_errors() {
        let mut db = db();
        assert!(db.run("COMMIT").is_err(), "no txn open");
        assert!(db.run("ROLLBACK").is_err());
        db.run("BEGIN").unwrap();
        assert!(db.run("BEGIN").is_err(), "nested BEGIN rejected");
        assert!(
            db.run("CREATE TABLE t2 (A)").is_err(),
            "DDL in txn rejected"
        );
        assert!(db.run("DROP TABLE sc").is_err(), "DDL in txn rejected");
        db.run("COMMIT").unwrap();
        db.run("CREATE TABLE t2 (A)").unwrap();
    }

    #[test]
    fn autocommit_mutations_bypass_the_log() {
        let mut db = db();
        db.run("INSERT INTO sc VALUES ('s9','c9')").unwrap();
        db.run("BEGIN").unwrap();
        let out = db.run("COMMIT").unwrap();
        assert!(
            out.to_text().contains("(0 row mutation(s))"),
            "{}",
            out.to_text()
        );
    }

    #[test]
    fn rollback_spans_multiple_tables() {
        let mut db = db();
        db.run_script("CREATE TABLE cp (Course, Prof); INSERT INTO cp VALUES ('c1','p1');")
            .unwrap();
        let sc_before = snapshot(&db);
        let cp_before = db.table("cp").unwrap().relation().clone();
        db.run("BEGIN").unwrap();
        db.run("DELETE FROM sc WHERE Course = 'c1'").unwrap();
        db.run("INSERT INTO cp VALUES ('c2','p2')").unwrap();
        db.run("ROLLBACK").unwrap();
        assert_eq!(snapshot(&db), sc_before);
        assert_eq!(db.table("cp").unwrap().relation(), &cp_before);
    }
}

#[cfg(test)]
mod extended_select_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');
             CREATE TABLE cp (Course, Prof);
             INSERT INTO cp VALUES ('c1','p1'), ('c2','p2'), ('c3','p1');
             CREATE TABLE pd (Prof, Dept);
             INSERT INTO pd VALUES ('p1','d1'), ('p2','d2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn in_predicate_selects_value_set() {
        let mut db = db();
        let out = db
            .run("SELECT * FROM sc WHERE Student IN ('s1', 's3')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => assert_eq!(relation.expand().len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_predicate_with_partially_unknown_values() {
        let mut db = db();
        // 'ghost' was never interned; the IN degrades to {s1}.
        let out = db
            .run("SELECT * FROM sc WHERE Student IN ('s1', 'ghost')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => assert_eq!(relation.expand().len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // All unknown: statically empty.
        let out = db
            .run("SELECT * FROM sc WHERE Student IN ('ghostA', 'ghostB')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => assert!(relation.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_and_update_accept_in_predicates() {
        let mut db = db();
        let out = db
            .run("DELETE FROM sc WHERE Student IN ('s1','s2')")
            .unwrap();
        assert!(matches!(out, Output::Affected(3)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 1);
        let out = db
            .run("UPDATE cp SET Prof = 'p9' WHERE Course IN ('c1','c2')")
            .unwrap();
        assert!(matches!(out, Output::Affected(2)));
    }

    #[test]
    fn count_star_counts_flat_rows() {
        let mut db = db();
        match db.run("SELECT COUNT(*) FROM sc").unwrap() {
            Output::Count(n) => assert_eq!(n, 4),
            other => panic!("unexpected {other:?}"),
        }
        match db
            .run("SELECT COUNT(*) FROM sc WHERE Course = 'c1'")
            .unwrap()
        {
            Output::Count(n) => assert_eq!(n, 2),
            other => panic!("unexpected {other:?}"),
        }
        match db
            .run("SELECT COUNT(*) FROM sc WHERE Course = 'ghost'")
            .unwrap()
        {
            Output::Count(n) => assert_eq!(n, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_distinct_projects_first() {
        let mut db = db();
        match db.run("SELECT COUNT(DISTINCT Student) FROM sc").unwrap() {
            Output::Count(n) => assert_eq!(n, 3, "s1, s2, s3"),
            other => panic!("unexpected {other:?}"),
        }
        match db
            .run("SELECT COUNT(DISTINCT Course) FROM sc WHERE Student = 's1'")
            .unwrap()
        {
            Output::Count(n) => assert_eq!(n, 2, "c1 and c2"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(Output::Count(7).to_text(), "7");
    }

    #[test]
    fn three_way_join_chains_naturally() {
        let mut db = db();
        // sc ⋈ cp ⋈ pd: Student-Course-Prof-Dept.
        let out = db
            .run("SELECT Student, Dept FROM sc JOIN cp JOIN pd")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.arity(), 2);
                // s1→{d1,d2}, s2→d1, s3→d1.
                assert_eq!(relation.expand().len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_optimized_shows_rewrites_and_costs() {
        let mut db = db();
        let out = db
            .run("EXPLAIN OPTIMIZED SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        let text = out.to_text();
        assert!(text.contains("rewrites:"), "{text}");
        assert!(text.contains("select-into-join"), "{text}");
        assert!(text.contains("optimized plan:"), "{text}");
        assert!(text.contains("estimated work:"), "{text}");
    }

    #[test]
    fn explain_optimized_with_nothing_to_do() {
        let mut db = db();
        let text = db
            .run("EXPLAIN OPTIMIZED SELECT * FROM sc")
            .unwrap()
            .to_text();
        assert!(text.contains("(none applicable)"), "{text}");
    }

    #[test]
    fn optimized_execution_matches_unoptimized_semantics() {
        let mut db = db();
        // The executor optimizes structurally; spot-check a plan where
        // pushdown definitely fires against the by-hand expected rows.
        let out = db
            .run("SELECT Student FROM sc JOIN cp WHERE Prof = 'p1' AND Student IN ('s1','s2')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                let rows = relation.expand();
                assert_eq!(rows.len(), 2, "s1 (c1) and s2 (c1) reach p1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn update_rewrites_matching_rows() {
        let mut db = db();
        let out = db
            .run("UPDATE sc SET Course = 'c9' WHERE Student = 's1'")
            .unwrap();
        assert!(matches!(out, Output::Affected(2)));
        // Both of s1's rows map to (s1, c9): set semantics collapse them.
        let t = db.table("sc").unwrap();
        assert_eq!(t.flat_count(), 2);
        let c9 = db.dict().lookup("c9").unwrap();
        let hits: usize = t.relation().expand().rows().filter(|r| r[1] == c9).count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn update_collision_collapses_by_set_semantics() {
        let mut db = db();
        // Rewriting s2's course to c2 creates (s2,c2); rewriting s1's c1
        // to c2 collides with the existing (s1,c2) and collapses.
        let out = db
            .run("UPDATE sc SET Course = 'c2' WHERE Course = 'c1'")
            .unwrap();
        assert!(matches!(out, Output::Affected(2)));
        assert_eq!(
            db.table("sc").unwrap().flat_count(),
            2,
            "(s1,c2) and (s2,c2)"
        );
    }

    #[test]
    fn update_with_unknown_value_is_noop() {
        let mut db = db();
        let out = db
            .run("UPDATE sc SET Course = 'c9' WHERE Student = 'ghost'")
            .unwrap();
        assert!(matches!(out, Output::Affected(0)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 3);
    }

    #[test]
    fn update_identity_assignment_is_noop() {
        let mut db = db();
        let out = db
            .run("UPDATE sc SET Course = 'c1' WHERE Course = 'c1'")
            .unwrap();
        assert!(matches!(out, Output::Affected(0)));
    }

    #[test]
    fn update_keeps_canonical_invariant() {
        let mut db = db();
        db.run("UPDATE sc SET Student = 's9'").unwrap();
        let t = db.table("sc").unwrap();
        let oracle = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(t.relation(), &oracle);
    }

    #[test]
    fn update_unknown_attr_errors() {
        let mut db = db();
        assert!(db.run("UPDATE sc SET Nope = 'x'").is_err());
    }
}
