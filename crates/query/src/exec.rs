//! Outputs, errors, and the `Database` compatibility shim.
//!
//! Statement execution itself lives in [`crate::engine`] (the
//! [`crate::Session`] type); this module keeps the pieces every
//! layer shares — [`Output`], [`QueryError`] — plus [`Database`], the
//! original string-in/string-out API, now a thin wrapper over an
//! [`crate::Engine`] with one implicit session.

use std::fmt;
use std::sync::Arc;

use nf2_storage::{NfTable, SharedDictionary};

use crate::ast::Statement;
use crate::engine::{Engine, Session, Undo};
use crate::parser::ParseError;

/// Errors from statement execution.
///
/// Marked `#[non_exhaustive]`: new failure modes (parameter binding,
/// plan invalidation, …) may be added without a breaking release —
/// match with a wildcard arm. Wrapped layer errors are chained through
/// [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum QueryError {
    /// Parsing failed.
    Parse(ParseError),
    /// The referenced table does not exist.
    NoSuchTable(String),
    /// A table with the name already exists.
    TableExists(String),
    /// The model or storage layer rejected the operation.
    Storage(nf2_storage::StorageError),
    /// The model layer rejected the operation.
    Model(nf2_core::NfError),
    /// A statement was semantically invalid in context.
    Semantic(String),
    /// A statement with `?` placeholders was executed without binding
    /// them (prepare it instead).
    Unbound {
        /// Number of unbound placeholders.
        count: usize,
    },
    /// A prepared statement was executed with the wrong number of
    /// parameters.
    ParamCount {
        /// Number of parameters the statement declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The static plan checker rejected a compiled plan (see
    /// `README.md` § Plan verification). This always indicates a planner
    /// or optimizer bug, never bad user input.
    Verify(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            QueryError::TableExists(n) => write!(f, "table already exists: {n}"),
            QueryError::Storage(e) => write!(f, "{e}"),
            QueryError::Model(e) => write!(f, "{e}"),
            QueryError::Semantic(m) => write!(f, "{m}"),
            QueryError::Unbound { count } => write!(
                f,
                "statement has {count} unbound ?-parameter(s); prepare and bind it"
            ),
            QueryError::ParamCount { expected, got } => write!(
                f,
                "statement declares {expected} parameter(s), {got} value(s) bound"
            ),
            QueryError::Verify(m) => write!(f, "plan verification failed: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Parse(e) => Some(e),
            QueryError::Storage(e) => Some(e),
            QueryError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}
impl From<nf2_storage::StorageError> for QueryError {
    fn from(e: nf2_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}
impl From<nf2_core::NfError> for QueryError {
    fn from(e: nf2_core::NfError) -> Self {
        QueryError::Model(e)
    }
}

/// Result of executing one statement.
///
/// Compares structurally (`PartialEq`) — relation outputs compare as
/// sets of NF² tuples plus their rendering — and displays as its
/// [`to_text`](Output::to_text) form.
#[derive(Debug, PartialEq, Eq)]
pub enum Output {
    /// A message (DDL acknowledgements, table lists).
    Message(String),
    /// Number of rows affected by a mutation.
    Affected(usize),
    /// An aggregate result (`COUNT(*)`, `COUNT(DISTINCT …)`).
    Count(u128),
    /// A query result relation (with a rendered table).
    Relation {
        /// The result relation.
        relation: nf2_core::relation::NfRelation,
        /// ASCII rendering using the database dictionary.
        rendered: String,
    },
}

impl Output {
    /// The rendered/normal textual form of the output.
    pub fn to_text(&self) -> String {
        match self {
            Output::Message(m) => m.clone(),
            Output::Affected(n) => format!("{n} row(s) affected"),
            Output::Count(n) => n.to_string(),
            Output::Relation { rendered, .. } => rendered.clone(),
        }
    }
}

impl fmt::Display for Output {
    /// Same text as [`Output::to_text`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Output::Message(m) => f.write_str(m),
            Output::Affected(n) => write!(f, "{n} row(s) affected"),
            Output::Count(n) => write!(f, "{n}"),
            Output::Relation { rendered, .. } => f.write_str(rendered),
        }
    }
}

/// The original embedded-database API — **deprecated but stable**.
///
/// `Database` predates the [`Engine`]/[`Session`]/
/// [`Prepared`](crate::Prepared) split and re-parses every statement it
/// runs. It is kept as a thin shim (an `Engine` plus one implicit
/// session whose transaction state persists across calls) so existing
/// code and scripts keep working unchanged; new code should use
/// [`Engine::builder`] — see the crate docs for the migration shape.
/// No functionality will be removed from this type, but new features
/// (parameters, cursors, plan caching) land on the engine surface only.
#[derive(Debug, Default)]
pub struct Database {
    engine: Engine,
    /// Undo log of the open transaction, carried across per-call
    /// sessions.
    txn: Option<Vec<Undo>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &SharedDictionary {
        self.engine.dict()
    }

    /// The underlying engine (read-only; open a [`Session`] through
    /// [`Database::engine_mut`] for the full new API).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    ///
    /// Note: sessions opened on it do **not** see this shim's open
    /// transaction (the undo log stays here until the next
    /// `run`/`execute` call).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Unwraps into the underlying engine, discarding any open
    /// transaction's undo log.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Shared access to a table (tables are internally synchronized —
    /// see [`Engine::table`]).
    pub fn table(&self, name: &str) -> Result<Arc<NfTable>, QueryError> {
        self.engine.table(name)
    }

    /// Runs `f` in a session that resumes (and then re-saves) the shim's
    /// transaction state.
    fn with_session<R>(&mut self, f: impl FnOnce(&mut Session<'_>) -> R) -> R {
        let mut session = Session::resume(&self.engine, self.txn.take());
        let out = f(&mut session);
        self.txn = session.take_txn();
        out
    }

    /// Parses and executes a whole script, returning one output per
    /// statement.
    pub fn run_script(&mut self, script: &str) -> Result<Vec<Output>, QueryError> {
        self.with_session(|s| s.run_script(script))
    }

    /// Parses and executes a single statement.
    pub fn run(&mut self, statement: &str) -> Result<Output, QueryError> {
        self.with_session(|s| s.run(statement))
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: Statement) -> Result<Output, QueryError> {
        self.with_session(|s| s.execute(stmt))
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course, Club) NEST ORDER (Student, Course, Club);\n\
             INSERT INTO sc VALUES ('s1','c1','b1'), ('s2','c1','b1'), ('s1','c2','b1');",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_show_flow() {
        let mut db = seeded_db();
        let out = db.run("SHOW sc").unwrap();
        let text = out.to_text();
        assert!(text.contains("Student"));
        assert!(db.table("sc").unwrap().flat_count() == 3);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut db = seeded_db();
        assert!(matches!(
            db.run("CREATE TABLE sc (A)"),
            Err(QueryError::TableExists(_))
        ));
    }

    #[test]
    fn insert_counts_new_rows_only() {
        let mut db = seeded_db();
        let out = db
            .run("INSERT INTO sc VALUES ('s1','c1','b1'), ('s9','c9','b9')")
            .unwrap();
        assert!(matches!(out, Output::Affected(1)));
    }

    #[test]
    fn select_with_predicate_and_projection() {
        let mut db = seeded_db();
        let out = db
            .run("SELECT Course FROM sc WHERE Student = 's1'")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.expand().len(), 2, "s1 takes c1 and c2");
                assert_eq!(relation.arity(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_unknown_value_is_empty_not_error() {
        let mut db = seeded_db();
        let out = db.run("SELECT * FROM sc WHERE Student = 'ghost'").unwrap();
        match out {
            Output::Relation { relation, .. } => assert!(relation.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_unknown_attr_is_error() {
        let mut db = seeded_db();
        assert!(db.run("SELECT * FROM sc WHERE Nope = 's1'").is_err());
    }

    #[test]
    fn delete_with_partial_predicate() {
        let mut db = seeded_db();
        let out = db.run("DELETE FROM sc WHERE Student = 's1'").unwrap();
        assert!(matches!(out, Output::Affected(2)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 1);
    }

    #[test]
    fn delete_everything_with_empty_where() {
        let mut db = seeded_db();
        let out = db.run("DELETE FROM sc").unwrap();
        assert!(matches!(out, Output::Affected(3)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 0);
    }

    #[test]
    fn nest_and_unnest_are_ad_hoc() {
        let mut db = seeded_db();
        let nested = db.run("NEST sc ON Student").unwrap();
        match nested {
            Output::Relation { relation, .. } => {
                assert!(relation.tuple_count() <= db.table("sc").unwrap().tuple_count());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The stored table is unchanged.
        assert_eq!(db.table("sc").unwrap().flat_count(), 3);
        assert!(db.run("UNNEST sc ON Student").is_ok());
    }

    #[test]
    fn show_flat_renders_rows() {
        let mut db = seeded_db();
        let out = db.run("SHOW FLAT sc").unwrap();
        let text = out.to_text();
        assert!(text.matches("s1").count() >= 2, "two s1 rows in R*: {text}");
    }

    #[test]
    fn tables_lists_catalog() {
        let mut db = seeded_db();
        let out = db.run("TABLES").unwrap();
        assert!(out.to_text().contains("sc:"));
        db.run("DROP TABLE sc").unwrap();
        assert!(db.run("TABLES").unwrap().to_text().contains("no tables"));
    }

    #[test]
    fn stats_reports_realization_numbers() {
        let mut db = seeded_db();
        db.run("SELECT * FROM sc WHERE Student = 's1'").unwrap();
        let text = db.run("STATS sc").unwrap().to_text();
        assert!(text.contains("3 flat rows"), "{text}");
        assert!(text.contains("compression"), "{text}");
        assert!(text.contains("recons calls"), "{text}");
        assert!(text.contains("3 inserts"), "{text}");
        assert!(db.run("STATS ghost").is_err());
    }

    #[test]
    fn drop_missing_table_errors() {
        let mut db = Database::new();
        assert!(matches!(
            db.run("DROP TABLE ghost"),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn errors_display() {
        let e = QueryError::NoSuchTable("x".into());
        assert!(e.to_string().contains("no such table"));
    }
}

#[cfg(test)]
mod join_explain_tests {
    use super::*;

    fn db_with_two_tables() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');
             CREATE TABLE cp (Course, Prof);
             INSERT INTO cp VALUES ('c1','p1'), ('c2','p2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_join_matches_flat_join() {
        let mut db = db_with_two_tables();
        let out = db.run("SELECT * FROM sc JOIN cp").unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.arity(), 3, "Student, Course, Prof");
                assert_eq!(relation.expand().len(), 3, "one row per sc row");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_join_with_predicate_and_projection() {
        let mut db = db_with_two_tables();
        let out = db
            .run("SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.expand().len(), 2, "s1 and s2 take p1's course");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_with_missing_table_errors() {
        let mut db = db_with_two_tables();
        assert!(matches!(
            db.run("SELECT * FROM sc JOIN ghost"),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn explain_renders_plan_tree() {
        let mut db = db_with_two_tables();
        let out = db
            .run("EXPLAIN SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        let text = out.to_text();
        assert!(text.contains("project [Student]"), "{text}");
        assert!(text.contains("select ["), "{text}");
        assert!(text.contains("natural-join"), "{text}");
        assert!(text.contains("scan sc"), "{text}");
        assert!(text.contains("scan cp"), "{text}");
    }

    #[test]
    fn explain_of_impossible_predicate() {
        let mut db = db_with_two_tables();
        let out = db
            .run("EXPLAIN SELECT * FROM sc WHERE Student = 'ghost'")
            .unwrap();
        assert!(out.to_text().contains("empty result"));
    }

    #[test]
    fn explain_non_select_is_rejected_at_parse() {
        let mut db = db_with_two_tables();
        assert!(db.run("EXPLAIN SHOW sc").is_err());
    }
}

#[cfg(test)]
mod transaction_tests {
    use super::*;
    use nf2_core::relation::NfRelation;

    fn db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
        )
        .unwrap();
        db
    }

    fn snapshot(db: &Database) -> NfRelation {
        (*db.table("sc").unwrap().relation()).clone()
    }

    #[test]
    fn rollback_restores_the_exact_relation() {
        let mut db = db();
        let before = snapshot(&db);
        db.run("BEGIN").unwrap();
        db.run("INSERT INTO sc VALUES ('s9','c9'), ('s9','c1')")
            .unwrap();
        db.run("DELETE FROM sc WHERE Student = 's1'").unwrap();
        db.run("UPDATE sc SET Course = 'c7' WHERE Student = 's2'")
            .unwrap();
        assert_ne!(snapshot(&db), before, "mutations visible inside the txn");
        let out = db.run("ROLLBACK").unwrap();
        assert!(out.to_text().contains("rolled back"), "{}", out.to_text());
        assert_eq!(
            snapshot(&db),
            before,
            "rollback restores the canonical form"
        );
        // And the restored relation is still canonical for its order.
        let t = db.table("sc").unwrap();
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(*t.relation(), fresh);
    }

    #[test]
    fn commit_keeps_changes() {
        let mut db = db();
        db.run("BEGIN").unwrap();
        db.run("INSERT INTO sc VALUES ('s9','c9')").unwrap();
        db.run("COMMIT").unwrap();
        assert_eq!(db.table("sc").unwrap().flat_count(), 4);
        // After commit there is nothing to roll back.
        assert!(db.run("ROLLBACK").is_err());
    }

    #[test]
    fn rollback_of_update_collision_is_exact() {
        let mut db = db();
        let before = snapshot(&db);
        db.run("BEGIN").unwrap();
        // (s1,c1) → (s1,c2) collides with the existing (s1,c2).
        db.run("UPDATE sc SET Course = 'c2' WHERE Course = 'c1'")
            .unwrap();
        db.run("ROLLBACK").unwrap();
        assert_eq!(snapshot(&db), before);
    }

    #[test]
    fn chained_updates_roll_back_through_intermediates() {
        let mut db = db();
        let before = snapshot(&db);
        db.run("BEGIN").unwrap();
        db.run("UPDATE sc SET Course = 'cX' WHERE Course = 'c1'")
            .unwrap();
        db.run("UPDATE sc SET Course = 'cY' WHERE Course = 'cX'")
            .unwrap();
        db.run("ROLLBACK").unwrap();
        assert_eq!(snapshot(&db), before);
    }

    #[test]
    fn transaction_state_errors() {
        let mut db = db();
        assert!(db.run("COMMIT").is_err(), "no txn open");
        assert!(db.run("ROLLBACK").is_err());
        db.run("BEGIN").unwrap();
        assert!(db.run("BEGIN").is_err(), "nested BEGIN rejected");
        assert!(
            db.run("CREATE TABLE t2 (A)").is_err(),
            "DDL in txn rejected"
        );
        assert!(db.run("DROP TABLE sc").is_err(), "DDL in txn rejected");
        db.run("COMMIT").unwrap();
        db.run("CREATE TABLE t2 (A)").unwrap();
    }

    #[test]
    fn autocommit_mutations_bypass_the_log() {
        let mut db = db();
        db.run("INSERT INTO sc VALUES ('s9','c9')").unwrap();
        db.run("BEGIN").unwrap();
        let out = db.run("COMMIT").unwrap();
        assert!(
            out.to_text().contains("(0 row mutation(s))"),
            "{}",
            out.to_text()
        );
    }

    #[test]
    fn rollback_spans_multiple_tables() {
        let mut db = db();
        db.run_script("CREATE TABLE cp (Course, Prof); INSERT INTO cp VALUES ('c1','p1');")
            .unwrap();
        let sc_before = snapshot(&db);
        let cp_before = db.table("cp").unwrap().relation();
        db.run("BEGIN").unwrap();
        db.run("DELETE FROM sc WHERE Course = 'c1'").unwrap();
        db.run("INSERT INTO cp VALUES ('c2','p2')").unwrap();
        db.run("ROLLBACK").unwrap();
        assert_eq!(snapshot(&db), sc_before);
        assert_eq!(db.table("cp").unwrap().relation(), cp_before);
    }
}

#[cfg(test)]
mod extended_select_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');
             CREATE TABLE cp (Course, Prof);
             INSERT INTO cp VALUES ('c1','p1'), ('c2','p2'), ('c3','p1');
             CREATE TABLE pd (Prof, Dept);
             INSERT INTO pd VALUES ('p1','d1'), ('p2','d2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn in_predicate_selects_value_set() {
        let mut db = db();
        let out = db
            .run("SELECT * FROM sc WHERE Student IN ('s1', 's3')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => assert_eq!(relation.expand().len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_predicate_with_partially_unknown_values() {
        let mut db = db();
        // 'ghost' was never interned; the IN degrades to {s1}.
        let out = db
            .run("SELECT * FROM sc WHERE Student IN ('s1', 'ghost')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => assert_eq!(relation.expand().len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // All unknown: statically empty.
        let out = db
            .run("SELECT * FROM sc WHERE Student IN ('ghostA', 'ghostB')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => assert!(relation.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_and_update_accept_in_predicates() {
        let mut db = db();
        let out = db
            .run("DELETE FROM sc WHERE Student IN ('s1','s2')")
            .unwrap();
        assert!(matches!(out, Output::Affected(3)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 1);
        let out = db
            .run("UPDATE cp SET Prof = 'p9' WHERE Course IN ('c1','c2')")
            .unwrap();
        assert!(matches!(out, Output::Affected(2)));
    }

    #[test]
    fn count_star_counts_flat_rows() {
        let mut db = db();
        match db.run("SELECT COUNT(*) FROM sc").unwrap() {
            Output::Count(n) => assert_eq!(n, 4),
            other => panic!("unexpected {other:?}"),
        }
        match db
            .run("SELECT COUNT(*) FROM sc WHERE Course = 'c1'")
            .unwrap()
        {
            Output::Count(n) => assert_eq!(n, 2),
            other => panic!("unexpected {other:?}"),
        }
        match db
            .run("SELECT COUNT(*) FROM sc WHERE Course = 'ghost'")
            .unwrap()
        {
            Output::Count(n) => assert_eq!(n, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_distinct_projects_first() {
        let mut db = db();
        match db.run("SELECT COUNT(DISTINCT Student) FROM sc").unwrap() {
            Output::Count(n) => assert_eq!(n, 3, "s1, s2, s3"),
            other => panic!("unexpected {other:?}"),
        }
        match db
            .run("SELECT COUNT(DISTINCT Course) FROM sc WHERE Student = 's1'")
            .unwrap()
        {
            Output::Count(n) => assert_eq!(n, 2, "c1 and c2"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(Output::Count(7).to_text(), "7");
    }

    #[test]
    fn three_way_join_chains_naturally() {
        let mut db = db();
        // sc ⋈ cp ⋈ pd: Student-Course-Prof-Dept.
        let out = db
            .run("SELECT Student, Dept FROM sc JOIN cp JOIN pd")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.arity(), 2);
                // s1→{d1,d2}, s2→d1, s3→d1.
                assert_eq!(relation.expand().len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_optimized_shows_rewrites_and_costs() {
        let mut db = db();
        let out = db
            .run("EXPLAIN OPTIMIZED SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        let text = out.to_text();
        assert!(text.contains("rewrites:"), "{text}");
        assert!(text.contains("select-into-join"), "{text}");
        assert!(text.contains("optimized plan:"), "{text}");
        assert!(text.contains("estimated work:"), "{text}");
    }

    #[test]
    fn explain_optimized_with_nothing_to_do() {
        let mut db = db();
        let text = db
            .run("EXPLAIN OPTIMIZED SELECT * FROM sc")
            .unwrap()
            .to_text();
        assert!(text.contains("(none applicable)"), "{text}");
    }

    #[test]
    fn optimized_execution_matches_unoptimized_semantics() {
        let mut db = db();
        // The executor optimizes structurally; spot-check a plan where
        // pushdown definitely fires against the by-hand expected rows.
        let out = db
            .run("SELECT Student FROM sc JOIN cp WHERE Prof = 'p1' AND Student IN ('s1','s2')")
            .unwrap();
        match out {
            Output::Relation { relation, .. } => {
                let rows = relation.expand();
                assert_eq!(rows.len(), 2, "s1 (c1) and s2 (c1) reach p1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
        )
        .unwrap();
        db
    }

    #[test]
    fn update_rewrites_matching_rows() {
        let mut db = db();
        let out = db
            .run("UPDATE sc SET Course = 'c9' WHERE Student = 's1'")
            .unwrap();
        assert!(matches!(out, Output::Affected(2)));
        // Both of s1's rows map to (s1, c9): set semantics collapse them.
        let t = db.table("sc").unwrap();
        assert_eq!(t.flat_count(), 2);
        let c9 = db.dict().lookup("c9").unwrap();
        let hits: usize = t.relation().expand().rows().filter(|r| r[1] == c9).count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn update_collision_collapses_by_set_semantics() {
        let mut db = db();
        // Rewriting s2's course to c2 creates (s2,c2); rewriting s1's c1
        // to c2 collides with the existing (s1,c2) and collapses.
        let out = db
            .run("UPDATE sc SET Course = 'c2' WHERE Course = 'c1'")
            .unwrap();
        assert!(matches!(out, Output::Affected(2)));
        assert_eq!(
            db.table("sc").unwrap().flat_count(),
            2,
            "(s1,c2) and (s2,c2)"
        );
    }

    #[test]
    fn update_with_unknown_value_is_noop() {
        let mut db = db();
        let out = db
            .run("UPDATE sc SET Course = 'c9' WHERE Student = 'ghost'")
            .unwrap();
        assert!(matches!(out, Output::Affected(0)));
        assert_eq!(db.table("sc").unwrap().flat_count(), 3);
    }

    #[test]
    fn update_identity_assignment_is_noop() {
        let mut db = db();
        let out = db
            .run("UPDATE sc SET Course = 'c1' WHERE Course = 'c1'")
            .unwrap();
        assert!(matches!(out, Output::Affected(0)));
    }

    #[test]
    fn update_keeps_canonical_invariant() {
        let mut db = db();
        db.run("UPDATE sc SET Student = 's9'").unwrap();
        let t = db.table("sc").unwrap();
        let oracle = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(*t.relation(), oracle);
    }

    #[test]
    fn update_unknown_attr_errors() {
        let mut db = db();
        assert!(db.run("UPDATE sc SET Nope = 'x'").is_err());
    }
}
