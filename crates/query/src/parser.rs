//! Recursive-descent parser for the NF² DML.

use std::fmt;

use crate::ast::{
    EqPredicate, OrderBy, OrderDir, OrderKey, Predicate, Projection, Statement, Value,
};
use crate::token::{lex, LexError, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parses a single statement (a trailing semicolon is optional).
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(ParseError {
            message: "empty input".into(),
        }),
        n => Err(ParseError {
            message: format!("expected one statement, found {n}"),
        }),
    }
}

/// Parses a semicolon-separated script.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let mut stmts = Vec::new();
    loop {
        while parser.eat(&Token::Semicolon) {}
        if parser.at_end() {
            return Ok(stmts);
        }
        // `?` placeholders are numbered per statement, left to right.
        parser.params = 0;
        stmts.push(parser.statement()?);
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far in the current statement.
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError {
                message: "unexpected end of input".into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == *t {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {t}, found {got}"),
            })
        }
    }

    /// Consumes an identifier, returning it verbatim.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError {
                message: format!("expected identifier, found {other}"),
            }),
        }
    }

    /// Consumes a keyword (case-insensitive identifier match).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let got = self.ident()?;
        if got.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected keyword {kw}, found {got}"),
            })
        }
    }

    /// Whether the next token is the given keyword; consumes it if so.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consumes a value position: a string literal or a `?` placeholder
    /// (numbered left to right within the statement).
    fn value(&mut self) -> Result<Value, ParseError> {
        match self.next()? {
            Token::Str(s) => Ok(Value::Lit(s)),
            Token::Question => {
                let idx = self.params;
                self.params += 1;
                Ok(Value::Param(idx))
            }
            other => Err(ParseError {
                message: format!("expected string literal or ?, found {other}"),
            }),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut names = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            names.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(names)
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let head = self.ident()?;
        match head.to_ascii_lowercase().as_str() {
            "create" => {
                self.keyword("table")?;
                let name = self.ident()?;
                let attrs = self.ident_list()?;
                let nest_order = if self.eat_keyword("nest") {
                    self.keyword("order")?;
                    Some(self.ident_list()?)
                } else {
                    None
                };
                Ok(Statement::CreateTable {
                    name,
                    attrs,
                    nest_order,
                })
            }
            "drop" => {
                self.keyword("table")?;
                Ok(Statement::DropTable {
                    name: self.ident()?,
                })
            }
            "insert" => {
                self.keyword("into")?;
                let table = self.ident()?;
                self.keyword("values")?;
                let mut rows = vec![self.value_row()?];
                while self.eat(&Token::Comma) {
                    rows.push(self.value_row()?);
                }
                Ok(Statement::Insert { table, rows })
            }
            "delete" => {
                self.keyword("from")?;
                let table = self.ident()?;
                let predicates = self.where_clause()?;
                Ok(Statement::Delete { table, predicates })
            }
            "select" => {
                let projection = self.projection()?;
                self.keyword("from")?;
                let table = self.ident()?;
                let mut joins = Vec::new();
                while self.eat_keyword("join") {
                    joins.push(self.ident()?);
                }
                let predicates = self.where_clause()?;
                let order_by = self.order_by_clause()?;
                let limit = self.limit_clause()?;
                Ok(Statement::Select {
                    projection,
                    table,
                    joins,
                    predicates,
                    order_by,
                    limit,
                })
            }
            "update" => {
                let table = self.ident()?;
                self.keyword("set")?;
                let mut assignments = vec![self.predicate()?];
                while self.eat(&Token::Comma) {
                    assignments.push(self.predicate()?);
                }
                let predicates = self.where_clause()?;
                Ok(Statement::Update {
                    table,
                    assignments,
                    predicates,
                })
            }
            "nest" => {
                let table = self.ident()?;
                self.keyword("on")?;
                Ok(Statement::Nest {
                    table,
                    attr: self.ident()?,
                })
            }
            "unnest" => {
                let table = self.ident()?;
                self.keyword("on")?;
                Ok(Statement::Unnest {
                    table,
                    attr: self.ident()?,
                })
            }
            "show" => {
                if self.eat_keyword("flat") {
                    Ok(Statement::Show {
                        table: self.ident()?,
                        flat: true,
                    })
                } else {
                    Ok(Statement::Show {
                        table: self.ident()?,
                        flat: false,
                    })
                }
            }
            "tables" => Ok(Statement::Tables),
            "stats" => Ok(Statement::Stats {
                table: self.ident()?,
            }),
            "begin" => Ok(Statement::Begin),
            "commit" => Ok(Statement::Commit),
            "rollback" => Ok(Statement::Rollback),
            "explain" => {
                // The flags compose in any order: EXPLAIN ANALYZE VERIFY
                // and EXPLAIN VERIFY OPTIMIZED ANALYZE both parse.
                let (mut verify, mut optimized, mut analyze) = (false, false, false);
                loop {
                    if self.eat_keyword("verify") {
                        verify = true;
                    } else if self.eat_keyword("optimized") {
                        optimized = true;
                    } else if self.eat_keyword("analyze") {
                        analyze = true;
                    } else {
                        break;
                    }
                }
                let inner = self.statement()?;
                if !matches!(inner, Statement::Select { .. }) {
                    return Err(ParseError {
                        message: "EXPLAIN supports SELECT statements only".into(),
                    });
                }
                Ok(Statement::Explain {
                    inner: Box::new(inner),
                    optimized,
                    verify,
                    analyze,
                })
            }
            other => Err(ParseError {
                message: format!("unknown statement: {other}"),
            }),
        }
    }

    fn value_row(&mut self) -> Result<Vec<Value>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut vals = vec![self.value()?];
        while self.eat(&Token::Comma) {
            vals.push(self.value()?);
        }
        self.expect(&Token::RParen)?;
        Ok(vals)
    }

    /// `*`, `COUNT(*)`, `COUNT(DISTINCT attr)`, or an attribute list.
    /// `COUNT` is recognised only when followed by `(`, so it remains
    /// usable as a plain attribute name.
    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(Projection::All);
        }
        let first = self.ident()?;
        if first.eq_ignore_ascii_case("count") && self.eat(&Token::LParen) {
            let agg = if self.eat(&Token::Star) {
                Projection::CountStar
            } else {
                self.keyword("distinct")?;
                Projection::CountDistinct(self.ident()?)
            };
            self.expect(&Token::RParen)?;
            return Ok(agg);
        }
        let mut attrs = vec![first];
        while self.eat(&Token::Comma) {
            attrs.push(self.ident()?);
        }
        Ok(Projection::Attrs(attrs))
    }

    /// An optional `ORDER BY attr [ASC|DESC] [, attr [ASC|DESC] …]`
    /// tail (before LIMIT, as in SQL). A bare key is ascending.
    fn order_by_clause(&mut self) -> Result<Option<OrderBy>, ParseError> {
        if !self.eat_keyword("order") {
            return Ok(None);
        }
        self.keyword("by")?;
        let mut keys = vec![self.order_key()?];
        while self.eat(&Token::Comma) {
            keys.push(self.order_key()?);
        }
        Ok(Some(OrderBy { keys }))
    }

    /// One `attr [ASC|DESC]` ORDER BY key.
    fn order_key(&mut self) -> Result<OrderKey, ParseError> {
        let attr = self.ident()?;
        let dir = if self.eat_keyword("desc") {
            OrderDir::Desc
        } else {
            // An explicit ASC is accepted and is the default.
            let _ = self.eat_keyword("asc");
            OrderDir::Asc
        };
        Ok(OrderKey { attr, dir })
    }

    /// An optional `LIMIT n` tail (n a decimal integer literal).
    fn limit_clause(&mut self) -> Result<Option<usize>, ParseError> {
        if !self.eat_keyword("limit") {
            return Ok(None);
        }
        let word = self.ident()?;
        match word.parse::<usize>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(ParseError {
                message: format!("LIMIT expects a non-negative integer, found {word}"),
            }),
        }
    }

    fn where_clause(&mut self) -> Result<Vec<Predicate>, ParseError> {
        if !self.eat_keyword("where") {
            return Ok(Vec::new());
        }
        let mut preds = vec![self.where_predicate()?];
        while self.eat_keyword("and") {
            preds.push(self.where_predicate()?);
        }
        Ok(preds)
    }

    /// `attr = 'value'` or `attr IN ('v1', ?, …)`; `?` placeholders are
    /// accepted anywhere a value is.
    fn where_predicate(&mut self) -> Result<Predicate, ParseError> {
        let attr = self.ident()?;
        if self.eat_keyword("in") {
            self.expect(&Token::LParen)?;
            let mut values = vec![self.value()?];
            while self.eat(&Token::Comma) {
                values.push(self.value()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Predicate::In { attr, values });
        }
        self.expect(&Token::Equals)?;
        let value = self.value()?;
        Ok(Predicate::Eq(EqPredicate { attr, value }))
    }

    /// A SET assignment: always `attr = value`.
    fn predicate(&mut self) -> Result<EqPredicate, ParseError> {
        let attr = self.ident()?;
        self.expect(&Token::Equals)?;
        let value = self.value()?;
        Ok(EqPredicate { attr, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_with_nest_order() {
        let s = parse("CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course);").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "sc".into(),
                attrs: vec!["Student".into(), "Course".into()],
                nest_order: Some(vec!["Student".into(), "Course".into()]),
            }
        );
    }

    #[test]
    fn parses_create_without_nest_order() {
        let s = parse("create table t (a, b)").unwrap();
        assert!(matches!(
            s,
            Statement::CreateTable {
                nest_order: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO sc VALUES ('s1','c1'), ('s2','c2');").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "sc".into(),
                rows: vec![
                    vec!["s1".into(), "c1".into()],
                    vec!["s2".into(), "c2".into()]
                ],
            }
        );
    }

    #[test]
    fn parses_delete_with_conjunction() {
        let s = parse("DELETE FROM sc WHERE Student = 's1' AND Course = 'c1'").unwrap();
        match s {
            Statement::Delete { table, predicates } => {
                assert_eq!(table, "sc");
                assert_eq!(predicates.len(), 2);
                assert_eq!(predicates[0].attr(), "Student");
                assert_eq!(predicates[1].values(), vec!["c1"]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_in_predicates() {
        let s = parse("SELECT * FROM sc WHERE Student IN ('s1', 's2') AND Course = 'c1'").unwrap();
        match s {
            Statement::Select { predicates, .. } => {
                assert_eq!(
                    predicates[0],
                    Predicate::In {
                        attr: "Student".into(),
                        values: vec!["s1".into(), "s2".into()]
                    }
                );
                assert_eq!(predicates[1].values(), vec!["c1"]);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(
            parse("SELECT * FROM sc WHERE Student IN ()").is_err(),
            "empty IN list"
        );
        assert!(
            parse("SELECT * FROM sc WHERE Student IN ('s1'").is_err(),
            "unclosed IN list"
        );
    }

    #[test]
    fn parses_parameter_placeholders_in_order() {
        use crate::ast::Value;
        let s = parse("SELECT * FROM t WHERE A = ? AND B IN ('x', ?, ?)").unwrap();
        assert_eq!(s.param_count(), 3);
        match &s {
            Statement::Select { predicates, .. } => {
                assert_eq!(
                    predicates[0],
                    Predicate::Eq(EqPredicate {
                        attr: "A".into(),
                        value: Value::Param(0),
                    })
                );
                assert_eq!(
                    predicates[1],
                    Predicate::In {
                        attr: "B".into(),
                        values: vec!["x".into(), Value::Param(1), Value::Param(2)],
                    }
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Numbering restarts per statement in a script.
        let script =
            parse_script("INSERT INTO t VALUES (?, ?); DELETE FROM t WHERE A = ?").unwrap();
        assert_eq!(script[0].param_count(), 2);
        assert_eq!(script[1].param_count(), 1);
        // UPDATE accepts placeholders in SET and WHERE.
        let upd = parse("UPDATE t SET A = ? WHERE B = ?").unwrap();
        assert_eq!(upd.param_count(), 2);
        // A placeholder is not an identifier.
        assert!(parse("SELECT ? FROM t").is_err());
    }

    #[test]
    fn statements_round_trip_through_display() {
        for sql in [
            "CREATE TABLE sc (Student, Course) NEST ORDER (Course, Student)",
            "INSERT INTO sc VALUES ('s1', 'c1'), (?, ?)",
            "SELECT COUNT(DISTINCT Student) FROM sc JOIN cp WHERE Prof = 'p1'",
            "SELECT * FROM sc WHERE Student IN ('s1', ?)",
            "UPDATE sc SET Course = ? WHERE Student = 's1'",
            "DELETE FROM sc",
            "EXPLAIN OPTIMIZED SELECT Student FROM sc WHERE Course = ?",
            "SHOW FLAT sc",
        ] {
            let stmt = parse(sql).unwrap();
            assert_eq!(parse(&stmt.to_string()).unwrap(), stmt, "{sql}");
        }
    }

    #[test]
    fn parses_count_aggregates() {
        assert!(matches!(
            parse("SELECT COUNT(*) FROM sc").unwrap(),
            Statement::Select {
                projection: Projection::CountStar,
                ..
            }
        ));
        match parse("SELECT COUNT(DISTINCT Student) FROM sc").unwrap() {
            Statement::Select {
                projection: Projection::CountDistinct(a),
                ..
            } => {
                assert_eq!(a, "Student")
            }
            other => panic!("unexpected: {other:?}"),
        }
        // COUNT without parens is a plain attribute.
        assert!(matches!(
            parse("SELECT Count FROM sc").unwrap(),
            Statement::Select {
                projection: Projection::Attrs(_),
                ..
            }
        ));
        assert!(
            parse("SELECT COUNT(Student) FROM sc").is_err(),
            "only * or DISTINCT attr"
        );
    }

    #[test]
    fn parses_limit_clause() {
        match parse("SELECT * FROM sc WHERE A = 'x' LIMIT 10").unwrap() {
            Statement::Select { limit, .. } => assert_eq!(limit, Some(10)),
            other => panic!("unexpected: {other:?}"),
        }
        match parse("SELECT * FROM sc LIMIT 0").unwrap() {
            Statement::Select { limit, .. } => assert_eq!(limit, Some(0)),
            other => panic!("unexpected: {other:?}"),
        }
        match parse("SELECT * FROM sc").unwrap() {
            Statement::Select { limit, .. } => assert_eq!(limit, None),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(parse("SELECT * FROM sc LIMIT").is_err());
        assert!(parse("SELECT * FROM sc LIMIT many").is_err());
        assert!(parse("SELECT * FROM sc LIMIT 'x'").is_err());
        // The printer round-trips the clause.
        let stmt = parse("SELECT Course FROM sc LIMIT 7").unwrap();
        assert_eq!(stmt.to_string(), "SELECT Course FROM sc LIMIT 7");
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn parses_order_by_clause() {
        match parse("SELECT * FROM sc ORDER BY Student").unwrap() {
            Statement::Select { order_by, .. } => {
                assert_eq!(order_by, Some(OrderBy::single("Student", OrderDir::Asc)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match parse("select * from sc where A = 'x' order by B desc limit 3").unwrap() {
            Statement::Select {
                order_by, limit, ..
            } => {
                assert_eq!(order_by, Some(OrderBy::single("B", OrderDir::Desc)));
                assert_eq!(limit, Some(3));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Explicit ASC parses to the default.
        match parse("SELECT * FROM sc ORDER BY B ASC").unwrap() {
            Statement::Select { order_by, .. } => {
                assert_eq!(order_by.unwrap().keys[0].dir, OrderDir::Asc)
            }
            other => panic!("unexpected: {other:?}"),
        }
        // ORDER BY comes before LIMIT, as in SQL.
        assert!(parse("SELECT * FROM sc LIMIT 3 ORDER BY B").is_err());
        assert!(
            parse("SELECT * FROM sc ORDER Student").is_err(),
            "BY required"
        );
        assert!(parse("SELECT * FROM sc ORDER BY").is_err());
        // The printer round-trips both directions.
        for sql in [
            "SELECT * FROM sc ORDER BY Student",
            "SELECT Course FROM sc WHERE Student = ? ORDER BY Course DESC LIMIT 5",
        ] {
            let stmt = parse(sql).unwrap();
            assert_eq!(stmt.to_string(), sql);
            assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
        }
    }

    #[test]
    fn parses_multi_key_order_by() {
        match parse("SELECT * FROM sc ORDER BY Course, Student DESC").unwrap() {
            Statement::Select { order_by, .. } => {
                assert_eq!(
                    order_by,
                    Some(OrderBy {
                        keys: vec![
                            OrderKey {
                                attr: "Course".into(),
                                dir: OrderDir::Asc
                            },
                            OrderKey {
                                attr: "Student".into(),
                                dir: OrderDir::Desc
                            },
                        ]
                    })
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Per-key directions; a LIMIT still follows the whole list.
        match parse("SELECT * FROM sc ORDER BY A DESC, B ASC, C LIMIT 2").unwrap() {
            Statement::Select {
                order_by, limit, ..
            } => {
                let keys = order_by.unwrap().keys;
                assert_eq!(keys.len(), 3);
                assert_eq!(keys[0].dir, OrderDir::Desc);
                assert_eq!(keys[1].dir, OrderDir::Asc);
                assert_eq!(keys[2].dir, OrderDir::Asc);
                assert_eq!(limit, Some(2));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // A trailing comma needs another key.
        assert!(parse("SELECT * FROM sc ORDER BY A,").is_err());
        // Multi-key lists round-trip through the printer.
        for sql in [
            "SELECT * FROM sc ORDER BY Course, Student",
            "SELECT * FROM sc ORDER BY Course DESC, Student LIMIT 4",
        ] {
            let stmt = parse(sql).unwrap();
            assert_eq!(stmt.to_string(), sql);
            assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
        }
    }

    #[test]
    fn parses_multi_way_join() {
        match parse("SELECT * FROM a JOIN b JOIN c").unwrap() {
            Statement::Select { joins, .. } => {
                assert_eq!(joins, vec!["b".to_owned(), "c".to_owned()])
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_explain_optimized() {
        assert!(matches!(
            parse("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain {
                optimized: false,
                ..
            }
        ));
        assert!(matches!(
            parse("EXPLAIN OPTIMIZED SELECT * FROM t").unwrap(),
            Statement::Explain {
                optimized: true,
                ..
            }
        ));
        assert!(matches!(
            parse("EXPLAIN VERIFY SELECT * FROM t").unwrap(),
            Statement::Explain {
                optimized: false,
                verify: true,
                ..
            }
        ));
        assert!(matches!(
            parse("EXPLAIN VERIFY OPTIMIZED SELECT * FROM t").unwrap(),
            Statement::Explain {
                optimized: true,
                verify: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_explain_analyze_flags_in_any_order() {
        assert!(matches!(
            parse("EXPLAIN ANALYZE SELECT * FROM t").unwrap(),
            Statement::Explain {
                analyze: true,
                optimized: false,
                verify: false,
                ..
            }
        ));
        for sql in [
            "EXPLAIN VERIFY OPTIMIZED ANALYZE SELECT * FROM t",
            "EXPLAIN ANALYZE OPTIMIZED VERIFY SELECT * FROM t",
            "EXPLAIN OPTIMIZED ANALYZE VERIFY SELECT * FROM t",
        ] {
            match parse(sql).unwrap() {
                Statement::Explain {
                    analyze: true,
                    optimized: true,
                    verify: true,
                    ..
                } => {}
                other => panic!("{sql}: unexpected {other:?}"),
            }
        }
        // Display round-trips the analyze flag.
        let stmt = parse("EXPLAIN VERIFY ANALYZE SELECT * FROM t").unwrap();
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn parses_select_star_and_attrs() {
        assert!(matches!(
            parse("SELECT * FROM sc").unwrap(),
            Statement::Select {
                projection: Projection::All,
                ..
            }
        ));
        let s = parse("SELECT Course, Student FROM sc WHERE Club='b1'").unwrap();
        match s {
            Statement::Select {
                projection: Projection::Attrs(attrs),
                predicates,
                ..
            } => {
                assert_eq!(attrs, vec!["Course".to_owned(), "Student".to_owned()]);
                assert_eq!(predicates.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_nest_unnest_show() {
        assert_eq!(
            parse("NEST sc ON Course").unwrap(),
            Statement::Nest {
                table: "sc".into(),
                attr: "Course".into()
            }
        );
        assert_eq!(
            parse("UNNEST sc ON Course").unwrap(),
            Statement::Unnest {
                table: "sc".into(),
                attr: "Course".into()
            }
        );
        assert_eq!(
            parse("SHOW FLAT sc").unwrap(),
            Statement::Show {
                table: "sc".into(),
                flat: true
            }
        );
        assert_eq!(parse("TABLES").unwrap(), Statement::Tables);
    }

    #[test]
    fn parses_scripts() {
        let stmts =
            parse_script("CREATE TABLE t (a, b); INSERT INTO t VALUES ('x','y'); SHOW t;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse("").is_err());
        assert!(parse("FROB x").is_err());
        assert!(parse("CREATE TABLE").is_err());
        assert!(parse("INSERT INTO t VALUES ('a' 'b')").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(
            parse("DELETE FROM t WHERE a = b").is_err(),
            "value must be a string literal"
        );
        assert!(
            parse("SHOW t; SHOW u").is_err(),
            "parse() wants exactly one statement"
        );
    }
}
