//! Static verification of compiled physical plans.
//!
//! The logical layer's typed-IR checker ([`nf2_algebra::check`]) vets
//! the algebra tree; this module vets what `SelectPlan::build` compiled
//! *from* it — the contracts the executor assumes but never re-checks:
//!
//! * every constraint's attribute id is within its input schema;
//! * the flat constraint numbering is exactly `0..n` in bind order, so
//!   the bound-value store and the pipeline agree on indices;
//! * **shard-prune-list soundness**: a scan's prune entries must be
//!   bound by an enclosing selection's conjunct on that table's
//!   routing attribute `P(n−1)` — pruning on anything else would skip
//!   shards that hold matching rows;
//! * **zone-map soundness**: every zone entry (segment min/max skip
//!   check) must be backed by an enclosing conjunct with the same
//!   attribute and bound-store index — otherwise a scan could skip
//!   segments no selection ever filters;
//! * **merge-flag soundness**: a plan claiming k-way-merge eligibility
//!   must re-derive it (ascending keys, a prefix of the reversed nest
//!   order, scan/select-only shape, no conjunct on a key attribute);
//! * projection and join nodes carry schemas consistent with their
//!   inputs (the join layout is recomputed and compared);
//! * slot atoms stay within the reserved range and parameter slots
//!   within the declared parameter count;
//! * `ORDER BY` names an attribute of the output schema, and the
//!   order/limit→top-k fold is never attached to an aggregate (whose
//!   input stream must not be truncated).
//!
//! [`check_plan`] runs all of it (plus the logical checker on both the
//! raw and optimized templates, and a re-run of the gated optimizer);
//! `SelectPlan::build` invokes it in debug builds and under
//! `NF2_VERIFY=1`, and `EXPLAIN VERIFY` reports its verdict on demand.

use std::fmt;
use std::sync::Arc;

use nf2_algebra::check::{self, CheckCatalog};
use nf2_algebra::stream::JoinLayout;
use nf2_algebra::{try_optimize, Expr, SchemaCatalog};
use nf2_core::schema::Schema;
use nf2_core::value::Atom;

use crate::ast::Projection;
use crate::engine::Engine;
use crate::prepare::{Phys, SelectPlan, Slot, SLOT_BASE};

/// A physical-plan contract violation, naming the offending plan site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PlanViolation {
    /// Which part of the plan is wrong (a rendered node or clause).
    pub site: String,
    /// What contract it breaks.
    pub reason: String,
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: {}", self.site, self.reason)
    }
}

fn violation(site: impl Into<String>, reason: impl Into<String>) -> PlanViolation {
    PlanViolation {
        site: site.into(),
        reason: reason.into(),
    }
}

/// Statistics from a successful [`check_plan`] pass.
#[derive(Debug, Clone)]
pub(crate) struct PlanReport {
    /// Logical operator nodes checked (optimized template).
    pub logical_nodes: usize,
    /// Physical pipeline nodes checked.
    pub phys_nodes: usize,
    /// Scans carrying a non-empty shard prune list.
    pub pruned_scans: usize,
    /// Scans carrying a non-empty zone-map check list.
    pub zoned_scans: usize,
    /// Optimizer rule applications re-verified by the soundness gate.
    pub rewrite_steps: usize,
    /// Inferred output type of the optimized template.
    pub output_type: check::RelType,
    /// Non-fatal checker observations.
    pub warnings: Vec<String>,
}

/// Builds the checker catalog for a plan's tables, with per-table
/// routing attributes (`P(n−1)`) for sharded tables.
fn check_catalog(plan: &SelectPlan, engine: &Engine) -> Result<CheckCatalog, PlanViolation> {
    let mut cat = CheckCatalog::new();
    for name in &plan.tables {
        let t = engine
            .table(name)
            .map_err(|e| violation(format!("table {name}"), e.to_string()))?;
        let attrs: Vec<&str> = t.schema().attr_names().collect();
        let routing = if t.shard_count() > 1 {
            t.routing().attr()
        } else {
            None
        };
        cat.insert_base(name.clone(), &attrs, routing);
    }
    Ok(cat)
}

/// Verifies every static contract of a compiled plan. See the module
/// docs for the list; any `Err` is a planner/optimizer bug.
pub(crate) fn check_plan(plan: &SelectPlan, engine: &Engine) -> Result<PlanReport, PlanViolation> {
    // Slot-range bounds: the dictionary must stay clear of the reserved
    // atom range, and the slot table must fit inside it.
    let capacity = (u32::MAX - SLOT_BASE) as usize + 1;
    if engine.dict().len() as u64 >= SLOT_BASE as u64 {
        return Err(violation(
            "slot table",
            "dictionary has grown into the reserved slot-atom range",
        ));
    }
    if plan.slots.len() > capacity {
        return Err(violation(
            "slot table",
            format!("{} slots exceed the reserved range", plan.slots.len()),
        ));
    }

    // Logical layer: both templates must type-check, and the optimized
    // template must match the compiled output schema.
    let cat = check_catalog(plan, engine)?;
    check::check(&plan.raw, &cat).map_err(|e| violation("raw template", e.to_string()))?;
    let report = check::check(&plan.expr, &cat)
        .map_err(|e| violation("optimized template", e.to_string()))?;
    let phys_names: Vec<&str> = plan.phys.schema.attr_names().collect();
    if report.ty.names() != phys_names {
        return Err(violation(
            "optimized template",
            format!(
                "logical output {} does not match compiled schema ({})",
                report.ty,
                phys_names.join(", ")
            ),
        ));
    }

    // Re-run the optimizer with the rewrite-soundness gate forced on:
    // every rule application is re-vetted (this is what `EXPLAIN
    // VERIFY` relies on in release builds, where plain `optimize`
    // skips the gate unless NF2_VERIFY is set).
    let mut schema_cat = SchemaCatalog::new();
    for name in &plan.tables {
        let t = engine
            .table(name)
            .map_err(|e| violation(format!("table {name}"), e.to_string()))?;
        schema_cat.insert(
            name.clone(),
            t.schema().attr_names().map(str::to_owned).collect(),
        );
    }
    let reopt = try_optimize(&plan.raw, &schema_cat, engine.rewrite_mode())
        .map_err(|v| violation("optimizer", v.to_string()))?;
    if reopt.expr != plan.expr {
        return Err(violation(
            "optimized template",
            "re-optimization does not reproduce the cached plan",
        ));
    }

    // Physical layer.
    let mut flats = Vec::new();
    let mut phys_nodes = 0usize;
    let mut pruned_scans = 0usize;
    let mut zoned_scans = 0usize;
    let mut enclosing: Vec<(usize, usize)> = Vec::new();
    let root_schema = walk_phys(
        &plan.phys.root,
        plan,
        engine,
        &mut enclosing,
        &mut flats,
        &mut phys_nodes,
        &mut pruned_scans,
        &mut zoned_scans,
    )?;
    let root_names: Vec<&str> = root_schema.attr_names().collect();
    if root_names != phys_names {
        return Err(violation(
            "pipeline root",
            format!(
                "pipeline produces ({}) but the plan declares ({})",
                root_names.join(", "),
                phys_names.join(", ")
            ),
        ));
    }

    // Flat numbering: the pipeline's constraint indices must be exactly
    // 0..n with no gaps or duplicates, and n must equal the number of
    // conjuncts `bind_flat` will push from the template.
    let template_conjuncts = count_template_conjuncts(&plan.expr, plan)?;
    let mut sorted = flats.clone();
    sorted.sort_unstable();
    let contiguous = sorted.iter().copied().eq(0..sorted.len());
    if !contiguous || sorted.len() != template_conjuncts {
        return Err(violation(
            "bound-value store",
            format!(
                "pipeline reads flat indices {sorted:?} but the template binds 0..{template_conjuncts}"
            ),
        ));
    }

    // ORDER BY resolution and the top-k fold contract: each key's
    // resolved id must name that key in the output schema, pairwise.
    if let Some((ob, attrs)) = &plan.order {
        if attrs.len() != ob.keys.len() {
            return Err(violation(
                format!("ORDER BY {ob}"),
                format!(
                    "{} keys resolved to {} attribute ids",
                    ob.keys.len(),
                    attrs.len()
                ),
            ));
        }
        for (key, attr) in ob.keys.iter().zip(attrs) {
            match plan.phys.schema.attr_name(*attr) {
                Ok(name) if name == key.attr => {}
                Ok(name) => {
                    return Err(violation(
                        format!("ORDER BY {}", key.attr),
                        format!("resolved attribute id {attr} names {name} in the output schema"),
                    ))
                }
                Err(_) => {
                    return Err(violation(
                        format!("ORDER BY {}", key.attr),
                        format!(
                            "attribute id {attr} is outside the output schema (arity {})",
                            plan.phys.schema.arity()
                        ),
                    ))
                }
            }
        }
    }
    // A claimed merge eligibility must be re-derivable from the plan —
    // merging unsorted shard streams would silently misorder results.
    // (`merge == false` is always safe: the cursor falls back to the
    // heap/sort path.)
    if plan.merge {
        let Some((ob, attrs)) = &plan.order else {
            return Err(violation(
                "order operator",
                "merge flag without an ORDER BY",
            ));
        };
        if !matches!(plan.projection, Projection::All) || plan.tables.len() != 1 {
            return Err(violation(
                "order operator",
                "merge flag on a projected or multi-table plan",
            ));
        }
        let t = engine
            .table(&plan.tables[0])
            .map_err(|e| violation("order operator", e.to_string()))?;
        if !crate::prepare::merge_eligible(&t, ob, attrs, &plan.phys.root) {
            return Err(violation(
                "order operator",
                "merge flag on a plan that fails static merge eligibility",
            ));
        }
    }
    if matches!(
        plan.projection,
        Projection::CountStar | Projection::CountDistinct(_)
    ) && (plan.order.is_some() || plan.limit.is_some())
    {
        return Err(violation(
            "aggregate projection",
            "order/limit must not truncate an aggregate's input stream",
        ));
    }

    Ok(PlanReport {
        logical_nodes: report.nodes,
        phys_nodes,
        pruned_scans,
        zoned_scans,
        rewrite_steps: reopt.trace.len(),
        output_type: report.ty,
        warnings: report.warnings,
    })
}

/// Bottom-up physical walk. `enclosing` carries the `(attr, flat)`
/// conjuncts of selection nodes above the current node *within the same
/// select chain* (reset across projection and join boundaries, where
/// attribute ids change meaning) — prune-list soundness is judged
/// against it.
#[allow(clippy::too_many_arguments)]
fn walk_phys(
    node: &Phys,
    plan: &SelectPlan,
    engine: &Engine,
    enclosing: &mut Vec<(usize, usize)>,
    flats: &mut Vec<usize>,
    nodes: &mut usize,
    pruned: &mut usize,
    zoned: &mut usize,
) -> Result<Arc<Schema>, PlanViolation> {
    *nodes += 1;
    match node {
        Phys::Scan { table, prune, zone } => {
            let Some(name) = plan.tables.get(*table) else {
                return Err(violation(
                    format!("scan #{table}"),
                    format!("table index out of range (plan has {})", plan.tables.len()),
                ));
            };
            let t = engine
                .table(name)
                .map_err(|e| violation(format!("scan {name}"), e.to_string()))?;
            if !prune.is_empty() {
                *pruned += 1;
                if t.shard_count() <= 1 {
                    return Err(violation(
                        format!("scan {name}"),
                        "prune list on an unsharded table".to_string(),
                    ));
                }
                let Some(route_attr) = t.routing().attr() else {
                    return Err(violation(
                        format!("scan {name}"),
                        "prune list but the table has no routing attribute".to_string(),
                    ));
                };
                for &flat in prune {
                    let bound_by_routing = enclosing
                        .iter()
                        .any(|&(attr, f)| f == flat && attr == route_attr);
                    if !bound_by_routing {
                        let route_name = t
                            .schema()
                            .attr_name(route_attr)
                            .unwrap_or("<out of schema>");
                        return Err(violation(
                            format!("scan {name}"),
                            format!(
                                "prune entry #{flat} is not bound by an enclosing conjunct \
                                 on the routing attribute {route_name}"
                            ),
                        ));
                    }
                }
            }
            if !zone.is_empty() {
                *zoned += 1;
                // A zone entry may skip whole segments, so it must be
                // backed by a real enclosing conjunct — same attribute,
                // same bound-store index — or the scan would drop rows
                // no selection ever asked to drop.
                for &(attr, flat) in zone {
                    let backed = enclosing.contains(&(attr, flat));
                    if !backed {
                        let attr_name = t.schema().attr_name(attr).unwrap_or("<out of schema>");
                        return Err(violation(
                            format!("scan {name}"),
                            format!(
                                "zone entry {attr_name}∈#{flat} is not backed by an \
                                 enclosing selection conjunct"
                            ),
                        ));
                    }
                }
            }
            Ok(t.schema().clone())
        }
        Phys::Select { input, constraints } => {
            let depth = enclosing.len();
            enclosing.extend(constraints.iter().copied());
            let schema = walk_phys(input, plan, engine, enclosing, flats, nodes, pruned, zoned)?;
            enclosing.truncate(depth);
            for &(attr, flat) in constraints {
                if attr >= schema.arity() {
                    return Err(violation(
                        render_node(node, &plan.tables, None),
                        format!(
                            "constraint on attribute id {attr} exceeds input arity {}",
                            schema.arity()
                        ),
                    ));
                }
                flats.push(flat);
            }
            Ok(schema)
        }
        Phys::Project {
            input,
            input_schema,
            attrs,
        } => {
            let mut inner = Vec::new();
            let child = walk_phys(input, plan, engine, &mut inner, flats, nodes, pruned, zoned)?;
            let child_names: Vec<&str> = child.attr_names().collect();
            let stored_names: Vec<&str> = input_schema.attr_names().collect();
            if child_names != stored_names {
                return Err(violation(
                    render_node(node, &plan.tables, None),
                    format!(
                        "stored input schema ({}) does not match the pipeline ({})",
                        stored_names.join(", "),
                        child_names.join(", ")
                    ),
                ));
            }
            let names = attrs
                .iter()
                .map(|&a| child.attr_name(a))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| violation(render_node(node, &plan.tables, None), e.to_string()))?;
            Schema::new(format!("{}_proj", child.name()), &names)
                .map_err(|e| violation(render_node(node, &plan.tables, None), e.to_string()))
        }
        Phys::Join {
            left,
            right,
            layout,
        } => {
            let mut lctx = Vec::new();
            let lschema = walk_phys(left, plan, engine, &mut lctx, flats, nodes, pruned, zoned)?;
            let mut rctx = Vec::new();
            let rschema = walk_phys(right, plan, engine, &mut rctx, flats, nodes, pruned, zoned)?;
            let expected = JoinLayout::of(&lschema, &rschema)
                .map_err(|e| violation(render_node(node, &plan.tables, None), e.to_string()))?;
            let same = expected.shared == layout.shared
                && expected.right_only == layout.right_only
                && expected.schema.attr_names().eq(layout.schema.attr_names());
            if !same {
                return Err(violation(
                    render_node(node, &plan.tables, None),
                    format!(
                        "stored join layout ({}) disagrees with the input schemas ({})",
                        layout.schema, expected.schema
                    ),
                ));
            }
            Ok(layout.schema.clone())
        }
    }
}

/// Counts the conjuncts `bind_flat` pushes for the template, validating
/// slot atoms on the way: slot ids must stay within the slot table and
/// parameter slots within the declared parameter count.
fn count_template_conjuncts(template: &Expr, plan: &SelectPlan) -> Result<usize, PlanViolation> {
    fn check_atom(a: Atom, plan: &SelectPlan) -> Result<(), PlanViolation> {
        if a.id() < SLOT_BASE {
            return Ok(());
        }
        let idx = (a.id() - SLOT_BASE) as usize;
        match plan.slots.get(idx) {
            None => Err(violation(
                "slot table",
                format!(
                    "template references slot #{idx}, but only {} exist",
                    plan.slots.len()
                ),
            )),
            Some(Slot::Param(i)) if *i >= plan.param_count => Err(violation(
                "slot table",
                format!(
                    "slot #{idx} binds parameter ?{i}, but the plan declares {}",
                    plan.param_count
                ),
            )),
            Some(_) => Ok(()),
        }
    }
    fn go(e: &Expr, plan: &SelectPlan, n: &mut usize) -> Result<(), PlanViolation> {
        match e {
            Expr::SelectBox { input, constraints } => {
                *n += constraints.len();
                for (_, atoms) in constraints {
                    for &a in atoms {
                        check_atom(a, plan)?;
                    }
                }
                go(input, plan, n)
            }
            Expr::Project { input, .. }
            | Expr::Nest { input, .. }
            | Expr::Unnest { input, .. }
            | Expr::Canonicalize { input, .. } => go(input, plan, n),
            Expr::Join(l, r)
            | Expr::Union(l, r)
            | Expr::Difference(l, r)
            | Expr::Intersect(l, r) => {
                go(l, plan, n)?;
                go(r, plan, n)
            }
            Expr::Rel(_) => Ok(()),
        }
    }
    let mut n = 0;
    go(template, plan, &mut n)?;
    Ok(n)
}

/// One-line rendering of a physical node. With an engine, prune and
/// zone entries render their predicate attribute by name (`prune
/// Course∈#0`); without one (violation sites) they fall back to bare
/// bound-store indices.
fn render_node(node: &Phys, tables: &[String], engine: Option<&Engine>) -> String {
    match node {
        Phys::Scan { table, prune, zone } => {
            let name = tables.get(*table).map(String::as_str).unwrap_or("?");
            let t = match engine {
                Some(e) => tables.get(*table).and_then(|n| e.table(n).ok()),
                None => None,
            };
            let attr_name = |attr: usize| -> Option<String> {
                t.as_ref()
                    .and_then(|t| t.schema().attr_name(attr).ok().map(str::to_owned))
            };
            let mut parts = vec![name.to_owned()];
            if !prune.is_empty() {
                let route = t
                    .as_ref()
                    .and_then(|t| t.routing().attr())
                    .and_then(&attr_name);
                let ids: Vec<String> = prune
                    .iter()
                    .map(|f| match &route {
                        Some(r) => format!("{r}∈#{f}"),
                        None => format!("#{f}"),
                    })
                    .collect();
                parts.push(format!("prune {}", ids.join(",")));
            }
            if !zone.is_empty() {
                let ids: Vec<String> = zone
                    .iter()
                    .map(|&(attr, flat)| match attr_name(attr) {
                        Some(n) => format!("{n}∈#{flat}"),
                        None => format!("@{attr}∈#{flat}"),
                    })
                    .collect();
                parts.push(format!("zone {}", ids.join(",")));
            }
            format!("scan[{}]", parts.join(" | "))
        }
        Phys::Select { constraints, .. } => {
            let parts: Vec<String> = constraints
                .iter()
                .map(|(a, f)| format!("@{a}∈#{f}"))
                .collect();
            format!("σ[{}]", parts.join(" ∧ "))
        }
        Phys::Project { attrs, .. } => {
            let ids: Vec<String> = attrs.iter().map(|a| format!("@{a}")).collect();
            format!("π[{}]", ids.join(","))
        }
        Phys::Join { layout, .. } => format!(
            "⋈[shared={}, right_only={}]",
            layout.shared.len(),
            layout.right_only.len()
        ),
    }
}

/// Renders the physical pipeline as an indented tree (EXPLAIN output).
/// The engine, when supplied, resolves prune/zone predicate attribute
/// names.
pub(crate) fn render_phys(
    node: &Phys,
    tables: &[String],
    engine: Option<&Engine>,
    indent: usize,
) -> String {
    let pad = "  ".repeat(indent);
    let mut text = format!("{pad}{}", render_node(node, tables, engine));
    let children: Vec<&Phys> = match node {
        Phys::Scan { .. } => vec![],
        Phys::Select { input, .. } | Phys::Project { input, .. } => vec![input],
        Phys::Join { left, right, .. } => vec![left, right],
    };
    for child in children {
        text.push('\n');
        text.push_str(&render_phys(child, tables, engine, indent + 1));
    }
    text
}

/// [`render_phys`] with per-operator actuals appended: each node line
/// gets `(actual rows=N time=…)` from its [`OpTally`]. `tallies` is
/// indexed by the same pre-order as [`crate::prepare::phys_size`]
/// numbers the tree (first child = `idx + 1`, a join's right child =
/// `idx + 1 + phys_size(left)`), which is exactly the order this walk
/// emits lines in.
pub(crate) fn render_phys_analyzed(
    node: &Phys,
    tables: &[String],
    engine: Option<&Engine>,
    indent: usize,
    tallies: &[std::sync::Arc<nf2_algebra::OpTally>],
    idx: usize,
) -> String {
    let pad = "  ".repeat(indent);
    let actual = match tallies.get(idx) {
        Some(t) => format!(
            " (actual rows={} time={})",
            t.rows(),
            nf2_obs::format_nanos(t.nanos())
        ),
        None => String::new(),
    };
    let mut text = format!("{pad}{}{actual}", render_node(node, tables, engine));
    let children: Vec<(&Phys, usize)> = match node {
        Phys::Scan { .. } => vec![],
        Phys::Select { input, .. } | Phys::Project { input, .. } => vec![(input, idx + 1)],
        Phys::Join { left, right, .. } => vec![
            (left, idx + 1),
            (right, idx + 1 + crate::prepare::phys_size(left)),
        ],
    };
    for (child, child_idx) in children {
        text.push('\n');
        text.push_str(&render_phys_analyzed(
            child,
            tables,
            engine,
            indent + 1,
            tallies,
            child_idx,
        ));
    }
    text
}

/// Runs [`check_plan`] and renders a human-readable verdict for
/// `EXPLAIN VERIFY`.
pub(crate) fn verify_report(plan: &SelectPlan, engine: &Engine) -> String {
    match check_plan(plan, engine) {
        Ok(r) => {
            let mut text = format!(
                "verify: ok — {} logical nodes, {} physical nodes, {} pruned scan(s), \
                 {} zone-mapped scan(s), {} rewrite step(s) gated; output type {}",
                r.logical_nodes,
                r.phys_nodes,
                r.pruned_scans,
                r.zoned_scans,
                r.rewrite_steps,
                r.output_type
            );
            for w in &r.warnings {
                text.push_str(&format!("\nverify: warning — {w}"));
            }
            text
        }
        Err(v) => format!("verify: FAILED — {v}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OrderBy, OrderDir};
    use crate::prepare::NO_PARAMS;

    /// A 4-shard engine; `sc`'s routing attribute is `Course` (the last
    /// nest-applied attribute of the identity order).
    fn sharded_engine() -> Engine {
        let engine = Engine::builder().shards(4).build().unwrap();
        engine
            .session()
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');
                 CREATE TABLE cp (Course, Prof);
                 INSERT INTO cp VALUES ('c1','p1'), ('c2','p2'), ('c3','p1');",
            )
            .unwrap();
        engine
    }

    fn plan_for(engine: &Engine, sql: &str) -> SelectPlan {
        let stmt = crate::parser::parse(sql).unwrap();
        let crate::ast::Statement::Select {
            projection,
            table,
            joins,
            predicates,
            order_by,
            limit,
        } = stmt
        else {
            panic!("not a select: {sql}")
        };
        SelectPlan::build(
            engine,
            projection,
            table,
            joins,
            &predicates,
            order_by,
            limit,
        )
        .unwrap()
    }

    fn first_scan(node: &mut Phys) -> &mut Phys {
        match node {
            Phys::Scan { .. } => node,
            Phys::Select { input, .. } | Phys::Project { input, .. } => first_scan(input),
            Phys::Join { left, .. } => first_scan(left),
        }
    }

    #[test]
    fn sound_plans_pass_with_prune_stats() {
        let engine = sharded_engine();
        for (sql, pruned) in [
            ("SELECT * FROM sc", 0),
            ("SELECT * FROM sc WHERE Course = 'c1'", 1),
            ("SELECT Student FROM sc WHERE Course IN ('c1','c2')", 1),
            // Course routes sc but not cp (whose routing attribute is
            // Prof, the last nest-applied one), so only sc's scan prunes.
            ("SELECT * FROM sc JOIN cp WHERE Course = 'c1'", 1),
            (
                "SELECT * FROM sc WHERE Student = 's1' ORDER BY Course DESC LIMIT 2",
                0,
            ),
            ("SELECT COUNT(*) FROM sc WHERE Course = ?", 1),
        ] {
            let plan = plan_for(&engine, sql);
            let report = check_plan(&plan, &engine)
                .unwrap_or_else(|v| panic!("sound plan rejected for {sql}: {v}"));
            assert_eq!(report.pruned_scans, pruned, "{sql}");
            assert!(report.warnings.is_empty(), "{sql}: {:?}", report.warnings);
        }
    }

    #[test]
    fn bad_prune_list_is_rejected() {
        let engine = sharded_engine();
        // Conjunct #0 binds Student — NOT the routing attribute — so a
        // prune entry pointing at it must be called out by table name.
        let mut plan = plan_for(&engine, "SELECT * FROM sc WHERE Student = 's1'");
        if let Phys::Scan { prune, .. } = first_scan(&mut plan.phys.root) {
            prune.push(0);
        }
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.site.contains("scan sc"), "{v}");
        assert!(v.reason.contains("routing attribute"), "{v}");
    }

    #[test]
    fn prune_on_unsharded_table_is_rejected() {
        // Pin one shard: Engine::new() would read NF2_SHARDS and make
        // the table shardable (so a prune list could be legal).
        let engine = Engine::builder().shards(1).build().unwrap();
        engine
            .session()
            .run_script("CREATE TABLE t (A); INSERT INTO t VALUES ('x');")
            .unwrap();
        let mut plan = plan_for(&engine, "SELECT * FROM t WHERE A = 'x'");
        if let Phys::Scan { prune, .. } = first_scan(&mut plan.phys.root) {
            prune.push(0);
        }
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.reason.contains("unsharded"), "{v}");
    }

    #[test]
    fn out_of_schema_order_by_is_rejected() {
        let engine = sharded_engine();
        let mut plan = plan_for(&engine, "SELECT * FROM sc ORDER BY Course");
        plan.order = Some((OrderBy::single("Course", OrderDir::Asc), vec![7]));
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.site.contains("ORDER BY Course"), "{v}");
        assert!(v.reason.contains("outside the output schema"), "{v}");
        // A resolved-but-wrong id (names another attribute) also fails.
        plan.order = Some((OrderBy::single("Course", OrderDir::Asc), vec![0]));
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.reason.contains("names Student"), "{v}");
        // And a key-count mismatch is caught before pairwise checks.
        plan.order = Some((OrderBy::single("Course", OrderDir::Asc), vec![1, 0]));
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.reason.contains("resolved to"), "{v}");
    }

    #[test]
    fn unbacked_zone_entry_is_rejected() {
        let engine = sharded_engine();
        // Conjunct #0 exists (Student = 's1'), but a zone entry claiming
        // it constrains Course would skip segments no selection filters.
        let mut plan = plan_for(&engine, "SELECT * FROM sc WHERE Student = 's1'");
        if let Phys::Scan { zone, .. } = first_scan(&mut plan.phys.root) {
            zone.push((1, 0));
        }
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.site.contains("scan sc"), "{v}");
        assert!(v.reason.contains("not backed"), "{v}");
    }

    #[test]
    fn unsound_merge_flag_is_rejected() {
        let engine = sharded_engine();
        // Student is not a prefix of the reversed nest order (Course,
        // Student), so a forced merge flag must be called out.
        let mut plan = plan_for(&engine, "SELECT * FROM sc ORDER BY Student");
        assert!(!plan.merge);
        plan.merge = true;
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.reason.contains("merge"), "{v}");
        // A descending key is equally unsound.
        let mut plan = plan_for(&engine, "SELECT * FROM sc ORDER BY Course DESC");
        assert!(!plan.merge);
        plan.merge = true;
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.reason.contains("merge"), "{v}");
        // The legitimately eligible plan passes with the flag set.
        let plan = plan_for(&engine, "SELECT * FROM sc ORDER BY Course, Student");
        assert!(plan.merge);
        check_plan(&plan, &engine).unwrap();
    }

    #[test]
    fn aggregate_topk_fold_is_rejected() {
        let engine = sharded_engine();
        let mut plan = plan_for(&engine, "SELECT COUNT(*) FROM sc");
        plan.limit = Some(1);
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.site.contains("aggregate"), "{v}");
    }

    #[test]
    fn corrupted_flat_numbering_is_rejected() {
        let engine = sharded_engine();
        let mut plan = plan_for(
            &engine,
            "SELECT * FROM sc WHERE Student = 's1' AND Course = 'c1'",
        );
        fn first_select(node: &mut Phys) -> Option<&mut Vec<(usize, usize)>> {
            match node {
                Phys::Select { constraints, .. } => Some(constraints),
                Phys::Project { input, .. } => first_select(input),
                Phys::Join { left, .. } => first_select(left),
                Phys::Scan { .. } => None,
            }
        }
        // Give the Student conjunct (attr id 0) the Course conjunct's
        // flat index: the prune entry still resolves, but the numbering
        // now has a duplicate and a gap. The scan's zone list is kept
        // consistent so the flat-numbering check (not the zone-backing
        // check) is what trips.
        let constraints = first_select(&mut plan.phys.root).unwrap();
        let course_flat = constraints.iter().find(|(a, _)| *a == 1).unwrap().1;
        constraints.iter_mut().find(|(a, _)| *a == 0).unwrap().1 = course_flat;
        if let Phys::Scan { zone, .. } = first_scan(&mut plan.phys.root) {
            zone.iter_mut().find(|(a, _)| *a == 0).unwrap().1 = course_flat;
        }
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.site.contains("bound-value store"), "{v}");
    }

    #[test]
    fn constraint_attr_out_of_arity_is_rejected() {
        let engine = sharded_engine();
        let mut plan = plan_for(&engine, "SELECT * FROM sc WHERE Student = 's1'");
        if let Phys::Select { constraints, .. } = &mut plan.phys.root {
            constraints[0].0 = 9;
        }
        // Keep the zone mirror consistent so the arity check trips, not
        // the zone-backing one.
        if let Phys::Scan { zone, .. } = first_scan(&mut plan.phys.root) {
            zone[0].0 = 9;
        }
        let v = check_plan(&plan, &engine).unwrap_err();
        assert!(v.reason.contains("exceeds input arity"), "{v}");
    }

    #[test]
    fn explain_includes_physical_tree_and_verdict() {
        let engine = sharded_engine();
        let plan = plan_for(
            &engine,
            "SELECT Student FROM sc JOIN cp WHERE Course = 'c1'",
        );
        let text = plan
            .explain(&engine, NO_PARAMS, true, true)
            .unwrap()
            .unwrap();
        assert!(text.contains("physical:"), "{text}");
        // The pruning predicate renders by attribute name, and the same
        // conjunct doubles as a zone-map check.
        assert!(
            text.contains("scan[sc | prune Course∈#0 | zone Course∈#0]"),
            "{text}"
        );
        assert!(text.contains("⋈[shared=1"), "{text}");
        assert!(text.contains("verify: ok"), "{text}");
        assert!(text.contains("pruned scan"), "{text}");
        assert!(text.contains("zone-mapped scan"), "{text}");
        // Fully bound: the dynamic pruning section reports shard and
        // segment effect.
        assert!(text.contains("pruning:"), "{text}");
        assert!(text.contains("sc: 1/4 shard(s)"), "{text}");
        assert!(text.contains("segments skipped"), "{text}");
    }

    #[test]
    fn verify_report_names_rule_and_site_on_failure() {
        let engine = sharded_engine();
        let mut plan = plan_for(&engine, "SELECT COUNT(*) FROM sc");
        plan.limit = Some(3);
        let text = verify_report(&plan, &engine);
        assert!(text.starts_with("verify: FAILED"), "{text}");
        assert!(text.contains("aggregate"), "{text}");
    }
}
