//! Lexer for the NF² data-manipulation language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare identifier (table or attribute name), lowercased keywords are
    /// resolved by the parser.
    Ident(String),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Equals,
    /// `*`
    Star,
    /// `?` — a positional parameter placeholder (prepared statements).
    Question,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Equals => write!(f, "="),
            Token::Star => write!(f, "*"),
            Token::Question => write!(f, "?"),
        }
    }
}

/// A lexing error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`. Identifiers may contain letters, digits, `_` and
/// `-`; string literals use single quotes with `''` as the escape.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '-' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_create_statement() {
        let toks = lex("CREATE TABLE sc (a, b);").unwrap();
        assert_eq!(toks[0], Token::Ident("CREATE".into()));
        assert_eq!(toks[2], Token::Ident("sc".into()));
        assert!(toks.contains(&Token::LParen));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("'oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn rejects_strange_characters() {
        assert!(lex("SELECT ~ FROM x").is_err());
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let toks = lex("a -- a comment\n b").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn lexes_equals_and_star() {
        let toks = lex("SELECT * WHERE a = 'x'").unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Equals));
    }

    #[test]
    fn lexes_parameter_placeholders() {
        let toks = lex("WHERE a = ? AND b IN (?, 'x')").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Question).count(), 2);
        assert_eq!(Token::Question.to_string(), "?");
    }

    #[test]
    fn identifiers_may_contain_dashes_and_digits() {
        let toks = lex("course-101").unwrap();
        assert_eq!(toks, vec![Token::Ident("course-101".into())]);
    }
}
