//! The embedded engine and its sessions.
//!
//! The public surface is three-staged, separating what the paper's
//! operator algebra leaves implicit — *how* relations are consumed:
//!
//! 1. [`Engine`] owns the durable state: the shared dictionary, the
//!    catalog of [`NfTable`]s, and the persistence configuration
//!    (set through [`Engine::builder`]).
//! 2. [`Session`] issues statements against one engine. It carries the
//!    transaction state (BEGIN/COMMIT/ROLLBACK undo log) and hands out
//!    [`crate::Prepared`] statements and streaming cursors
//!    ([`crate::Cursor`]).
//! 3. [`crate::Prepared`] re-executes a parsed + optimized plan
//!    with `?` parameters bound per call — no re-lex, no re-parse, no
//!    re-optimize.
//!
//! The original string-in/string-out [`Database`](crate::Database) API
//! survives as a thin shim over an `Engine` plus one implicit session.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use nf2_algebra::{Expr, RewriteMode};
use nf2_core::display::{render_flat, render_nf};
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_core::value::Atom;
use nf2_obs::{Counter, Histogram, MetricsSnapshot, Obs, Stopwatch, Subscriber};
use nf2_storage::{NfTable, SharedDictionary};

use crate::ast::{Predicate, Statement};
use crate::cursor::Cursor;
use crate::exec::{Output, QueryError};
use crate::prepare::{execute_select, Param, Prepared, SelectPlan};

/// Configures and builds an [`Engine`].
///
/// ```
/// use nf2_query::Engine;
///
/// let engine = Engine::builder()
///     .wal_autoflush(false)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(engine.ddl_epoch(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EngineBuilder {
    data_dir: Option<PathBuf>,
    wal_autoflush: bool,
    rewrite_mode: Option<RewriteMode>,
    shards: Option<usize>,
    subscriber: Option<Arc<dyn Subscriber>>,
    slow_statement_us: Option<u64>,
    group_commit_us: Option<u64>,
}

impl EngineBuilder {
    /// Directory for checkpoints and write-ahead logs. Without one the
    /// engine is purely in-memory ([`Engine::checkpoint`] errors).
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Number of shards `CREATE TABLE` partitions new tables into
    /// (hash-partitioned on the outermost nest attribute). Overrides the
    /// `NF2_SHARDS` environment variable; defaults to 1 (unsharded).
    ///
    /// The count is validated by [`build`](Self::build): `shards(0)` is
    /// an [`NfError::InvalidShardSpec`](nf2_core::NfError::InvalidShardSpec)
    /// there, not a silent clamp (and not a panic later inside the shard
    /// router).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Flush each table's WAL to the data directory after every mutating
    /// statement (default: off — WALs are written on checkpoint only).
    pub fn wal_autoflush(mut self, on: bool) -> Self {
        self.wal_autoflush = on;
        self
    }

    /// The rewrite strength the planner may use
    /// (default: [`RewriteMode::Structural`], which guarantees results
    /// tuple-identical to the unoptimized plan).
    pub fn rewrite_mode(mut self, mode: RewriteMode) -> Self {
        self.rewrite_mode = Some(mode);
        self
    }

    /// Installs a tracing subscriber on the engine's [`Obs`] hub
    /// (default: none — spans and events cost one relaxed load and
    /// nothing else). The same hub is reachable later through
    /// [`Engine::obs`], so a subscriber can also be attached or swapped
    /// after construction.
    pub fn subscriber(mut self, sub: Arc<dyn Subscriber>) -> Self {
        self.subscriber = Some(sub);
        self
    }

    /// Slow-statement threshold in microseconds: any statement whose
    /// execution takes at least this long is counted in the
    /// `stmt.slow.count` metric and logged — as a `stmt.slow` event when
    /// a subscriber is installed, to stderr otherwise. Overrides the
    /// `NF2_SLOW_US` environment variable; default: no slow log.
    pub fn slow_statement_threshold(mut self, us: u64) -> Self {
        self.slow_statement_us = Some(us);
        self
    }

    /// Group-commit window in microseconds: how long an elected WAL
    /// flush leader dwells before its fsync-equivalent, letting
    /// concurrent writers' commits ride in the same group. Overrides
    /// the `NF2_GROUP_COMMIT_US` environment variable; default 0
    /// (flush immediately — correct, just one write per flush call
    /// under contention-free load).
    pub fn group_commit(mut self, us: u64) -> Self {
        self.group_commit_us = Some(us);
        self
    }

    /// Builds the engine, validating the configuration.
    ///
    /// # Errors
    ///
    /// An explicit [`shards(0)`](Self::shards), or an `NF2_SHARDS`
    /// environment value that is `0` or not a number, surfaces as
    /// [`NfError::InvalidShardSpec`](nf2_core::NfError::InvalidShardSpec)
    /// here — at configuration time, where it is actionable — instead of
    /// being clamped or panicking inside `ShardRouter` at the first
    /// `CREATE TABLE`.
    pub fn build(self) -> Result<Engine, QueryError> {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let shards = match self.shards {
            Some(n) => n,
            None => parse_shards_env(std::env::var("NF2_SHARDS").ok().as_deref())?,
        };
        // Validate through the spec constructor itself, so builder-time
        // and storage-time shard rules cannot drift apart.
        nf2_core::shard::ShardSpec::hash(shards)?;
        let slow_statement_us = match self.slow_statement_us {
            Some(us) => Some(us),
            None => parse_slow_env(std::env::var("NF2_SLOW_US").ok().as_deref())?,
        };
        let group_commit_us = match self.group_commit_us {
            Some(us) => us,
            None => parse_group_commit_env(std::env::var("NF2_GROUP_COMMIT_US").ok().as_deref())?,
        };
        // Each engine gets a private hub and registry, so embedded
        // engines and tests stay hermetic; share one by installing the
        // same subscriber, or read `nf2_obs::global()` series alongside.
        let obs = Arc::new(Obs::new());
        if let Some(sub) = self.subscriber {
            obs.set_subscriber(Some(sub));
        }
        let stmt_metrics = StmtMetrics::new(&obs);
        Ok(Engine {
            dict: SharedDictionary::new(),
            tables: RwLock::new(BTreeMap::new()),
            instance_id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            ddl_epoch: AtomicU64::new(0),
            data_dir: self.data_dir,
            wal_autoflush: self.wal_autoflush,
            rewrite_mode: self.rewrite_mode.unwrap_or(RewriteMode::Structural),
            default_shards: shards,
            obs,
            stmt_metrics,
            slow_statement_us,
            group_commit_us,
        })
    }
}

/// Parses the `NF2_SHARDS` default shard count. `None` (unset) means 1;
/// anything set must be a positive integer — garbage and `0` are
/// configuration errors, not silent fallbacks.
fn parse_shards_env(raw: Option<&str>) -> Result<usize, QueryError> {
    let Some(raw) = raw else { return Ok(1) };
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(n) => Err(QueryError::Model(nf2_core::NfError::InvalidShardSpec(
            format!("NF2_SHARDS={n}: shard count must be at least 1"),
        ))),
        Err(_) => Err(QueryError::Model(nf2_core::NfError::InvalidShardSpec(
            format!("NF2_SHARDS={raw:?} is not a shard count"),
        ))),
    }
}

/// Parses the `NF2_SLOW_US` slow-statement threshold. `None` (unset)
/// disables the slow log; anything set must be a non-negative integer
/// number of microseconds (`0` logs every statement) — garbage is a
/// configuration error, not a silent fallback.
fn parse_slow_env(raw: Option<&str>) -> Result<Option<u64>, QueryError> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim().parse::<u64>() {
        Ok(us) => Ok(Some(us)),
        Err(_) => Err(QueryError::Semantic(format!(
            "NF2_SLOW_US={raw:?} is not a microsecond threshold"
        ))),
    }
}

/// Parses the `NF2_GROUP_COMMIT_US` group-commit window. `None`
/// (unset) means 0 — flush immediately; anything set must be a
/// non-negative integer number of microseconds — garbage is a
/// configuration error, not a silent fallback.
fn parse_group_commit_env(raw: Option<&str>) -> Result<u64, QueryError> {
    let Some(raw) = raw else { return Ok(0) };
    match raw.trim().parse::<u64>() {
        Ok(us) => Ok(us),
        Err(_) => Err(QueryError::Semantic(format!(
            "NF2_GROUP_COMMIT_US={raw:?} is not a microsecond window"
        ))),
    }
}

/// Pre-resolved metric handles for the statement hot path: one
/// histogram per statement kind plus the planning-phase histograms and
/// the slow-statement counter, looked up once at engine construction so
/// recording a statement never takes the registry lock.
#[derive(Debug, Clone)]
pub(crate) struct StmtMetrics {
    select: Histogram,
    insert: Histogram,
    delete: Histogram,
    update: Histogram,
    ddl: Histogram,
    other: Histogram,
    pub(crate) parse: Histogram,
    pub(crate) plan_build: Histogram,
    pub(crate) plan_optimize: Histogram,
    pub(crate) plan_verify: Histogram,
    pub(crate) plan_compile: Histogram,
    slow: Counter,
}

impl StmtMetrics {
    fn new(obs: &Obs) -> Self {
        let reg = obs.registry();
        StmtMetrics {
            select: reg.histogram("stmt.select.us"),
            insert: reg.histogram("stmt.insert.us"),
            delete: reg.histogram("stmt.delete.us"),
            update: reg.histogram("stmt.update.us"),
            ddl: reg.histogram("stmt.ddl.us"),
            other: reg.histogram("stmt.other.us"),
            parse: reg.histogram("stmt.parse.us"),
            plan_build: reg.histogram("plan.build.us"),
            plan_optimize: reg.histogram("plan.optimize.us"),
            plan_verify: reg.histogram("plan.verify.us"),
            plan_compile: reg.histogram("plan.compile.us"),
            slow: reg.counter("stmt.slow.count"),
        }
    }

    fn for_kind(&self, kind: &'static str) -> &Histogram {
        match kind {
            "select" => &self.select,
            "insert" => &self.insert,
            "delete" => &self.delete,
            "update" => &self.update,
            "ddl" => &self.ddl,
            _ => &self.other,
        }
    }
}

/// The statement-kind label used for latency series and slow-log events.
fn stmt_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Select { .. } => "select",
        Statement::Insert { .. } => "insert",
        Statement::Delete { .. } => "delete",
        Statement::Update { .. } => "update",
        Statement::CreateTable { .. } | Statement::DropTable { .. } => "ddl",
        _ => "other",
    }
}

/// The embedded NF² engine: dictionary + table catalog + persistence
/// configuration. Create sessions with [`Engine::session`] to run
/// statements.
///
/// # Concurrency
///
/// Every method takes `&self`: an `Engine` can be shared as
/// `Arc<Engine>` across threads, with one session per thread. The
/// catalog map sits behind a [`RwLock`] held only for lookups and DDL;
/// the tables themselves are internally synchronized — readers pin
/// shard-snapshot versions (see [`nf2_core::mvcc`]) and never block on
/// writers, while each table serializes its own writers.
#[derive(Debug)]
pub struct Engine {
    dict: SharedDictionary,
    tables: RwLock<BTreeMap<String, Arc<NfTable>>>,
    /// Process-unique identity, so prepared handles can tell engines
    /// apart (a plan compiled on one engine must not execute its cached
    /// attribute ids against another's tables).
    instance_id: u64,
    /// Bumped by every DDL statement; prepared plans check it to know
    /// when to re-plan. `Relaxed` ordering is enough: the epoch is a
    /// staleness hint, and the catalog lock provides the real ordering
    /// for the table map itself.
    ddl_epoch: AtomicU64,
    data_dir: Option<PathBuf>,
    wal_autoflush: bool,
    rewrite_mode: RewriteMode,
    /// Shard count `CREATE TABLE` partitions new tables into.
    default_shards: usize,
    /// The observability hub: tracing subscriber plus private metrics
    /// registry (see [`EngineBuilder::subscriber`]).
    obs: Arc<Obs>,
    /// Statement-path metric handles, resolved once at construction.
    stmt_metrics: StmtMetrics,
    /// Slow-statement threshold (µs); `None` disables the slow log.
    slow_statement_us: Option<u64>,
    /// Group-commit window (µs) applied to every table this engine
    /// registers; 0 = flush immediately.
    group_commit_us: u64,
}

impl Default for Engine {
    /// Same as [`Engine::new`], panics included.
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An in-memory engine with default configuration.
    ///
    /// # Panics
    ///
    /// If the `NF2_SHARDS` environment variable holds an invalid shard
    /// count (`0` or not a number). Use
    /// `Engine::builder().build()` to handle that configuration error as
    /// a `Result` instead.
    pub fn new() -> Self {
        Engine::builder()
            .build()
            .expect("NF2_SHARDS must be a positive shard count")
    }

    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Opens a session. Sessions borrow the engine shared — any number
    /// can be open at once (one per thread under `Arc<Engine>`); each
    /// carries only its own transaction state.
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            txn: None,
        }
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &SharedDictionary {
        &self.dict
    }

    /// The DDL epoch: incremented by CREATE/DROP TABLE and
    /// [`attach_table`](Self::attach_table). Prepared statements compare
    /// it to decide whether their cached plan is stale.
    pub fn ddl_epoch(&self) -> u64 {
        self.ddl_epoch.load(Ordering::Relaxed)
    }

    /// This engine's process-unique identity (prepared handles re-plan
    /// when moved across engines).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The planner's rewrite strength.
    pub fn rewrite_mode(&self) -> RewriteMode {
        self.rewrite_mode
    }

    /// The shard count new tables are created with (see
    /// [`EngineBuilder::shards`]).
    pub fn default_shards(&self) -> usize {
        self.default_shards
    }

    /// The engine's observability hub: install or swap a
    /// [`Subscriber`], toggle the metrics kill switch, or reach the
    /// private [`nf2_obs::MetricsRegistry`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The slow-statement threshold in microseconds, if configured
    /// ([`EngineBuilder::slow_statement_threshold`] / `NF2_SLOW_US`).
    pub fn slow_statement_us(&self) -> Option<u64> {
        self.slow_statement_us
    }

    /// The group-commit window in microseconds
    /// ([`EngineBuilder::group_commit`] / `NF2_GROUP_COMMIT_US`).
    pub fn group_commit_us(&self) -> u64 {
        self.group_commit_us
    }

    /// Points a freshly built table at this engine's configuration:
    /// the group-commit window, and registry-backed histograms for
    /// lane lock waits (`table.<name>.lock_wait.us`) and WAL group
    /// sizes (`wal.group.size`, shared across tables) so
    /// [`metrics`](Self::metrics) exports them automatically. Runs
    /// before the table is shared (`&mut` proves exclusivity).
    pub(crate) fn configure_table(&self, table: &mut NfTable) {
        table.set_group_commit_us(self.group_commit_us);
        let reg = self.obs.registry();
        table.set_write_metrics(
            reg.histogram(&format!("table.{}.lock_wait.us", table.name())),
            reg.histogram("wal.group.size"),
        );
    }

    /// One point-in-time export of everything this engine counts: the
    /// registry's statement/planning series merged with each table's
    /// storage counters as `table.<name>.<counter>` series. Render with
    /// [`MetricsSnapshot::to_text`] or [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.obs.registry().snapshot();
        for (name, t) in self.tables() {
            let s = t.stats();
            snap.push_counter(format!("table.{name}.lookups"), s.lookups);
            snap.push_counter(format!("table.{name}.units_probed"), s.units_probed);
            snap.push_counter(format!("table.{name}.inserts"), s.inserts);
            snap.push_counter(format!("table.{name}.deletes"), s.deletes);
            snap.push_counter(format!("table.{name}.segments_skipped"), s.segments_skipped);
            snap.push_counter(format!("table.{name}.epoch_installs"), s.epoch_installs);
            snap.push_counter(format!("table.{name}.snapshot_pins"), s.snapshot_pins);
            snap.push_counter(format!("table.{name}.wal_flushes"), s.wal_flushes);
            snap.push_counter(format!("table.{name}.rebuilds"), s.rebuilds);
            snap.push_counter(format!("table.{name}.rebuild_nanos"), s.rebuild_nanos);
        }
        snap
    }

    /// Statement-path metric handles (internal hot-path plumbing).
    pub(crate) fn stmt_metrics(&self) -> &StmtMetrics {
        &self.stmt_metrics
    }

    /// Starts the statement stopwatch if anything downstream would
    /// consume the reading — metrics on, a subscriber installed, or a
    /// slow-statement threshold configured. `None` means the statement
    /// path pays two relaxed loads and no clock calls at all.
    pub(crate) fn stmt_clock(&self) -> Option<Stopwatch> {
        if self.obs.metrics_enabled() || self.obs.enabled() || self.slow_statement_us.is_some() {
            Some(Stopwatch::start())
        } else {
            None
        }
    }

    /// Settles one executed statement against the metric and slow-log
    /// surfaces: records the latency histogram for `kind`, emits a
    /// `stmt.execute` event, and applies the slow-statement threshold.
    pub(crate) fn observe_statement(&self, kind: &'static str, sw: Stopwatch) {
        let us = sw.elapsed_us();
        if self.obs.metrics_enabled() {
            self.stmt_metrics.for_kind(kind).record(us);
        }
        self.obs.event("stmt.execute", || {
            vec![("kind", kind.into()), ("us", us.into())]
        });
        if let Some(limit) = self.slow_statement_us {
            if us >= limit {
                self.stmt_metrics.slow.incr();
                if self.obs.enabled() {
                    self.obs.event("stmt.slow", || {
                        vec![
                            ("kind", kind.into()),
                            ("us", us.into()),
                            ("threshold_us", limit.into()),
                        ]
                    });
                } else {
                    eprintln!(
                        "[nf2] slow statement: kind={kind} took {us}us (threshold {limit}us)"
                    );
                }
            }
        }
    }

    /// Parses one statement under the `stmt.parse` span/histogram.
    pub(crate) fn parse_traced(&self, sql: &str) -> Result<Statement, QueryError> {
        let _span = self
            .obs
            .span("stmt.parse")
            .observe(&self.stmt_metrics.parse);
        Ok(crate::parser::parse(sql)?)
    }

    /// Shared access to a table. The returned `Arc` is a stable handle:
    /// it keeps working (and keeps the table alive) even if the table is
    /// dropped from the catalog concurrently.
    pub fn table(&self, name: &str) -> Result<Arc<NfTable>, QueryError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| QueryError::NoSuchTable(name.to_owned()))
    }

    /// A point-in-time snapshot of the catalog in name order. (A
    /// borrowing iterator cannot escape the catalog lock, so this
    /// clones the `Arc` handles — the tables themselves are shared.)
    pub fn tables(&self) -> Vec<(String, Arc<NfTable>)> {
        self.tables
            .read()
            .iter()
            .map(|(n, t)| (n.clone(), Arc::clone(t)))
            .collect()
    }

    /// Registers a table built outside the DML (e.g. via
    /// [`NfTable::bulk_load_strs`]). The table must share this engine's
    /// dictionary for query literals to resolve against its values.
    /// Counts as DDL: bumps the epoch.
    pub fn attach_table(&self, mut table: NfTable) -> Result<(), QueryError> {
        self.configure_table(&mut table);
        let name = table.name().to_owned();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(QueryError::TableExists(name));
        }
        tables.insert(name, Arc::new(table));
        self.ddl_epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Checkpoints every table (pages + meta, truncating WALs) into the
    /// configured data directory.
    pub fn checkpoint(&self) -> Result<(), QueryError> {
        let dir = self.data_dir.clone().ok_or_else(|| {
            QueryError::Semantic("no data_dir configured (Engine::builder().data_dir(…))".into())
        })?;
        for (_, table) in self.tables() {
            table.checkpoint(&dir)?;
        }
        Ok(())
    }

    /// Flushes one table's WAL if autoflush is configured.
    fn autoflush(&self, name: &str) -> Result<(), QueryError> {
        if self.wal_autoflush {
            if let (Some(dir), Ok(table)) = (&self.data_dir, self.table(name)) {
                table.flush_wal(dir)?;
            }
        }
        Ok(())
    }
}

/// One reverse operation in a transaction's undo log.
#[derive(Debug, Clone)]
pub(crate) enum Undo {
    /// A delete (or the delete half of an update) removed this row.
    Reinsert { table: String, row: Vec<Atom> },
    /// An insert added this row.
    Remove { table: String, row: Vec<Atom> },
}

/// A statement-issuing handle on an [`Engine`].
///
/// Sessions hold the transaction state: mutations between `BEGIN` and
/// `COMMIT`/`ROLLBACK` are undo-logged here, not in the engine. Prepared
/// statements are created through [`Session::prepare`] and owned by the
/// caller — they stay valid across sessions of the same engine
/// (re-planning themselves when DDL changes the catalog underneath).
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    /// Undo log of the open transaction, if any.
    txn: Option<Vec<Undo>>,
}

impl<'e> Session<'e> {
    /// Re-opens a session with saved transaction state (the `Database`
    /// shim persists its txn across per-call sessions).
    pub(crate) fn resume(engine: &'e Engine, txn: Option<Vec<Undo>>) -> Self {
        Session { engine, txn }
    }

    /// Detaches the transaction state (shim plumbing).
    pub(crate) fn take_txn(&mut self) -> Option<Vec<Undo>> {
        self.txn.take()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Parses and executes a whole script, returning one output per
    /// statement. The batch parse records under `stmt.parse` like the
    /// single-statement path (one histogram sample for the whole script).
    pub fn run_script(&mut self, script: &str) -> Result<Vec<Output>, QueryError> {
        let stmts = {
            let _span = self
                .engine
                .obs()
                .span("stmt.parse")
                .observe(&self.engine.stmt_metrics().parse);
            crate::parser::parse_script(script)?
        };
        stmts.into_iter().map(|s| self.execute(s)).collect()
    }

    /// Parses and executes a single statement.
    pub fn run(&mut self, statement: &str) -> Result<Output, QueryError> {
        let stmt = self.engine.parse_traced(statement)?;
        self.execute(stmt)
    }

    /// Compiles a statement into a [`Prepared`] handle: parsed once,
    /// SELECTs planned and optimized once, executed many times with
    /// `?` parameters bound per call.
    pub fn prepare(&self, sql: &str) -> Result<Prepared, QueryError> {
        Prepared::compile(self.engine, sql)
    }

    /// Parses and streams a one-shot SELECT: returns a [`Cursor`] that
    /// yields NF² tuples as the scan progresses instead of materializing
    /// the result relation. The cursor owns pinned table snapshots, so
    /// it outlives the session and keeps streaming statement-start state
    /// under concurrent mutations. Only SELECT statements (without `?`
    /// parameters) are accepted; use [`Session::prepare`] for parameters.
    pub fn query(&self, sql: &str) -> Result<Cursor<'static>, QueryError> {
        let stmt = self.engine.parse_traced(sql)?;
        let unbound = stmt.param_count();
        if unbound > 0 {
            return Err(QueryError::Unbound { count: unbound });
        }
        let Statement::Select {
            projection,
            table,
            joins,
            predicates,
            order_by,
            limit,
        } = stmt
        else {
            return Err(QueryError::Semantic(
                "query() accepts SELECT statements only; use run() for the rest".into(),
            ));
        };
        let mut plan = SelectPlan::build(
            self.engine,
            projection,
            table,
            joins,
            &predicates,
            order_by,
            limit,
        )?;
        plan.cursor::<Param>(self.engine, &[])
    }

    /// Executes a parsed statement. The statement must be fully bound
    /// (no `?` placeholders).
    pub fn execute(&mut self, stmt: Statement) -> Result<Output, QueryError> {
        let unbound = stmt.param_count();
        if unbound > 0 {
            return Err(QueryError::Unbound { count: unbound });
        }
        let kind = stmt_kind(&stmt);
        let clock = self.engine.stmt_clock();
        let result = self.execute_inner(stmt);
        if let Some(sw) = clock {
            self.engine.observe_statement(kind, sw);
        }
        result
    }

    fn execute_inner(&mut self, stmt: Statement) -> Result<Output, QueryError> {
        match stmt {
            Statement::CreateTable {
                name,
                attrs,
                nest_order,
            } => {
                if self.txn.is_some() {
                    return Err(QueryError::Semantic(
                        "DDL inside a transaction is not supported".into(),
                    ));
                }
                let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let schema = nf2_core::Schema::new(name.clone(), &attr_refs)?;
                let order = match nest_order {
                    Some(names) => {
                        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        NestOrder::from_names(&schema, &refs)?
                    }
                    None => NestOrder::identity(attrs.len()),
                };
                let spec = nf2_core::shard::ShardSpec::hash(self.engine.default_shards)
                    .expect("builder clamps the shard count to >= 1");
                let mut table = NfTable::create_sharded(
                    &name,
                    &attr_refs,
                    order,
                    spec,
                    self.engine.dict.clone(),
                )?;
                self.engine.configure_table(&mut table);
                // Existence is checked under the write lock, so two
                // concurrent CREATEs of the same name cannot both win.
                let mut tables = self.engine.tables.write();
                if tables.contains_key(&name) {
                    return Err(QueryError::TableExists(name));
                }
                tables.insert(name.clone(), Arc::new(table));
                drop(tables);
                self.engine.ddl_epoch.fetch_add(1, Ordering::Relaxed);
                Ok(Output::Message(format!("created table {name}")))
            }
            Statement::DropTable { name } => {
                if self.txn.is_some() {
                    return Err(QueryError::Semantic(
                        "DDL inside a transaction is not supported".into(),
                    ));
                }
                if self.engine.tables.write().remove(&name).is_none() {
                    return Err(QueryError::NoSuchTable(name));
                }
                self.engine.ddl_epoch.fetch_add(1, Ordering::Relaxed);
                Ok(Output::Message(format!("dropped table {name}")))
            }
            // The three row-mutation arms share one error discipline: the
            // mutation body runs first, then — error or not — whatever
            // undo entries it accumulated are logged (so ROLLBACK can
            // compensate a partially-applied statement) and the WAL is
            // autoflushed (so whatever landed is durable).
            Statement::Insert { table, rows } => {
                let mut undo = Vec::new();
                let result = apply_insert(self.engine, &table, &rows, &mut undo);
                self.log_undo(undo);
                self.engine.autoflush(&table)?;
                Ok(Output::Affected(result?))
            }
            Statement::Delete { table, predicates } => {
                let mut undo = Vec::new();
                let result = apply_delete(self.engine, &table, &predicates, &mut undo);
                self.log_undo(undo);
                self.engine.autoflush(&table)?;
                Ok(Output::Affected(result?))
            }
            Statement::Update {
                table,
                assignments,
                predicates,
            } => {
                let mut undo = Vec::new();
                let result =
                    apply_update(self.engine, &table, &assignments, &predicates, &mut undo);
                self.log_undo(undo);
                self.engine.autoflush(&table)?;
                Ok(Output::Affected(result?))
            }
            Statement::Select {
                projection,
                table,
                joins,
                predicates,
                order_by,
                limit,
            } => {
                let mut plan = SelectPlan::build(
                    self.engine,
                    projection,
                    table,
                    joins,
                    &predicates,
                    order_by,
                    limit,
                )?;
                execute_select::<Param>(self.engine, &mut plan, &[])
            }
            Statement::Explain {
                inner,
                optimized,
                verify,
                analyze,
            } => {
                let Statement::Select {
                    projection,
                    table,
                    joins,
                    predicates,
                    order_by,
                    limit,
                } = *inner
                else {
                    return Err(QueryError::Semantic(
                        "EXPLAIN supports SELECT statements only".into(),
                    ));
                };
                let mut plan = SelectPlan::build(
                    self.engine,
                    projection,
                    table,
                    joins,
                    &predicates,
                    order_by,
                    limit,
                )?;
                let text = if analyze {
                    plan.explain_analyze::<Param>(self.engine, &[], optimized, verify)?
                } else {
                    plan.explain::<Param>(self.engine, &[], optimized, verify)?
                };
                let Some(text) = text else {
                    return Ok(Output::Message(
                        "plan: <empty result — predicate value never interned>".to_owned(),
                    ));
                };
                Ok(Output::Message(text))
            }
            Statement::Nest { table, attr } => {
                let t = self.engine.table(&table)?;
                let id = t.schema().attr_id(&attr)?;
                // Ad-hoc ν over one attribute through the interning nest
                // kernel (tuple-identical to `nest::nest`, which stays as
                // the Def. 4 reference).
                let relation = nf2_core::kernel::NestKernel::new().nest_once(&t.relation(), id);
                let rendered = render_nf(&relation, &self.engine.dict.snapshot());
                Ok(Output::Relation { relation, rendered })
            }
            Statement::Unnest { table, attr } => {
                let t = self.engine.table(&table)?;
                let id = t.schema().attr_id(&attr)?;
                let relation = nf2_core::nest::unnest(&t.relation(), id);
                let rendered = render_nf(&relation, &self.engine.dict.snapshot());
                Ok(Output::Relation { relation, rendered })
            }
            Statement::Show { table, flat } => {
                let t = self.engine.table(&table)?;
                let dict = self.engine.dict.snapshot();
                let rel = t.relation();
                if flat {
                    let f = rel.expand();
                    let rendered = render_flat(&f, &dict);
                    Ok(Output::Relation {
                        relation: NfRelation::from_flat(&f),
                        rendered,
                    })
                } else {
                    let rendered = render_nf(&rel, &dict);
                    Ok(Output::Relation {
                        relation: (*rel).clone(),
                        rendered,
                    })
                }
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(QueryError::Semantic(
                        "a transaction is already open (nested BEGIN is not supported)".into(),
                    ));
                }
                self.txn = Some(Vec::new());
                Ok(Output::Message("transaction started".into()))
            }
            Statement::Commit => match self.txn.take() {
                Some(log) => Ok(Output::Message(format!(
                    "committed ({} row mutation(s))",
                    log.len()
                ))),
                None => Err(QueryError::Semantic("no open transaction to COMMIT".into())),
            },
            Statement::Rollback => {
                let Some(log) = self.txn.take() else {
                    return Err(QueryError::Semantic(
                        "no open transaction to ROLLBACK".into(),
                    ));
                };
                let n = log.len();
                let mut touched = std::collections::BTreeSet::new();
                for entry in log.into_iter().rev() {
                    match entry {
                        Undo::Reinsert { table, row } => {
                            self.engine.table(&table)?.insert_atoms(row)?;
                            touched.insert(table);
                        }
                        Undo::Remove { table, row } => {
                            self.engine.table(&table)?.delete_atoms(&row)?;
                            touched.insert(table);
                        }
                    }
                }
                // The compensating mutations are WAL entries like any
                // others: persist them, or a crash would replay the
                // rolled-back half of the log only.
                for table in &touched {
                    self.engine.autoflush(table)?;
                }
                Ok(Output::Message(format!("rolled back {n} row mutation(s)")))
            }
            Statement::Stats { table } => {
                let t = self.engine.table(&table)?;
                let tuples = t.tuple_count();
                let flats = t.flat_count();
                let ratio = if tuples == 0 {
                    1.0
                } else {
                    flats as f64 / tuples as f64
                };
                let cost = t.maintenance_cost();
                let stats = t.stats();
                Ok(Output::Message(format!(
                    "table {table}: {tuples} nf-tuples / {flats} flat rows (compression {ratio:.2}x)\n\
                     nest order: {}\n\
                     maintenance: {} compositions, {} decompositions, {} candidate probes, {} recons calls\n\
                     access: {} lookups probing {} units; {} inserts, {} deletes",
                    t.order(),
                    cost.compositions,
                    cost.decompositions,
                    cost.candidate_probes,
                    cost.recons_calls,
                    stats.lookups,
                    stats.units_probed,
                    stats.inserts,
                    stats.deletes,
                )))
            }
            Statement::Tables => {
                let mut lines: Vec<String> = Vec::new();
                for (name, t) in self.engine.tables() {
                    lines.push(format!(
                        "{name}: {} nf-tuples / {} flat rows, order {}",
                        t.tuple_count(),
                        t.flat_count(),
                        t.order()
                    ));
                }
                if lines.is_empty() {
                    lines.push("(no tables)".into());
                }
                Ok(Output::Message(lines.join("\n")))
            }
        }
    }

    /// Appends undo entries to the open transaction's log (no-op when
    /// running in autocommit).
    fn log_undo(&mut self, entries: Vec<Undo>) {
        if let Some(log) = self.txn.as_mut() {
            log.extend(entries);
        }
    }
}

/// Inserts literal rows, recording one undo entry per fresh row **as it
/// lands** — on a mid-statement error the caller still receives the undo
/// entries of every row already applied.
fn apply_insert(
    engine: &Engine,
    table: &str,
    rows: &[Vec<crate::ast::Value>],
    undo: &mut Vec<Undo>,
) -> Result<usize, QueryError> {
    let t = engine.table(table)?;
    let mut affected = 0;
    for row in rows {
        let refs: Vec<&str> = row
            .iter()
            .map(|v| v.as_lit().expect("statement checked bound"))
            .collect();
        let atoms = t.row_from_strs(&refs)?;
        if t.insert_atoms(atoms.clone())? {
            affected += 1;
            undo.push(Undo::Remove {
                table: table.to_owned(),
                row: atoms,
            });
        }
    }
    Ok(affected)
}

/// Deletes every flat row matching the conjunction (see
/// [`apply_insert`] for the undo discipline).
fn apply_delete(
    engine: &Engine,
    table: &str,
    predicates: &[Predicate],
    undo: &mut Vec<Undo>,
) -> Result<usize, QueryError> {
    let dict = engine.dict.clone();
    let t = engine.table(table)?;
    // Resolve predicates; a predicate with no known value matches
    // nothing.
    let Some(bound) = resolve_bound(&t, &dict, predicates)? else {
        return Ok(0);
    };
    // Collect matching flat rows, then delete them one by one through §4
    // maintenance.
    let victims: Vec<Vec<Atom>> = t
        .relation()
        .expand()
        .rows()
        .filter(|row| bound.iter().all(|(a, vs)| vs.contains(&row[*a])))
        .cloned()
        .collect();
    let mut affected = 0;
    for row in &victims {
        if t.delete_atoms(row)? {
            affected += 1;
            undo.push(Undo::Reinsert {
                table: table.to_owned(),
                row: row.clone(),
            });
        }
    }
    Ok(affected)
}

/// Rewrites every matching flat row as delete + insert through §4
/// maintenance (see [`apply_insert`] for the undo discipline).
fn apply_update(
    engine: &Engine,
    table: &str,
    assignments: &[crate::ast::EqPredicate],
    predicates: &[Predicate],
    undo: &mut Vec<Undo>,
) -> Result<usize, QueryError> {
    let dict = engine.dict.clone();
    let t = engine.table(table)?;
    // Resolve assignment targets (values are interned on use).
    let mut sets: Vec<(usize, Atom)> = Vec::new();
    for a in assignments {
        let attr = t.schema().attr_id(&a.attr)?;
        let lit = a.value.as_lit().expect("statement checked bound");
        sets.push((attr, dict.intern(lit)));
    }
    // Resolve the selection; unknown values match nothing.
    let Some(bound) = resolve_bound(&t, &dict, predicates)? else {
        return Ok(0);
    };
    let victims: Vec<Vec<Atom>> = t
        .relation()
        .expand()
        .rows()
        .filter(|row| bound.iter().all(|(a, vs)| vs.contains(&row[*a])))
        .cloned()
        .collect();
    let mut affected = 0;
    for row in &victims {
        let mut updated = row.clone();
        for &(attr, v) in &sets {
            updated[attr] = v;
        }
        if updated == *row {
            continue; // no-op rewrite
        }
        t.delete_atoms(row)?;
        undo.push(Undo::Reinsert {
            table: table.to_owned(),
            row: row.clone(),
        });
        // The rewritten row may collide with an existing one — set
        // semantics absorb it (and then there is nothing to undo for the
        // insert half).
        if t.insert_atoms(updated.clone())? {
            undo.push(Undo::Remove {
                table: table.to_owned(),
                row: updated,
            });
        }
        affected += 1;
    }
    Ok(affected)
}

/// Resolves WHERE predicates to `(attr id, allowed atoms)` pairs against
/// one table. `None` when some predicate has no known value (nothing can
/// match).
#[allow(clippy::type_complexity)]
fn resolve_bound(
    table: &NfTable,
    dict: &SharedDictionary,
    predicates: &[Predicate],
) -> Result<Option<Vec<(usize, Vec<Atom>)>>, QueryError> {
    let mut bound = Vec::with_capacity(predicates.len());
    for p in predicates {
        let attr = table.schema().attr_id(p.attr())?;
        let atoms: Vec<Atom> = p.values().iter().filter_map(|v| dict.lookup(v)).collect();
        if atoms.is_empty() {
            return Ok(None);
        }
        bound.push((attr, atoms));
    }
    Ok(Some(bound))
}

/// Renders an algebra expression as an indented plan tree for EXPLAIN.
/// `fmt_value` controls how selection atoms print (prepared plans show
/// `?` and literals; bound plans show raw atoms).
pub(crate) fn explain_expr(
    expr: &Expr,
    depth: usize,
    fmt_value: &dyn Fn(Atom) -> String,
) -> String {
    let pad = "  ".repeat(depth);
    match expr {
        Expr::Rel(name) => format!("{pad}scan {name}"),
        Expr::SelectBox { input, constraints } => {
            let preds: Vec<String> = constraints
                .iter()
                .map(|(a, vs)| {
                    let rendered: Vec<String> = vs.iter().map(|&v| fmt_value(v)).collect();
                    format!("{a} IN [{}]", rendered.join(", "))
                })
                .collect();
            format!(
                "{pad}select [{}]\n{}",
                preds.join(" AND "),
                explain_expr(input, depth + 1, fmt_value)
            )
        }
        Expr::Project { input, attrs } => {
            format!(
                "{pad}project [{}]\n{}",
                attrs.join(", "),
                explain_expr(input, depth + 1, fmt_value)
            )
        }
        Expr::Join(l, r) => format!(
            "{pad}natural-join\n{}\n{}",
            explain_expr(l, depth + 1, fmt_value),
            explain_expr(r, depth + 1, fmt_value)
        ),
        Expr::Union(l, r) => format!(
            "{pad}union\n{}\n{}",
            explain_expr(l, depth + 1, fmt_value),
            explain_expr(r, depth + 1, fmt_value)
        ),
        Expr::Difference(l, r) => format!(
            "{pad}difference\n{}\n{}",
            explain_expr(l, depth + 1, fmt_value),
            explain_expr(r, depth + 1, fmt_value)
        ),
        Expr::Intersect(l, r) => format!(
            "{pad}intersect\n{}\n{}",
            explain_expr(l, depth + 1, fmt_value),
            explain_expr(r, depth + 1, fmt_value)
        ),
        Expr::Nest { input, attr } => {
            format!(
                "{pad}nest [{attr}]\n{}",
                explain_expr(input, depth + 1, fmt_value)
            )
        }
        Expr::Unnest { input, attr } => {
            format!(
                "{pad}unnest [{attr}]\n{}",
                explain_expr(input, depth + 1, fmt_value)
            )
        }
        Expr::Canonicalize { input, order } => {
            format!(
                "{pad}canonicalize [{}]\n{}",
                order.join(" -> "),
                explain_expr(input, depth + 1, fmt_value)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_engine() -> Engine {
        let engine = Engine::new();
        engine
            .session()
            .run_script(
                "CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
            )
            .unwrap();
        engine
    }

    #[test]
    fn builder_configures_engine() {
        let engine = Engine::builder()
            .rewrite_mode(RewriteMode::Structural)
            .wal_autoflush(true)
            .build()
            .unwrap();
        assert_eq!(engine.rewrite_mode(), RewriteMode::Structural);
        assert_eq!(engine.ddl_epoch(), 0);
        assert!(engine.table("sc").is_err());
    }

    #[test]
    fn builder_shards_partition_created_tables() {
        let engine = Engine::builder().shards(4).build().unwrap();
        assert_eq!(engine.default_shards(), 4);
        let mut session = engine.session();
        session
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');",
            )
            .unwrap();
        let table = session.engine().table("sc").unwrap();
        assert_eq!(table.shard_count(), 4);
        // Query semantics are unchanged by sharding.
        match session.run("SELECT COUNT(*) FROM sc").unwrap() {
            Output::Count(n) => assert_eq!(n, 4),
            other => panic!("unexpected {other:?}"),
        }
        match session
            .run("SELECT Course FROM sc WHERE Student = 's1'")
            .unwrap()
        {
            Output::Relation { relation, .. } => assert_eq!(relation.flat_count(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // relation() serves the exact canonical form: identical to an
        // unsharded engine fed the same script.
        let plain = Engine::builder().shards(1).build().unwrap();
        plain
            .session()
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');",
            )
            .unwrap();
        assert_eq!(
            session.engine().table("sc").unwrap().relation(),
            plain.table("sc").unwrap().relation()
        );
    }

    #[test]
    fn zero_shards_is_a_builder_error_not_a_clamp() {
        // shards(0) used to clamp to 1 silently; it must surface the
        // shard subsystem's own error at configuration time.
        match Engine::builder().shards(0).build() {
            Err(QueryError::Model(nf2_core::NfError::InvalidShardSpec(_))) => {}
            other => panic!("expected InvalidShardSpec, got {other:?}"),
        }
        assert!(Engine::builder().shards(1).build().is_ok());
        assert!(Engine::builder().shards(7).build().is_ok());
    }

    #[test]
    fn nf2_shards_env_values_are_validated() {
        // Hermetic: the parser is exercised with explicit strings so the
        // test never mutates the process environment other tests read.
        assert_eq!(super::parse_shards_env(None).unwrap(), 1);
        assert_eq!(super::parse_shards_env(Some("4")).unwrap(), 4);
        assert_eq!(super::parse_shards_env(Some(" 2 ")).unwrap(), 2, "trimmed");
        for garbage in ["0", "", "abc", "-3", "1.5", "4x"] {
            match super::parse_shards_env(Some(garbage)) {
                Err(QueryError::Model(nf2_core::NfError::InvalidShardSpec(msg))) => {
                    assert!(msg.contains("NF2_SHARDS"), "{msg}");
                }
                other => panic!("NF2_SHARDS={garbage:?} must error, got {other:?}"),
            }
        }
        // An explicit builder count wins over whatever the env says —
        // the validated path is the one that reads the env.
        assert_eq!(
            Engine::builder()
                .shards(3)
                .build()
                .unwrap()
                .default_shards(),
            3
        );
    }

    #[test]
    fn nf2_slow_us_env_values_are_validated() {
        // Hermetic: the parser is exercised with explicit strings so the
        // test never mutates the process environment other tests read.
        assert_eq!(super::parse_slow_env(None).unwrap(), None);
        assert_eq!(super::parse_slow_env(Some("250")).unwrap(), Some(250));
        assert_eq!(super::parse_slow_env(Some(" 0 ")).unwrap(), Some(0));
        for garbage in ["", "abc", "-3", "1.5", "4x"] {
            match super::parse_slow_env(Some(garbage)) {
                Err(QueryError::Semantic(msg)) => assert!(msg.contains("NF2_SLOW_US"), "{msg}"),
                other => panic!("NF2_SLOW_US={garbage:?} must error, got {other:?}"),
            }
        }
        // An explicit builder threshold wins over whatever the env says.
        assert_eq!(
            Engine::builder()
                .slow_statement_threshold(9)
                .build()
                .unwrap()
                .slow_statement_us(),
            Some(9)
        );
    }

    #[test]
    fn nf2_group_commit_env_values_are_validated() {
        // Hermetic: the parser is exercised with explicit strings so the
        // test never mutates the process environment other tests read.
        assert_eq!(super::parse_group_commit_env(None).unwrap(), 0);
        assert_eq!(super::parse_group_commit_env(Some("150")).unwrap(), 150);
        assert_eq!(super::parse_group_commit_env(Some(" 0 ")).unwrap(), 0);
        for garbage in ["", "abc", "-3", "1.5", "4x"] {
            match super::parse_group_commit_env(Some(garbage)) {
                Err(QueryError::Semantic(msg)) => {
                    assert!(msg.contains("NF2_GROUP_COMMIT_US"), "{msg}")
                }
                other => panic!("NF2_GROUP_COMMIT_US={garbage:?} must error, got {other:?}"),
            }
        }
        // An explicit builder window wins over whatever the env says.
        let engine = Engine::builder().group_commit(75).build().unwrap();
        assert_eq!(engine.group_commit_us(), 75);
        // Tables created through the engine inherit the window — both
        // the DDL path and attach_table.
        engine
            .session()
            .run("CREATE TABLE sc (Student, Course)")
            .unwrap();
        assert_eq!(engine.table("sc").unwrap().group_commit_us(), 75);
        let bulk = NfTable::bulk_load_strs(
            "bk",
            &["A", "B"],
            vec![vec!["a", "b"]],
            nf2_core::NestOrder::identity(2),
            engine.dict().clone(),
        )
        .unwrap();
        engine.attach_table(bulk).unwrap();
        assert_eq!(engine.table("bk").unwrap().group_commit_us(), 75);
    }

    #[test]
    fn write_path_histograms_surface_in_engine_metrics() {
        let dir = std::env::temp_dir().join("nf2_engine_write_metrics");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::builder()
            .data_dir(&dir)
            .wal_autoflush(true)
            .build()
            .unwrap();
        let mut session = engine.session();
        session
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1');",
            )
            .unwrap();
        let snap = engine.metrics();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| *h)
        };
        let group = hist("wal.group.size").expect("group-size histogram registered");
        assert!(group.count >= 1, "autoflush recorded at least one group");
        assert!(group.sum >= 2, "both inserted rows became durable");
        let waits = hist("table.sc.lock_wait.us").expect("lock-wait histogram registered");
        // Single-threaded writers never contend, so the series exists
        // but records nothing — exactly the uncontended fast path.
        assert_eq!(waits.count, 0, "no contention, no recorded waits");
    }

    #[test]
    fn metrics_export_merges_statement_and_table_series() {
        let engine = seeded_engine();
        engine.session().run("SELECT COUNT(*) FROM sc").unwrap();
        let snap = engine.metrics();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        let hist = |name: &str| snap.histograms.iter().find(|(n, _)| n == name);
        // Statement latency series by kind, fed by Session::execute.
        let (_, select) = hist("stmt.select.us").expect("select histogram");
        assert!(select.count >= 1, "the COUNT(*) select was recorded");
        let (_, insert) = hist("stmt.insert.us").expect("insert histogram");
        assert!(insert.count >= 1, "the seeding INSERT was recorded");
        assert!(hist("stmt.parse.us").is_some());
        assert!(hist("plan.build.us").is_some());
        // Table series from the storage counters.
        assert_eq!(counter("table.sc.inserts"), Some(3));
        assert!(counter("table.sc.epoch_installs").unwrap_or(0) >= 1);
        assert!(counter("table.sc.snapshot_pins").unwrap_or(0) >= 1);
        // Both render paths accept the merged snapshot.
        assert!(snap.to_text().contains("table.sc.inserts = 3"));
        assert!(snap.to_json().contains("\"table.sc.inserts\":3"));
    }

    #[test]
    fn subscriber_sees_lifecycle_and_slow_events() {
        let ring = Arc::new(nf2_obs::RingBufferSink::new(256));
        let engine = Engine::builder()
            .subscriber(ring.clone())
            .slow_statement_threshold(0) // everything is "slow"
            .build()
            .unwrap();
        let mut session = engine.session();
        session
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');
                 CREATE TABLE cp (Course, Prof);
                 INSERT INTO cp VALUES ('c1','p1'), ('c2','p2');",
            )
            .unwrap();
        // The Prof conjunct is pushable below the join, so the optimizer
        // must apply (and report) at least one rule.
        session
            .run("SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        let events = ring.events().join("\n");
        assert!(events.contains("stmt.parse{"), "{events}");
        assert!(events.contains("plan.build{"), "{events}");
        assert!(events.contains("plan.optimize{"), "{events}");
        assert!(events.contains("plan.compile{"), "{events}");
        assert!(
            events.contains("optimizer.rule{rule="),
            "the projected+filtered select must fire at least one rule: {events}"
        );
        assert!(events.contains("work_delta="), "{events}");
        assert!(events.contains("stmt.execute{kind=select"), "{events}");
        assert!(events.contains("stmt.slow{kind=select"), "{events}");
        // The slow counter advanced (threshold 0 catches every statement).
        let snap = engine.metrics();
        let slow = snap
            .counters
            .iter()
            .find(|(n, _)| n == "stmt.slow.count")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        assert!(slow >= 5, "2 CREATEs + 2 INSERTs + SELECT, got {slow}");
    }

    #[test]
    fn metrics_kill_switch_stops_statement_series() {
        let engine = seeded_engine();
        engine.obs().set_metrics_enabled(false);
        let before = engine
            .metrics()
            .histograms
            .iter()
            .find(|(n, _)| n == "stmt.select.us")
            .map(|(_, h)| h.count)
            .unwrap_or(0);
        engine.session().run("SELECT COUNT(*) FROM sc").unwrap();
        let after = engine
            .metrics()
            .histograms
            .iter()
            .find(|(n, _)| n == "stmt.select.us")
            .map(|(_, h)| h.count)
            .unwrap_or(0);
        assert_eq!(before, after, "disabled metrics must not record");
    }

    #[test]
    fn ddl_bumps_epoch() {
        let engine = seeded_engine();
        let epoch = engine.ddl_epoch();
        engine.session().run("CREATE TABLE t2 (A)").unwrap();
        assert_eq!(engine.ddl_epoch(), epoch + 1);
        engine.session().run("DROP TABLE t2").unwrap();
        assert_eq!(engine.ddl_epoch(), epoch + 2);
        // Mutations do not.
        engine
            .session()
            .run("INSERT INTO sc VALUES ('s9','c9')")
            .unwrap();
        assert_eq!(engine.ddl_epoch(), epoch + 2);
    }

    #[test]
    fn sessions_share_engine_state() {
        let engine = seeded_engine();
        engine
            .session()
            .run("INSERT INTO sc VALUES ('s3','c3')")
            .unwrap();
        let mut s2 = engine.session();
        match s2.run("SELECT COUNT(*) FROM sc").unwrap() {
            Output::Count(n) => assert_eq!(n, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!s2.in_transaction());
    }

    #[test]
    fn attach_table_registers_bulk_loads() {
        let engine = Engine::new();
        let table = NfTable::bulk_load_strs(
            "bulk",
            &["A", "B"],
            vec![vec!["a1", "b1"], vec!["a2", "b1"]],
            NestOrder::identity(2),
            engine.dict().clone(),
        )
        .unwrap();
        engine.attach_table(table).unwrap();
        assert_eq!(engine.ddl_epoch(), 1);
        let mut session = engine.session();
        match session.run("SELECT COUNT(*) FROM bulk").unwrap() {
            Output::Count(n) => assert_eq!(n, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Duplicate names are rejected.
        let dup = NfTable::create(
            "bulk",
            &["A"],
            NestOrder::identity(1),
            engine.dict().clone(),
        )
        .unwrap();
        assert!(matches!(
            engine.attach_table(dup),
            Err(QueryError::TableExists(_))
        ));
    }

    #[test]
    fn executing_unbound_statements_is_rejected() {
        let engine = seeded_engine();
        let mut session = engine.session();
        let err = session.run("SELECT * FROM sc WHERE Student = ?");
        assert!(matches!(err, Err(QueryError::Unbound { count: 1 })));
        assert!(session.run("INSERT INTO sc VALUES (?, 'c9')").is_err());
    }

    #[test]
    fn session_query_streams_selects_only() {
        let engine = seeded_engine();
        let session = engine.session();
        let cursor = session
            .query("SELECT * FROM sc WHERE Student = 's1'")
            .unwrap();
        let tuples: Vec<_> = cursor.collect();
        assert_eq!(tuples.iter().map(|t| t.expansion_count()).sum::<u128>(), 2);
        assert!(session.query("SHOW sc").is_err());
        assert!(session.query("SELECT * FROM ghost").is_err());
        // Placeholders are rejected with the dedicated variant, pointing
        // the caller at prepare().
        assert!(matches!(
            session.query("SELECT * FROM sc WHERE Student = ?"),
            Err(QueryError::Unbound { count: 1 })
        ));
    }

    #[test]
    fn rollback_refreshes_the_merged_relation_cache() {
        // Regression: on a multi-shard table, the compensating undo
        // mutations a ROLLBACK replays must invalidate the lazily-merged
        // relation() cache like any forward mutation — reading inside
        // the transaction (which fills the cache with mid-txn state)
        // must not leave a stale merge behind after the rollback.
        let engine = Engine::builder().shards(4).build().unwrap();
        let mut session = engine.session();
        session
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');",
            )
            .unwrap();
        let before = session.engine().table("sc").unwrap().relation();
        session.run("BEGIN").unwrap();
        session
            .run("INSERT INTO sc VALUES ('s9','c9'), ('s9','c1')")
            .unwrap();
        session
            .run("UPDATE sc SET Course = 'c7' WHERE Student = 's1'")
            .unwrap();
        session.run("DELETE FROM sc WHERE Student = 's2'").unwrap();
        // Fill the merged cache with the mid-transaction state.
        let inside = session.engine().table("sc").unwrap().relation();
        assert_ne!(inside, before, "txn state visible inside the txn");
        session.run("ROLLBACK").unwrap();
        let t = session.engine().table("sc").unwrap();
        assert_eq!(
            t.relation(),
            before,
            "relation() after ROLLBACK must re-merge, not serve the \
             mid-transaction cache"
        );
        // And the served form is the exact canonical form of its rows.
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(*t.relation(), fresh);
    }

    #[test]
    fn checkpoint_requires_data_dir() {
        let engine = seeded_engine();
        assert!(matches!(engine.checkpoint(), Err(QueryError::Semantic(_))));
    }

    #[test]
    fn partial_statement_failures_stay_undoable() {
        let engine = seeded_engine();
        let mut session = engine.session();
        let before = session.engine().table("sc").unwrap().relation();
        session.run("BEGIN").unwrap();
        // Row 1 lands, row 2 fails the arity check mid-statement.
        let err = session.run("INSERT INTO sc VALUES ('x9','y9'), ('only-one')");
        assert!(err.is_err());
        assert!(
            session.engine().table("sc").unwrap().flat_count() > before.flat_count(),
            "the partial row did land"
        );
        // ROLLBACK must know about the partially-applied statement.
        session.run("ROLLBACK").unwrap();
        assert_eq!(session.engine().table("sc").unwrap().relation(), before);
    }

    #[test]
    fn rollback_autoflushes_compensating_mutations() {
        let dir = std::env::temp_dir().join("nf2_engine_rollback_wal");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::builder()
            .data_dir(&dir)
            .wal_autoflush(true)
            .build()
            .unwrap();
        let mut session = engine.session();
        session.run("CREATE TABLE t (A, B)").unwrap();
        session.run("BEGIN").unwrap();
        session.run("INSERT INTO t VALUES ('a','b')").unwrap();
        let after_insert = std::fs::metadata(dir.join("t.wal")).unwrap().len();
        assert!(after_insert > 0, "autoflush persisted the insert");
        session.run("ROLLBACK").unwrap();
        let after_rollback = std::fs::metadata(dir.join("t.wal")).unwrap().len();
        assert!(
            after_rollback > after_insert,
            "the compensating delete must reach the on-disk WAL \
             ({after_insert} -> {after_rollback} bytes), or a crash would \
             replay only the rolled-back insert"
        );
    }

    #[test]
    fn data_dir_checkpoint_and_autoflush_roundtrip() {
        let dir = std::env::temp_dir().join("nf2_engine_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::builder()
            .data_dir(&dir)
            .wal_autoflush(true)
            .build()
            .unwrap();
        {
            let mut session = engine.session();
            session
                .run_script(
                    "CREATE TABLE sc (Student, Course);
                     INSERT INTO sc VALUES ('s1','c1'), ('s2','c1');",
                )
                .unwrap();
        }
        engine.checkpoint().unwrap();
        {
            let mut session = engine.session();
            // Autoflush writes the WAL after each mutation.
            session.run("INSERT INTO sc VALUES ('s3','c2')").unwrap();
        }
        let wal = std::fs::read(dir.join("sc.wal")).unwrap();
        assert!(
            !wal.is_empty(),
            "autoflush persisted the post-checkpoint op"
        );
    }
}
