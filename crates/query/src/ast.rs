//! Abstract syntax of the NF² DML.

/// An equality predicate `attr = 'value'` (also used for `SET`
/// assignments in UPDATE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqPredicate {
    /// Attribute name.
    pub attr: String,
    /// String value (interned at execution time).
    pub value: String,
}

/// A WHERE-clause conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `attr = 'value'`.
    Eq(EqPredicate),
    /// `attr IN ('v1', 'v2', …)` — membership in a value list. Maps
    /// directly onto the algebra's box selection (a per-attribute value
    /// set), so an IN costs the same as an equality.
    In {
        /// Attribute name.
        attr: String,
        /// Allowed values.
        values: Vec<String>,
    },
}

impl Predicate {
    /// The constrained attribute.
    pub fn attr(&self) -> &str {
        match self {
            Predicate::Eq(p) => &p.attr,
            Predicate::In { attr, .. } => attr,
        }
    }

    /// The allowed values (one for equality).
    pub fn values(&self) -> Vec<&str> {
        match self {
            Predicate::Eq(p) => vec![p.value.as_str()],
            Predicate::In { values, .. } => values.iter().map(String::as_str).collect(),
        }
    }
}

/// Projection target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// Explicit attribute list.
    Attrs(Vec<String>),
    /// `SELECT COUNT(*)` — flat-row count of the result (`|R*|`).
    CountStar,
    /// `SELECT COUNT(DISTINCT attr)` — distinct values of one attribute.
    CountDistinct(String),
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (a, b, c) [NEST ORDER (x, y, z)]`
    ///
    /// The nest order lists attributes in application order (first listed
    /// nested first); defaults to declaration order.
    CreateTable {
        /// Table name.
        name: String,
        /// Attribute names.
        attrs: Vec<String>,
        /// Optional nest order (attribute names, application order).
        nest_order: Option<Vec<String>>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES ('a','b'), ('c','d')`
    Insert {
        /// Table name.
        table: String,
        /// Rows of string values.
        rows: Vec<Vec<String>>,
    },
    /// `DELETE FROM name WHERE a='x' AND b IN ('y','z')`
    ///
    /// Deletes every flat tuple matching the conjunction; an empty WHERE
    /// clause deletes everything.
    Delete {
        /// Table name.
        table: String,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// `SELECT a, b FROM name [JOIN t1 [JOIN t2 …]] [WHERE …]`
    Select {
        /// Projection list (attributes or an aggregate).
        projection: Projection,
        /// Table name.
        table: String,
        /// Further tables, natural-joined left to right on shared
        /// attribute names before selection/projection.
        joins: Vec<String>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// `NEST name ON attr` — ad-hoc query returning the nested relation.
    Nest {
        /// Table name.
        table: String,
        /// Attribute to nest on.
        attr: String,
    },
    /// `UNNEST name ON attr` — ad-hoc query returning the unnested
    /// relation.
    Unnest {
        /// Table name.
        table: String,
        /// Attribute to unnest.
        attr: String,
    },
    /// `SHOW name` — render the stored NFR.
    Show {
        /// Table name.
        table: String,
        /// Whether to render the flat realization `R*` instead
        /// (`SHOW FLAT name`).
        flat: bool,
    },
    /// `UPDATE name SET a='x' [, b='y'] [WHERE …]`
    ///
    /// Rewrites every matching flat tuple: delete + insert through the §4
    /// maintenance, so the canonical form is preserved throughout.
    Update {
        /// Table name.
        table: String,
        /// `attr = value` assignments.
        assignments: Vec<EqPredicate>,
        /// Conjunctive predicates selecting the rows to rewrite.
        predicates: Vec<Predicate>,
    },
    /// `TABLES` — list known tables.
    Tables,
    /// `STATS name` — report the table's realization-view numbers:
    /// NF² tuples vs flat rows (compression), accumulated §4 maintenance
    /// costs, and lookup probe counters.
    Stats {
        /// Table name.
        table: String,
    },
    /// `BEGIN` — open a transaction: subsequent row mutations are undo-
    /// logged until COMMIT or ROLLBACK. DDL is rejected inside one.
    Begin,
    /// `COMMIT` — close the transaction, discarding the undo log.
    Commit,
    /// `ROLLBACK` — undo every row mutation since BEGIN, in reverse
    /// order, through the same §4 maintenance the forward path used.
    Rollback,
    /// `EXPLAIN [OPTIMIZED] SELECT …` — show the algebra plan without
    /// executing it; `OPTIMIZED` additionally runs the rule-based
    /// rewriter and prints the applied rules and cost estimates.
    Explain {
        /// The SELECT being explained.
        inner: Box<Statement>,
        /// Whether to run and report the optimizer.
        optimized: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_comparable() {
        let a = Statement::Show {
            table: "t".into(),
            flat: false,
        };
        let b = Statement::Show {
            table: "t".into(),
            flat: false,
        };
        assert_eq!(a, b);
        let c = Statement::Show {
            table: "t".into(),
            flat: true,
        };
        assert_ne!(a, c);
    }

    #[test]
    fn predicates_carry_attr_and_value() {
        let p = EqPredicate {
            attr: "Student".into(),
            value: "s1".into(),
        };
        assert_eq!(p.attr, "Student");
        assert_eq!(p.value, "s1");
    }

    #[test]
    fn predicate_accessors_unify_eq_and_in() {
        let eq = Predicate::Eq(EqPredicate {
            attr: "A".into(),
            value: "x".into(),
        });
        assert_eq!(eq.attr(), "A");
        assert_eq!(eq.values(), vec!["x"]);
        let inp = Predicate::In {
            attr: "B".into(),
            values: vec!["y".into(), "z".into()],
        };
        assert_eq!(inp.attr(), "B");
        assert_eq!(inp.values(), vec!["y", "z"]);
    }

    #[test]
    fn projection_variants() {
        assert_ne!(Projection::CountStar, Projection::All);
        assert_eq!(
            Projection::CountDistinct("A".into()),
            Projection::CountDistinct("A".into())
        );
    }
}
