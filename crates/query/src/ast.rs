//! Abstract syntax of the NF² DML.
//!
//! Every literal position in the grammar holds a [`Value`], which is
//! either an inline string literal or a `?` parameter placeholder bound
//! later through a prepared statement. [`Statement`] implements
//! [`std::fmt::Display`] as a SQL printer whose output re-parses to the
//! same tree (property-tested), which is what makes plans, logs and
//! prepared-statement templates round-trippable.

use std::fmt;

/// A literal position in a statement: an inline string or a positional
/// `?` parameter (0-based, numbered left to right in the statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An inline string literal.
    Lit(String),
    /// The `n`-th `?` placeholder, bound at execute time.
    Param(usize),
}

impl Value {
    /// The literal string, or `None` for an unbound parameter.
    pub fn as_lit(&self) -> Option<&str> {
        match self {
            Value::Lit(s) => Some(s),
            Value::Param(_) => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Lit(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Lit(s)
    }
}

impl fmt::Display for Value {
    /// SQL form: `'literal'` (with `''` escaping) or `?`.
    ///
    /// Placeholders print as bare `?` — their index is positional in
    /// SQL. See [`Statement`]'s `Display` impl for the round-trip
    /// precondition this implies.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Lit(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Param(_) => write!(f, "?"),
        }
    }
}

/// An equality pair `attr = value` (a WHERE conjunct or a `SET`
/// assignment in UPDATE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqPredicate {
    /// Attribute name.
    pub attr: String,
    /// String value (interned at execution time) or parameter.
    pub value: Value,
}

/// A WHERE-clause conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `attr = 'value'`.
    Eq(EqPredicate),
    /// `attr IN ('v1', 'v2', …)` — membership in a value list. Maps
    /// directly onto the algebra's box selection (a per-attribute value
    /// set), so an IN costs the same as an equality.
    In {
        /// Attribute name.
        attr: String,
        /// Allowed values.
        values: Vec<Value>,
    },
}

impl Predicate {
    /// The constrained attribute.
    pub fn attr(&self) -> &str {
        match self {
            Predicate::Eq(p) => &p.attr,
            Predicate::In { attr, .. } => attr,
        }
    }

    /// The allowed value slots (one for equality), literal or parameter.
    pub fn value_slots(&self) -> Vec<&Value> {
        match self {
            Predicate::Eq(p) => vec![&p.value],
            Predicate::In { values, .. } => values.iter().collect(),
        }
    }

    /// The allowed literal values (one for equality).
    ///
    /// # Panics
    ///
    /// If any slot is an unbound `?` parameter — callers must bind the
    /// statement first (the executor rejects unbound statements before
    /// reaching this).
    pub fn values(&self) -> Vec<&str> {
        self.value_slots()
            .into_iter()
            .map(|v| v.as_lit().expect("unbound parameter in predicate"))
            .collect()
    }
}

/// `ORDER BY` direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderDir {
    /// Ascending (the default, as in SQL).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

/// One `attr [ASC|DESC]` key of an ORDER BY list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The attribute ordered on (must be in the result schema).
    pub attr: String,
    /// Direction; defaults to [`OrderDir::Asc`] when unwritten.
    pub dir: OrderDir,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.attr)?;
        if self.dir == OrderDir::Desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// An `ORDER BY attr [ASC|DESC] [, attr [ASC|DESC] …]` tail on a
/// SELECT — one or more keys, compared lexicographically left to right.
///
/// NF² result tuples carry *sets*; a tuple ranks on each key by the
/// extreme member of its `attr` component under the direction (its
/// minimum for `ASC`, maximum for `DESC`), values compared by their
/// string form; later keys break earlier keys' ties. Full ties keep the
/// pipeline's order (stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// The keys, leftmost most significant. Never empty.
    pub keys: Vec<OrderKey>,
}

impl OrderBy {
    /// A one-key ORDER BY (the common case; most tests use it).
    pub fn single(attr: impl Into<String>, dir: OrderDir) -> Self {
        OrderBy {
            keys: vec![OrderKey {
                attr: attr.into(),
                dir,
            }],
        }
    }
}

impl fmt::Display for OrderBy {
    /// SQL form; `ASC` is the parse default and stays implicit, so the
    /// round-trip re-parses to the same tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORDER BY ")?;
        for (i, key) in self.keys.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{key}")?;
        }
        Ok(())
    }
}

/// Projection target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// Explicit attribute list.
    Attrs(Vec<String>),
    /// `SELECT COUNT(*)` — flat-row count of the result (`|R*|`).
    CountStar,
    /// `SELECT COUNT(DISTINCT attr)` — distinct values of one attribute.
    CountDistinct(String),
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::All => write!(f, "*"),
            Projection::Attrs(attrs) => write!(f, "{}", attrs.join(", ")),
            Projection::CountStar => write!(f, "COUNT(*)"),
            Projection::CountDistinct(a) => write!(f, "COUNT(DISTINCT {a})"),
        }
    }
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (a, b, c) [NEST ORDER (x, y, z)]`
    ///
    /// The nest order lists attributes in application order (first listed
    /// nested first); defaults to declaration order.
    CreateTable {
        /// Table name.
        name: String,
        /// Attribute names.
        attrs: Vec<String>,
        /// Optional nest order (attribute names, application order).
        nest_order: Option<Vec<String>>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES ('a','b'), ('c',?)`
    Insert {
        /// Table name.
        table: String,
        /// Rows of values (literals or parameters).
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM name WHERE a='x' AND b IN ('y','z')`
    ///
    /// Deletes every flat tuple matching the conjunction; an empty WHERE
    /// clause deletes everything.
    Delete {
        /// Table name.
        table: String,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// `SELECT a, b FROM name [JOIN t1 [JOIN t2 …]] [WHERE …]
    /// [ORDER BY x [ASC|DESC]] [LIMIT n]`
    Select {
        /// Projection list (attributes or an aggregate).
        projection: Projection,
        /// Table name.
        table: String,
        /// Further tables, natural-joined left to right on shared
        /// attribute names before selection/projection.
        joins: Vec<String>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
        /// `ORDER BY attr [ASC|DESC]`: sorts the result stream. With a
        /// `LIMIT n` the two fold into one streaming **top-k** operator
        /// (a bounded heap retaining ≤ n tuples); alone it is a blocking
        /// sort. Aggregate projections ignore it — their one logical
        /// value has no order.
        order_by: Option<OrderBy>,
        /// `LIMIT n`: stop the cursor pipeline after `n` NF² tuples —
        /// upstream operators stop being pulled, so a satisfied limit
        /// never scans the rest of its inputs. As in SQL, without an
        /// `ORDER BY` *which* prefix is returned is unspecified (it
        /// follows physical tuple order, which varies with the table's
        /// shard layout); with one, it is the top-k prefix of the
        /// ordered stream. Aggregate projections ignore the limit: they
        /// produce one logical value, which a row limit cannot truncate.
        limit: Option<usize>,
    },
    /// `NEST name ON attr` — ad-hoc query returning the nested relation.
    Nest {
        /// Table name.
        table: String,
        /// Attribute to nest on.
        attr: String,
    },
    /// `UNNEST name ON attr` — ad-hoc query returning the unnested
    /// relation.
    Unnest {
        /// Table name.
        table: String,
        /// Attribute to unnest.
        attr: String,
    },
    /// `SHOW name` — render the stored NFR.
    Show {
        /// Table name.
        table: String,
        /// Whether to render the flat realization `R*` instead
        /// (`SHOW FLAT name`).
        flat: bool,
    },
    /// `UPDATE name SET a='x' [, b='y'] [WHERE …]`
    ///
    /// Rewrites every matching flat tuple: delete + insert through the §4
    /// maintenance, so the canonical form is preserved throughout.
    Update {
        /// Table name.
        table: String,
        /// `attr = value` assignments.
        assignments: Vec<EqPredicate>,
        /// Conjunctive predicates selecting the rows to rewrite.
        predicates: Vec<Predicate>,
    },
    /// `TABLES` — list known tables.
    Tables,
    /// `STATS name` — report the table's realization-view numbers:
    /// NF² tuples vs flat rows (compression), accumulated §4 maintenance
    /// costs, and lookup probe counters.
    Stats {
        /// Table name.
        table: String,
    },
    /// `BEGIN` — open a transaction: subsequent row mutations are undo-
    /// logged until COMMIT or ROLLBACK. DDL is rejected inside one.
    Begin,
    /// `COMMIT` — close the transaction, discarding the undo log.
    Commit,
    /// `ROLLBACK` — undo every row mutation since BEGIN, in reverse
    /// order, through the same §4 maintenance the forward path used.
    Rollback,
    /// `EXPLAIN [VERIFY] [OPTIMIZED] [ANALYZE] SELECT …` — show the
    /// algebra plan (with its cost estimate); `OPTIMIZED` additionally
    /// runs the rule-based rewriter and prints the applied rules and the
    /// optimized plan's estimate; `VERIFY` runs the static plan checker
    /// and appends its verdict (useful in release builds, where the
    /// rewrite-soundness gate is off unless `NF2_VERIFY` is set);
    /// `ANALYZE` **executes** the statement and annotates each physical
    /// operator with its actual rows and inclusive wall time. The flags
    /// compose and may appear in any order after `EXPLAIN`.
    Explain {
        /// The SELECT being explained.
        inner: Box<Statement>,
        /// Whether to run and report the optimizer.
        optimized: bool,
        /// Whether to run and report the static plan checker.
        verify: bool,
        /// Whether to execute and report per-operator actuals.
        analyze: bool,
    },
}

/// Binding a parameter list to a statement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// Number of parameters the statement declares.
    pub expected: usize,
    /// Number of values supplied.
    pub got: usize,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "statement declares {} parameter(s), {} value(s) bound",
            self.expected, self.got
        )
    }
}

impl std::error::Error for BindError {}

impl Statement {
    /// Number of `?` parameters the statement declares (highest index
    /// plus one; the parser always numbers them densely left to right).
    pub fn param_count(&self) -> usize {
        let mut max: Option<usize> = None;
        self.for_each_value(&mut |v| {
            if let Value::Param(i) = v {
                max = Some(max.map_or(*i, |m: usize| m.max(*i)));
            }
        });
        max.map_or(0, |m| m + 1)
    }

    /// Substitutes every `?` parameter with the corresponding literal,
    /// returning a fully-bound copy of the statement.
    pub fn bind(&self, params: &[&str]) -> Result<Statement, BindError> {
        let expected = self.param_count();
        if params.len() != expected {
            return Err(BindError {
                expected,
                got: params.len(),
            });
        }
        let mut bound = self.clone();
        bound.for_each_value_mut(&mut |v| {
            if let Value::Param(i) = v {
                *v = Value::Lit(params[*i].to_owned());
            }
        });
        Ok(bound)
    }

    /// Visits every [`Value`] position, in the statement's textual order.
    fn for_each_value(&self, f: &mut impl FnMut(&Value)) {
        match self {
            Statement::Insert { rows, .. } => rows.iter().flatten().for_each(&mut *f),
            Statement::Delete { predicates, .. } | Statement::Select { predicates, .. } => {
                for p in predicates {
                    p.value_slots().into_iter().for_each(&mut *f);
                }
            }
            Statement::Update {
                assignments,
                predicates,
                ..
            } => {
                for a in assignments {
                    f(&a.value);
                }
                for p in predicates {
                    p.value_slots().into_iter().for_each(&mut *f);
                }
            }
            Statement::Explain { inner, .. } => inner.for_each_value(f),
            _ => {}
        }
    }

    /// Mutable [`Value`] visitor, same order as [`Self::for_each_value`].
    fn for_each_value_mut(&mut self, f: &mut impl FnMut(&mut Value)) {
        match self {
            Statement::Insert { rows, .. } => rows.iter_mut().flatten().for_each(&mut *f),
            Statement::Delete { predicates, .. } | Statement::Select { predicates, .. } => {
                for p in predicates {
                    predicate_values_mut(p, f);
                }
            }
            Statement::Update {
                assignments,
                predicates,
                ..
            } => {
                for a in assignments {
                    f(&mut a.value);
                }
                for p in predicates {
                    predicate_values_mut(p, f);
                }
            }
            Statement::Explain { inner, .. } => inner.for_each_value_mut(f),
            _ => {}
        }
    }
}

fn predicate_values_mut(p: &mut Predicate, f: &mut impl FnMut(&mut Value)) {
    match p {
        Predicate::Eq(e) => f(&mut e.value),
        Predicate::In { values, .. } => values.iter_mut().for_each(f),
    }
}

fn write_where(f: &mut fmt::Formatter<'_>, predicates: &[Predicate]) -> fmt::Result {
    for (i, p) in predicates.iter().enumerate() {
        write!(f, "{} ", if i == 0 { " WHERE" } else { " AND" })?;
        match p {
            Predicate::Eq(e) => write!(f, "{} = {}", e.attr, e.value)?,
            Predicate::In { attr, values } => {
                let vals: Vec<String> = values.iter().map(Value::to_string).collect();
                write!(f, "{attr} IN ({})", vals.join(", "))?;
            }
        }
    }
    Ok(())
}

impl fmt::Display for Statement {
    /// Prints the statement as SQL that re-parses to the same tree.
    ///
    /// Precondition: `?` placeholders must be numbered densely in
    /// textual order (`Param(0)` first, then `Param(1)`, …) — which is
    /// exactly what the parser produces and what [`Statement::bind`]
    /// preserves. A hand-built tree that numbers placeholders out of
    /// textual order renders as bare `?`s and re-parses with the
    /// indices reassigned to textual order, i.e. to a *different* tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable {
                name,
                attrs,
                nest_order,
            } => {
                write!(f, "CREATE TABLE {name} ({})", attrs.join(", "))?;
                if let Some(order) = nest_order {
                    write!(f, " NEST ORDER ({})", order.join(", "))?;
                }
                Ok(())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::Insert { table, rows } => {
                write!(f, "INSERT INTO {table} VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let vals: Vec<String> = row.iter().map(Value::to_string).collect();
                    write!(f, "({})", vals.join(", "))?;
                }
                Ok(())
            }
            Statement::Delete { table, predicates } => {
                write!(f, "DELETE FROM {table}")?;
                write_where(f, predicates)
            }
            Statement::Select {
                projection,
                table,
                joins,
                predicates,
                order_by,
                limit,
            } => {
                write!(f, "SELECT {projection} FROM {table}")?;
                for j in joins {
                    write!(f, " JOIN {j}")?;
                }
                write_where(f, predicates)?;
                if let Some(order) = order_by {
                    write!(f, " {order}")?;
                }
                if let Some(n) = limit {
                    write!(f, " LIMIT {n}")?;
                }
                Ok(())
            }
            Statement::Nest { table, attr } => write!(f, "NEST {table} ON {attr}"),
            Statement::Unnest { table, attr } => write!(f, "UNNEST {table} ON {attr}"),
            Statement::Show { table, flat } => {
                write!(f, "SHOW {}{table}", if *flat { "FLAT " } else { "" })
            }
            Statement::Update {
                table,
                assignments,
                predicates,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, a) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} = {}", a.attr, a.value)?;
                }
                write_where(f, predicates)
            }
            Statement::Tables => write!(f, "TABLES"),
            Statement::Stats { table } => write!(f, "STATS {table}"),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
            Statement::Explain {
                inner,
                optimized,
                verify,
                analyze,
            } => {
                write!(
                    f,
                    "EXPLAIN {}{}{}{inner}",
                    if *verify { "VERIFY " } else { "" },
                    if *optimized { "OPTIMIZED " } else { "" },
                    if *analyze { "ANALYZE " } else { "" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_comparable() {
        let a = Statement::Show {
            table: "t".into(),
            flat: false,
        };
        let b = Statement::Show {
            table: "t".into(),
            flat: false,
        };
        assert_eq!(a, b);
        let c = Statement::Show {
            table: "t".into(),
            flat: true,
        };
        assert_ne!(a, c);
    }

    #[test]
    fn predicates_carry_attr_and_value() {
        let p = EqPredicate {
            attr: "Student".into(),
            value: "s1".into(),
        };
        assert_eq!(p.attr, "Student");
        assert_eq!(p.value, Value::Lit("s1".into()));
    }

    #[test]
    fn predicate_accessors_unify_eq_and_in() {
        let eq = Predicate::Eq(EqPredicate {
            attr: "A".into(),
            value: "x".into(),
        });
        assert_eq!(eq.attr(), "A");
        assert_eq!(eq.values(), vec!["x"]);
        let inp = Predicate::In {
            attr: "B".into(),
            values: vec!["y".into(), "z".into()],
        };
        assert_eq!(inp.attr(), "B");
        assert_eq!(inp.values(), vec!["y", "z"]);
    }

    #[test]
    fn projection_variants() {
        assert_ne!(Projection::CountStar, Projection::All);
        assert_eq!(
            Projection::CountDistinct("A".into()),
            Projection::CountDistinct("A".into())
        );
    }

    #[test]
    fn param_count_and_bind() {
        let stmt = Statement::Select {
            projection: Projection::All,
            table: "t".into(),
            joins: vec![],
            predicates: vec![
                Predicate::Eq(EqPredicate {
                    attr: "A".into(),
                    value: Value::Param(0),
                }),
                Predicate::In {
                    attr: "B".into(),
                    values: vec!["lit".into(), Value::Param(1)],
                },
            ],
            order_by: None,
            limit: None,
        };
        assert_eq!(stmt.param_count(), 2);
        assert_eq!(
            stmt.bind(&["x"]).unwrap_err(),
            BindError {
                expected: 2,
                got: 1
            }
        );
        let bound = stmt.bind(&["x", "y"]).unwrap();
        assert_eq!(bound.param_count(), 0);
        match bound {
            Statement::Select { predicates, .. } => {
                assert_eq!(predicates[0].values(), vec!["x"]);
                assert_eq!(predicates[1].values(), vec!["lit", "y"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(Statement::Tables.param_count(), 0);
        assert!(Statement::Tables.bind(&[]).is_ok());
    }

    #[test]
    fn bind_reaches_inserts_updates_and_explain() {
        let stmt = Statement::Insert {
            table: "t".into(),
            rows: vec![
                vec![Value::Param(0), "b".into()],
                vec![Value::Param(1), Value::Param(2)],
            ],
        };
        assert_eq!(stmt.param_count(), 3);
        let bound = stmt.bind(&["p", "q", "r"]).unwrap();
        assert_eq!(
            bound.to_string(),
            "INSERT INTO t VALUES ('p', 'b'), ('q', 'r')"
        );

        let upd = Statement::Update {
            table: "t".into(),
            assignments: vec![EqPredicate {
                attr: "A".into(),
                value: Value::Param(0),
            }],
            predicates: vec![Predicate::Eq(EqPredicate {
                attr: "B".into(),
                value: Value::Param(1),
            })],
        };
        assert_eq!(upd.param_count(), 2);
        let explained = Statement::Explain {
            inner: Box::new(upd),
            optimized: false,
            verify: false,
            analyze: false,
        };
        assert_eq!(explained.param_count(), 2);
    }

    #[test]
    #[should_panic(expected = "unbound parameter")]
    fn values_panics_on_unbound_param() {
        let p = Predicate::Eq(EqPredicate {
            attr: "A".into(),
            value: Value::Param(0),
        });
        let _ = p.values();
    }

    #[test]
    fn display_prints_sql() {
        let stmt = Statement::Select {
            projection: Projection::Attrs(vec!["Course".into()]),
            table: "sc".into(),
            joins: vec!["cp".into()],
            predicates: vec![
                Predicate::Eq(EqPredicate {
                    attr: "Student".into(),
                    value: Value::Param(0),
                }),
                Predicate::In {
                    attr: "Prof".into(),
                    values: vec!["it's".into()],
                },
            ],
            order_by: None,
            limit: None,
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT Course FROM sc JOIN cp WHERE Student = ? AND Prof IN ('it''s')"
        );
        assert_eq!(
            Statement::Show {
                table: "t".into(),
                flat: true
            }
            .to_string(),
            "SHOW FLAT t"
        );
    }
}
