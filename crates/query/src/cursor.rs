//! Streaming result cursors.
//!
//! A [`Cursor`] is what SELECT execution hands back on the new API: an
//! iterator of NF² tuples pulled through `nf2-algebra`'s streaming
//! evaluator over the engine's tables. Tuples surface as soon as the
//! scan reaches them — the first tuple of a full-table SELECT costs one
//! probe, not a materialized result relation (the storage scans count
//! probes, which is how the tests pin this down). Only inherently
//! blocking operators (projection's duplicate elimination, nest,
//! difference, a join's build side) buffer anything.

use std::sync::Arc;

use nf2_algebra::stream::RelStream;
use nf2_core::relation::NfRelation;
use nf2_core::schema::Schema;
use nf2_core::tuple::{FlatTuple, TupleView};

use crate::exec::QueryError;

/// A streaming SELECT result: yields [`TupleView`]s (shared zero-copy
/// views into pinned shard snapshots whenever no operator had to
/// rewrite them) in pipeline order.
///
/// The cursor *owns* the shard-version snapshots it streams over (the
/// statement pinned them at build time), so it is `'static`: it keeps
/// yielding the epoch-consistent result even while concurrent writers
/// publish new shard versions — or drop the table outright.
#[derive(Debug)]
pub struct Cursor<'s> {
    stream: RelStream<'s>,
}

impl<'s> Cursor<'s> {
    /// Wraps a stream (crate-internal: cursors are produced by sessions
    /// and prepared statements).
    pub(crate) fn new(stream: RelStream<'s>) -> Self {
        Cursor { stream }
    }

    /// The result schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.stream.schema()
    }

    /// Adapts the cursor into a stream of **flat** (1NF) rows: each NF²
    /// tuple is expanded as it arrives, one rectangle at a time.
    pub fn flat_rows(self) -> FlatRows<'s> {
        FlatRows {
            stream: self.stream,
            current: Vec::new().into_iter(),
        }
    }

    /// Drains the cursor into a materialized relation (what the
    /// compatibility `run()` path does before rendering).
    pub fn into_relation(self) -> Result<NfRelation, QueryError> {
        Ok(self.stream.into_relation()?)
    }

    /// Counts the flat rows (`|R*|`) the cursor represents without
    /// materializing any of them.
    pub fn flat_count(self) -> u128 {
        self.stream.flat_count()
    }
}

impl<'s> Iterator for Cursor<'s> {
    type Item = TupleView<'s>;

    fn next(&mut self) -> Option<TupleView<'s>> {
        self.stream.next()
    }
}

/// Flat-row adapter over a [`Cursor`]; see [`Cursor::flat_rows`].
///
/// Buffers exactly one NF² tuple's expansion at a time.
#[derive(Debug)]
pub struct FlatRows<'s> {
    stream: RelStream<'s>,
    current: std::vec::IntoIter<FlatTuple>,
}

impl Iterator for FlatRows<'_> {
    type Item = FlatTuple;

    fn next(&mut self) -> Option<FlatTuple> {
        loop {
            if let Some(row) = self.current.next() {
                return Some(row);
            }
            let tuple = self.stream.next()?;
            self.current = tuple
                .as_tuple()
                .expand()
                .collect::<Vec<FlatTuple>>()
                .into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn engine() -> Engine {
        let engine = Engine::new();
        engine
            .session()
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2');",
            )
            .unwrap();
        engine
    }

    #[test]
    fn cursor_yields_zero_copy_tuples_on_full_scans() {
        let engine = engine();
        let session = engine.session();
        let mut cursor = session.query("SELECT * FROM sc").unwrap();
        assert_eq!(
            cursor.schema().attr_names().collect::<Vec<_>>(),
            vec!["Student", "Course"]
        );
        let first = cursor.next().unwrap();
        assert!(
            first.is_zero_copy(),
            "full scans share snapshot tuples, no clone"
        );
    }

    #[test]
    fn cursor_survives_concurrent_mutation_and_drop() {
        let engine = engine();
        let mut cursor = engine.session().query("SELECT * FROM sc").unwrap();
        let first = cursor.next().unwrap().into_owned();
        // Mutate and then drop the table out from under the cursor: the
        // pinned snapshot keeps the statement's epoch alive.
        engine
            .session()
            .run_script("DELETE FROM sc WHERE Student = 's1'; DROP TABLE sc;")
            .unwrap();
        // The 3 flat rows canonicalize to 2 NF² tuples; one was already
        // consumed, and the pinned epoch still sees the other.
        let rest: Vec<_> = cursor.collect();
        assert_eq!(rest.len(), 1, "snapshot unaffected by delete + drop");
        assert_eq!(first.arity(), 2);
    }

    #[test]
    fn flat_rows_expand_tuple_by_tuple() {
        let engine = engine();
        let session = engine.session();
        let rows: Vec<FlatTuple> = session
            .query("SELECT * FROM sc")
            .unwrap()
            .flat_rows()
            .collect();
        assert_eq!(rows.len(), 3);
        let counted = session.query("SELECT * FROM sc").unwrap().flat_count();
        assert_eq!(counted, 3);
    }

    #[test]
    fn cursor_matches_materialized_relation() {
        let engine = engine();
        let collected = {
            let session = engine.session();
            session
                .query("SELECT Course FROM sc WHERE Student = 's1'")
                .unwrap()
                .into_relation()
                .unwrap()
        };
        let mut session = engine.session();
        match session
            .run("SELECT Course FROM sc WHERE Student = 's1'")
            .unwrap()
        {
            crate::exec::Output::Relation { relation, .. } => assert_eq!(relation, collected),
            other => panic!("unexpected {other:?}"),
        }
    }
}
