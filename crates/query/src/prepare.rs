//! Prepared statements: parse once, plan once, execute many times.
//!
//! A [`Prepared`] handle owns the parsed statement and, for SELECTs, a
//! `SelectPlan`: the optimized algebra expression in which **every**
//! predicate value — inline literal or `?` parameter — is a late-bound
//! *slot*. Executing binds the slots against the dictionary of the
//! moment and streams the result, so:
//!
//! * the lexer, parser and rule-based optimizer run exactly once per
//!   statement text (the hot loop pays only dictionary lookups and
//!   evaluation — see bench experiment E17);
//! * literals are resolved at execute time, exactly like the one-shot
//!   path — a value interned *after* `prepare()` is still found;
//! * DDL invalidates nothing by hand: plans remember the engine's
//!   [`ddl_epoch`](crate::Engine::ddl_epoch) and transparently re-plan
//!   when the catalog changed underneath them.
//!
//! Slots ride through the optimizer as reserved atom ids (the dictionary
//! interns atoms densely from zero and would need ~4 billion distinct
//! values to collide), which keeps `nf2-algebra` entirely ignorant of
//! parameters.

use std::sync::Arc;

use nf2_algebra::optimize::Applied;
use nf2_algebra::stream::{
    filter_box, lazy_iter, AtomCmp, JoinLayout, OpTally, RelStream, SortDir, TopKStats, TupleIter,
    TupleOrder,
};
use nf2_algebra::{estimate, optimize, optimize_observed, Expr, SchemaCatalog};
use nf2_core::display::render_nf;
use nf2_core::relation::NfRelation;
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::{NfTuple, TupleView, ValueSet};
use nf2_core::value::Atom;
use nf2_obs::Stopwatch;
use nf2_storage::{NfTable, SharedDictionary, TableSnapshot};

use crate::ast::{OrderBy, OrderDir, Predicate, Projection, Statement, Value};
use crate::cursor::Cursor;
use crate::engine::{explain_expr, Engine, Session};
use crate::exec::{Output, QueryError};

/// A parameter value bound to one `?` placeholder at execute time.
///
/// Anything string-like binds (`Param` implements `From<&str>` /
/// `From<String>`, and the execute methods accept any `AsRef<str>`, so
/// `&["s1"]` works directly). Use [`NO_PARAMS`] for statements without
/// placeholders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param(String);

impl Param {
    /// The bound string value.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Param {
    fn from(s: &str) -> Self {
        Param(s.to_owned())
    }
}

impl From<String> for Param {
    fn from(s: String) -> Self {
        Param(s)
    }
}

impl AsRef<str> for Param {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// The empty parameter list, for executing parameterless prepared
/// statements without type-annotating an empty slice.
pub const NO_PARAMS: &[Param] = &[];

/// First atom id reserved for plan slots (the top 2²⁴ ids). The
/// dictionary interns ids densely from 0, so real data would need ~4.3
/// billion distinct values to reach this range; [`SelectPlan::build`]
/// checks both sides anyway — the dictionary must stay below the range
/// and a statement may not declare more value slots than the range
/// holds.
pub(crate) const SLOT_BASE: u32 = u32::MAX - 0x00FF_FFFF;

/// What a slot resolves to at bind time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Slot {
    /// An inline literal: looked up in the dictionary per execution.
    Lit(String),
    /// The `n`-th `?` parameter.
    Param(usize),
}

/// One node of a compiled physical pipeline. Table indices, attribute
/// ids, join layouts and output schemas are resolved **once**, at
/// prepare time, so an execution only binds values and flows tuples —
/// no name resolution, schema construction or plan traversal per call.
#[derive(Debug, Clone)]
pub(crate) enum Phys {
    /// Counted scan of the `n`-th table of [`SelectPlan::tables`].
    Scan {
        /// Index into the plan's table list.
        table: usize,
        /// **Shard pruning**: bound-store indices of the enclosing
        /// selection's conjuncts on this table's shard-routing attribute
        /// (the outermost nest attribute `P(n−1)`). At execute time the
        /// bound value sets resolve to a shard set through the table's
        /// router and the scan touches only those shards — an equality
        /// on the outer attribute over `N` hash shards scans exactly
        /// one. Empty for unsharded tables or plans without a routable
        /// conjunct (full scan).
        prune: Vec<usize>,
        /// **Zone-map segment skipping**: `(attribute id, bound-store
        /// index)` for *every* conjunct of the enclosing selection —
        /// not just routing-attribute ones. At execute time the bound
        /// value sets are checked against each sorted segment's
        /// per-attribute min/max codes and non-overlapping segments are
        /// skipped wholesale (falling back to full shard slices while a
        /// shard's segments are stale). Sound for any conjunct: a
        /// skipped segment provably holds no atom of the bound set on
        /// that attribute, and the enclosing selection re-checks every
        /// surviving tuple anyway.
        zone: Vec<(usize, usize)>,
    },
    /// Box selection; constraint `k` reads its per-call atoms from the
    /// bound-value store at `flat` index `k`.
    Select {
        /// Upstream node.
        input: Box<Phys>,
        /// `(attribute id, bound-store index)` conjuncts.
        constraints: Vec<(usize, usize)>,
    },
    /// Blocking projection (delegates to [`nf2_algebra::project`]).
    Project {
        /// Upstream node.
        input: Box<Phys>,
        /// The upstream schema (for materialization).
        input_schema: Arc<Schema>,
        /// Kept attribute ids, in output order.
        attrs: Arc<Vec<usize>>,
    },
    /// Natural join: streamed probe (left), materialized build (right).
    Join {
        /// Probe side.
        left: Box<Phys>,
        /// Build side.
        right: Box<Phys>,
        /// The shared/appended attribute layout and output schema —
        /// computed by (and executed through) the algebra's
        /// [`JoinLayout`], so the join semantics live in one place.
        layout: Arc<JoinLayout>,
    },
}

/// A compiled pipeline plus its output schema.
#[derive(Debug, Clone)]
pub(crate) struct PhysPlan {
    pub(crate) root: Phys,
    pub(crate) schema: Arc<Schema>,
}

/// Number of nodes in a physical subtree — the stride of the structural
/// pre-order numbering `EXPLAIN ANALYZE` uses to address tallies (node
/// `i`'s first child is `i + 1`; a join's right child is
/// `i + 1 + phys_size(left)`). Both the executor and the renderer walk
/// this same numbering, so an operator's tally is position-stable no
/// matter in which order the pipeline was constructed.
pub(crate) fn phys_size(node: &Phys) -> usize {
    match node {
        Phys::Scan { .. } => 1,
        Phys::Select { input, .. } | Phys::Project { input, .. } => 1 + phys_size(input),
        Phys::Join { left, right, .. } => 1 + phys_size(left) + phys_size(right),
    }
}

/// `EXPLAIN ANALYZE` instrumentation for one execution: one shared
/// [`OpTally`] per physical node (pre-order; shared across a merge
/// path's per-shard pipelines, which sum into the same tallies), plus
/// the order-operator actuals the cursor records when it picks a path.
#[derive(Debug)]
pub(crate) struct AnalyzeExec {
    /// Per-node actuals, indexed by the [`phys_size`] pre-order.
    pub(crate) tallies: Vec<Arc<OpTally>>,
    /// The order path the cursor actually took (the dynamic decision —
    /// a merge-eligible plan can still fall back at run time).
    pub(crate) order_path: Option<String>,
    /// Heap counters when the top-k path ran.
    pub(crate) topk: Option<Arc<TopKStats>>,
    /// Whether binding found a statically-empty result (no pipeline ran).
    pub(crate) statically_empty: bool,
}

/// A pull-pipeline wrapper recording per-operator actuals: every `next`
/// is clocked (inclusive — a parent's time contains its children, like
/// `EXPLAIN ANALYZE` in PostgreSQL) and every yielded tuple counts one
/// row. Only constructed on analyze runs; plain execution never pays
/// the per-tuple stopwatch.
struct Timed<I> {
    inner: I,
    tally: Arc<OpTally>,
}

impl<I: Iterator> Iterator for Timed<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let sw = Stopwatch::start();
        let item = self.inner.next();
        self.tally.add_nanos(sw.elapsed_nanos());
        if item.is_some() {
            self.tally.add_row();
        }
        item
    }
}

/// Everything an `EXPLAIN ANALYZE` render needs: the per-operator
/// actuals plus the drained result size and total wall time.
#[derive(Debug)]
pub(crate) struct AnalyzeReport {
    pub(crate) exec: AnalyzeExec,
    pub(crate) result_rows: u64,
    pub(crate) total_nanos: u64,
}

impl PhysPlan {
    /// Compiles an optimized planner expression. `Ok(None)` when the
    /// expression contains a node shape the physical executor does not
    /// cover (execution then falls back to [`eval_stream`]).
    ///
    /// The `flat` constraint numbering follows the same traversal as
    /// `SelectPlan::bind_flat`: each `SelectBox`'s own entries first,
    /// then its input; joins left before right.
    fn compile(
        expr: &Expr,
        tables: &[String],
        engine: &Engine,
        next_flat: &mut usize,
    ) -> Result<Option<PhysPlan>, QueryError> {
        match expr {
            Expr::Rel(name) => {
                let Some(idx) = tables.iter().position(|t| t == name) else {
                    return Ok(None);
                };
                Ok(Some(PhysPlan {
                    root: Phys::Scan {
                        table: idx,
                        prune: Vec::new(),
                        zone: Vec::new(),
                    },
                    schema: engine.table(name)?.schema().clone(),
                }))
            }
            Expr::SelectBox { input, constraints } => {
                let own_base = *next_flat;
                *next_flat += constraints.len();
                let Some(mut child) = Self::compile(input, tables, engine, next_flat)? else {
                    return Ok(None);
                };
                let resolved = constraints
                    .iter()
                    .enumerate()
                    .map(|(k, (name, _))| Ok((child.schema.attr_id(name)?, own_base + k)))
                    .collect::<Result<Vec<_>, nf2_core::NfError>>()?;
                // Selection directly over a sharded scan: conjuncts on
                // the routing attribute `P(n−1)` become shard pruners —
                // the optimizer's pushdown already parks each conjunct
                // on its owning table, so this catches pushed-down
                // equalities and IN lists on every join side.
                if let Phys::Scan { table, prune, zone } = &mut child.root {
                    let t = engine.table(&tables[*table])?;
                    if t.shard_count() > 1 {
                        if let Some(route_attr) = t.routing().attr() {
                            for (attr, flat) in &resolved {
                                if *attr == route_attr {
                                    prune.push(*flat);
                                }
                            }
                        }
                    }
                    // Every conjunct — routing or not — also becomes a
                    // zone-map check against segment min/max bounds.
                    zone.extend(resolved.iter().copied());
                }
                Ok(Some(PhysPlan {
                    root: Phys::Select {
                        input: Box::new(child.root),
                        constraints: resolved,
                    },
                    schema: child.schema,
                }))
            }
            Expr::Project { input, attrs } => {
                let Some(child) = Self::compile(input, tables, engine, next_flat)? else {
                    return Ok(None);
                };
                let ids = attrs
                    .iter()
                    .map(|n| child.schema.attr_id(n))
                    .collect::<Result<Vec<_>, _>>()?;
                let names = ids
                    .iter()
                    .map(|&a| child.schema.attr_name(a))
                    .collect::<Result<Vec<_>, _>>()?;
                // Mirror ops::project's output schema exactly.
                let schema = Schema::new(format!("{}_proj", child.schema.name()), &names)?;
                Ok(Some(PhysPlan {
                    root: Phys::Project {
                        input: Box::new(child.root),
                        input_schema: child.schema,
                        attrs: Arc::new(ids),
                    },
                    schema,
                }))
            }
            Expr::Join(l, r) => {
                let Some(left) = Self::compile(l, tables, engine, next_flat)? else {
                    return Ok(None);
                };
                let Some(right) = Self::compile(r, tables, engine, next_flat)? else {
                    return Ok(None);
                };
                let layout = Arc::new(JoinLayout::of(&left.schema, &right.schema)?);
                let schema = layout.schema.clone();
                Ok(Some(PhysPlan {
                    root: Phys::Join {
                        left: Box::new(left.root),
                        right: Box::new(right.root),
                        layout,
                    },
                    schema,
                }))
            }
            // Nest/Unnest/Union/… never come out of the planner today;
            // let the general evaluator handle them if a rewrite mode
            // ever introduces one.
            _ => Ok(None),
        }
    }

    /// Builds the per-call pipeline over the resolved tables and bound
    /// constraint values.
    ///
    /// The pipeline is **pull-driven end to end**: blocking stages (a
    /// join's build side, projection's duplicate elimination) defer
    /// their materialization behind [`lazy_iter`] until the first tuple
    /// is demanded, so a consumer that never pulls — `LIMIT 0`, a
    /// dropped cursor — pays zero scan probes on every plan shape.
    ///
    /// The pipeline reads **pinned snapshots**, not live tables: every
    /// scan streams the shard versions the snapshot holds, so the
    /// result is the canonical form as of the statement's epoch no
    /// matter what concurrent writers install meanwhile — and the
    /// returned iterator is `'static`, owning its shard `Arc`s.
    /// Streams the pipeline, with an optional shard restriction: when
    /// `only_shard` is set, every scan touches at most that shard (in
    /// addition to its prune/zone filtering). The k-way merge path
    /// builds one such pipeline per shard so each stays in segment
    /// order. With `tallies` (one per node, [`phys_size`] pre-order)
    /// every operator's output is wrapped in a [`Timed`] counter for
    /// `EXPLAIN ANALYZE`.
    fn stream_restricted(
        &self,
        tables: &[TableSnapshot],
        bound: &[ValueSet],
        only_shard: Option<usize>,
        tallies: Option<&[Arc<OpTally>]>,
    ) -> TupleIter<'static> {
        fn go(
            node: &Phys,
            tables: &[TableSnapshot],
            bound: &[ValueSet],
            only_shard: Option<usize>,
            tallies: Option<&[Arc<OpTally>]>,
            idx: usize,
        ) -> TupleIter<'static> {
            let raw: TupleIter<'static> = match node {
                Phys::Scan { table, prune, zone } => {
                    let t = &tables[*table];
                    if prune.is_empty() && zone.is_empty() && only_shard.is_none() {
                        Box::new(t.scan())
                    } else {
                        // Every pruning conjunct must be satisfied, so the
                        // scannable shards are the intersection of the
                        // per-conjunct shard sets (each sorted ascending).
                        let mut shards: Vec<usize> = if prune.is_empty() {
                            (0..t.shard_count()).collect()
                        } else {
                            let mut sets = prune
                                .iter()
                                .map(|&flat| t.routing().shards_for_values(bound[flat].as_slice()));
                            let mut shards = sets.next().expect("prune list is non-empty");
                            for s in sets {
                                shards.retain(|idx| s.contains(idx));
                            }
                            shards
                        };
                        if let Some(only) = only_shard {
                            shards.retain(|&s| s == only);
                        }
                        let zones: Vec<(usize, ValueSet)> = zone
                            .iter()
                            .map(|&(attr, flat)| (attr, bound[flat].clone()))
                            .collect();
                        Box::new(t.scan_shards_zoned(&shards, &zones))
                    }
                }
                Phys::Select { input, constraints } => {
                    let resolved: Vec<(usize, ValueSet)> = constraints
                        .iter()
                        .map(|&(attr, flat)| (attr, bound[flat].clone()))
                        .collect();
                    Box::new(
                        go(input, tables, bound, only_shard, tallies, idx + 1)
                            .filter_map(move |t| filter_box(t, &resolved)),
                    )
                }
                Phys::Project {
                    input,
                    input_schema,
                    attrs,
                } => {
                    let upstream = go(input, tables, bound, only_shard, tallies, idx + 1);
                    let input_schema = input_schema.clone();
                    let attrs = attrs.clone();
                    lazy_iter(move || {
                        let tuples: Vec<NfTuple> = upstream.map(TupleView::into_owned).collect();
                        let rel = NfRelation::from_disjoint_tuples(input_schema, tuples)
                            .expect("pipeline tuples match their schema");
                        let out =
                            nf2_algebra::project(&rel, &attrs, &NestOrder::identity(attrs.len()))
                                .expect("attribute ids resolved at compile time");
                        Box::new(out.into_tuples().into_iter().map(TupleView::Owned))
                    })
                }
                Phys::Join {
                    left,
                    right,
                    layout,
                } => {
                    // Pre-order numbering: left child directly follows the
                    // join, right child follows the whole left subtree.
                    let left_idx = idx + 1;
                    let right_idx = idx + 1 + phys_size(left);
                    let build_side = go(right, tables, bound, only_shard, tallies, right_idx);
                    let probe_side = go(left, tables, bound, only_shard, tallies, left_idx);
                    let layout = layout.clone();
                    lazy_iter(move || {
                        let build: Vec<TupleView<'static>> = build_side.collect();
                        Box::new(probe_side.flat_map(move |l| {
                            let mut out = Vec::new();
                            layout.probe(&l, &build, &mut out);
                            out
                        }))
                    })
                }
            };
            match tallies {
                Some(ts) => Box::new(Timed {
                    inner: raw,
                    tally: Arc::clone(&ts[idx]),
                }),
                None => raw,
            }
        }
        go(&self.root, tables, bound, only_shard, tallies, 0)
    }
}

/// Static half of the k-way-merge eligibility check (see
/// [`SelectPlan::merge`]). `attrs` are the resolved output-schema ids of
/// the ORDER BY keys; with `Projection::All` and a scan/select-only
/// pipeline those coincide with the table's own attribute ids, which is
/// what makes the nest-order comparison below meaningful.
pub(crate) fn merge_eligible(t: &NfTable, ob: &OrderBy, attrs: &[usize], root: &Phys) -> bool {
    fn scan_select_only(node: &Phys, constrained: &mut Vec<usize>) -> bool {
        match node {
            Phys::Scan { .. } => true,
            Phys::Select { input, constraints } => {
                constrained.extend(constraints.iter().map(|&(attr, _)| attr));
                scan_select_only(input, constrained)
            }
            Phys::Project { .. } | Phys::Join { .. } => false,
        }
    }
    if !ob.keys.iter().all(|k| k.dir == OrderDir::Asc) {
        // A segment stream ascends by each key's *minimum* set member;
        // descending needs the maximum, which the stored order does not
        // provide.
        return false;
    }
    // Kernel rebuilds sort each shard by (min P(n−1), min P(n−2), …) —
    // the nest order reversed — so only a prefix of that sequence is a
    // streamable sort key.
    let nest = t.order();
    let arity = t.schema().arity();
    if attrs.len() > arity
        || !attrs
            .iter()
            .enumerate()
            .all(|(i, &a)| a == nest.attr_at(arity - 1 - i))
    {
        return false;
    }
    let mut constrained = Vec::new();
    if !scan_select_only(root, &mut constrained) {
        return false;
    }
    // A conjunct on a key attribute narrows that component's value set,
    // which can change its minimum — the stored order no longer ranks
    // the filtered tuples.
    attrs.iter().all(|a| !constrained.contains(a))
}

/// One [`TupleOrder`] per ORDER BY key, all sharing a single dictionary
/// snapshot: values order by their *resolved strings*, not their
/// intern-order atom ids — `ORDER BY Student` means lexicographic,
/// whatever order values arrived in.
fn resolved_orders(dict: &SharedDictionary, ob: &OrderBy, attrs: &[usize]) -> Vec<TupleOrder> {
    let snap = dict.snapshot();
    let cmp: AtomCmp = Arc::new(move |a, b| snap.resolve(a).cmp(&snap.resolve(b)));
    ob.keys
        .iter()
        .zip(attrs)
        .map(|(k, &attr)| {
            let dir = match k.dir {
                OrderDir::Asc => SortDir::Asc,
                OrderDir::Desc => SortDir::Desc,
            };
            TupleOrder::with_cmp(attr, dir, cmp.clone())
        })
        .collect()
}

/// Per-scan pruning effect for EXPLAIN, computable only once every
/// parameter is bound: how many shards the routing conjuncts leave, and
/// how many segments the zone maps skip in them (reported per shard).
fn scan_pruning_lines(
    node: &Phys,
    plan: &SelectPlan,
    engine: &Engine,
    bound: &[ValueSet],
    out: &mut Vec<String>,
) -> Result<(), QueryError> {
    match node {
        Phys::Scan { table, prune, zone } => {
            if prune.is_empty() && zone.is_empty() {
                return Ok(());
            }
            let name = &plan.tables[*table];
            // Pin a snapshot like execution would: the reported shard and
            // segment effects (and the epoch shown) describe one
            // consistent version even while writers install new ones.
            let t = engine.table(name)?.snapshot();
            let shards: Vec<usize> = if prune.is_empty() {
                (0..t.shard_count()).collect()
            } else {
                let mut sets = prune
                    .iter()
                    .map(|&flat| t.routing().shards_for_values(bound[flat].as_slice()));
                let mut shards = sets.next().expect("prune list is non-empty");
                for s in sets {
                    shards.retain(|idx| s.contains(idx));
                }
                shards
            };
            let mut line = format!(
                "{name}: {}/{} shard(s) @ snapshot epoch {}",
                shards.len(),
                t.shard_count(),
                t.epoch()
            );
            if !zone.is_empty() {
                let zones: Vec<(usize, ValueSet)> = zone
                    .iter()
                    .map(|&(attr, flat)| (attr, bound[flat].clone()))
                    .collect();
                let counts = t.zone_skip_counts(&shards, &zones);
                let skipped: usize = counts.iter().map(|&(k, _)| k).sum();
                let total: usize = counts.iter().map(|&(_, n)| n).sum();
                let per_shard: Vec<String> = shards
                    .iter()
                    .zip(&counts)
                    .map(|(s, &(k, n))| format!("s{s} {k}/{n}"))
                    .collect();
                line.push_str(&format!(
                    ", segments skipped {skipped}/{total} [{}]",
                    per_shard.join(", ")
                ));
            }
            out.push(line);
            Ok(())
        }
        Phys::Select { input, .. } | Phys::Project { input, .. } => {
            scan_pruning_lines(input, plan, engine, bound, out)
        }
        Phys::Join { left, right, .. } => {
            scan_pruning_lines(left, plan, engine, bound, out)?;
            scan_pruning_lines(right, plan, engine, bound, out)
        }
    }
}

/// A compiled SELECT: the optimized expression with late-bound value
/// slots, plus everything needed to execute or explain it.
#[derive(Debug, Clone)]
pub(crate) struct SelectPlan {
    /// The plan before optimization (EXPLAIN shows both).
    pub(crate) raw: Expr,
    /// The optimized plan template, values encoded as slot atoms.
    pub(crate) expr: Expr,
    /// The compiled physical pipeline (attr ids, join layouts, schemas
    /// resolved once). Mandatory: the planner and the structural rewrite
    /// rules only ever produce scan/select/project/join shapes, and
    /// [`SelectPlan::build`] fails loudly if that ever stops holding —
    /// a silently-degraded fallback would be worse than an error.
    pub(crate) phys: PhysPlan,
    /// Slot table: `Atom(SLOT_BASE + i)` ↔ `slots[i]`.
    pub(crate) slots: Vec<Slot>,
    /// The applied rewrites, in order (EXPLAIN / plan observability).
    pub(crate) trace: Vec<Applied>,
    pub(crate) projection: Projection,
    /// Every table the plan scans.
    pub(crate) tables: Vec<String>,
    /// Number of `?` parameters the plan expects.
    pub(crate) param_count: usize,
    /// `ORDER BY`: the clause plus each key attribute's id in the
    /// plan's **output** schema (resolved once at build time, one id
    /// per key, in clause order). With a limit the pair compiles to a
    /// streaming top-k (bounded heap); alone, to a blocking sort —
    /// unless [`Self::merge`] holds and the segments cooperate.
    pub(crate) order: Option<(OrderBy, Vec<usize>)>,
    /// Whether the plan is *statically* eligible for the streaming
    /// k-way segment merge: single table, no projection or join, every
    /// key ascending, the keys a prefix of the table's reversed nest
    /// order (the composite sort key of its segments), and no selection
    /// conjunct on any key attribute (narrowing a key's value set could
    /// change its ordering extreme). The cursor still checks the
    /// *dynamic* half — dictionary id-order and per-shard segment
    /// freshness — and falls back to the heap/sort path when either
    /// fails.
    pub(crate) merge: bool,
    /// `LIMIT n`: without an ORDER BY the cursor pipeline stops pulling
    /// after `n` NF² tuples, so upstream scans terminate early; with one
    /// it is the top-k bound.
    pub(crate) limit: Option<usize>,
}

impl SelectPlan {
    /// Plans and optimizes a SELECT against the engine's catalog.
    pub(crate) fn build(
        engine: &Engine,
        projection: Projection,
        table: String,
        joins: Vec<String>,
        predicates: &[Predicate],
        order_by: Option<OrderBy>,
        limit: Option<usize>,
    ) -> Result<Self, QueryError> {
        let _build_span = engine
            .obs()
            .span("plan.build")
            .observe(&engine.stmt_metrics().plan_build);
        if engine.dict().len() as u64 >= SLOT_BASE as u64 {
            return Err(QueryError::Semantic(
                "dictionary exhausted the slot-atom range".into(),
            ));
        }
        let slot_capacity = (u32::MAX - SLOT_BASE) as usize + 1;
        let slot_count: usize = predicates.iter().map(|p| p.value_slots().len()).sum();
        if slot_count > slot_capacity {
            return Err(QueryError::Semantic(format!(
                "statement declares {slot_count} predicate values; at most {slot_capacity} \
                 are supported per statement"
            )));
        }
        // Validate tables up front and register them with the catalog.
        let mut catalog = SchemaCatalog::new();
        let mut tables = vec![table.clone()];
        tables.extend(joins.iter().cloned());
        let mut expr = Expr::rel(&table);
        for name in &tables {
            let t = engine.table(name)?;
            catalog.insert(
                name.clone(),
                t.schema().attr_names().map(str::to_owned).collect(),
            );
        }
        for other in &joins {
            expr = Expr::Join(Box::new(expr), Box::new(Expr::rel(other)));
        }
        // Every predicate value becomes a slot, resolved per execution.
        let mut slots: Vec<Slot> = Vec::new();
        let mut param_count = 0usize;
        if !predicates.is_empty() {
            let mut constraints = Vec::with_capacity(predicates.len());
            for p in predicates {
                let mut atoms = Vec::new();
                for v in p.value_slots() {
                    let slot = match v {
                        Value::Lit(s) => Slot::Lit(s.clone()),
                        Value::Param(i) => {
                            param_count = param_count.max(i + 1);
                            Slot::Param(*i)
                        }
                    };
                    atoms.push(Atom(SLOT_BASE + slots.len() as u32));
                    slots.push(slot);
                }
                constraints.push((p.attr().to_owned(), atoms));
            }
            expr = Expr::SelectBox {
                input: Box::new(expr),
                constraints,
            };
        }
        // LIMIT and ORDER BY constrain *result* rows. Aggregates produce
        // one logical value, so a limit must never truncate the stream
        // feeding them (COUNT(*) ... LIMIT 1 is the full count, and must
        // not depend on the physical shard layout), and an order over
        // one value is vacuous — but the ordered attribute is still
        // validated against the pre-aggregate schema first, so a typo
        // errors identically whether or not the projection aggregates.
        let (order_by, limit) = match &projection {
            Projection::CountStar | Projection::CountDistinct(_) => {
                if let Some(ob) = &order_by {
                    let source_attrs = nf2_algebra::optimize::output_attrs(&expr, &catalog)?;
                    for key in &ob.keys {
                        if !source_attrs.contains(&key.attr) {
                            return Err(QueryError::Model(nf2_core::NfError::UnknownAttribute(
                                key.attr.clone(),
                            )));
                        }
                    }
                }
                (None, None)
            }
            _ => (order_by, limit),
        };
        match &projection {
            Projection::Attrs(attrs) => {
                expr = Expr::Project {
                    input: Box::new(expr),
                    attrs: attrs.clone(),
                };
            }
            Projection::CountDistinct(attr) => {
                expr = Expr::Project {
                    input: Box::new(expr),
                    attrs: vec![attr.clone()],
                };
            }
            Projection::All | Projection::CountStar => {}
        }
        let obs = engine.obs();
        let metrics = engine.stmt_metrics();
        let optimized = {
            let _span = obs
                .span("plan.optimize")
                .field("table", table.as_str())
                .observe(&metrics.plan_optimize);
            if obs.enabled() {
                // A subscriber is listening: report every applied rule
                // with its estimated-work delta (the DataTracks-style
                // per-rule reward trace). Costing runs only on this
                // path, so the silent default pays nothing for it.
                let sizes: std::collections::HashMap<String, usize> = tables
                    .iter()
                    .filter_map(|n| Some((n.clone(), engine.table(n).ok()?.tuple_count())))
                    .collect();
                optimize_observed(
                    &expr,
                    &catalog,
                    engine.rewrite_mode(),
                    &mut |rule, before, after| {
                        let wb = estimate(before, &sizes).total_work;
                        let wa = estimate(after, &sizes).total_work;
                        obs.event("optimizer.rule", || {
                            vec![
                                ("rule", rule.into()),
                                ("work_before", wb.into()),
                                ("work_after", wa.into()),
                                ("work_delta", (wa - wb).into()),
                            ]
                        });
                    },
                )
            } else {
                optimize(&expr, &catalog, engine.rewrite_mode())
            }
        };
        let phys = {
            let _span = obs.span("plan.compile").observe(&metrics.plan_compile);
            PhysPlan::compile(&optimized.expr, &tables, engine, &mut 0)?.ok_or_else(|| {
                QueryError::Semantic(
                    "internal error: the optimizer produced a plan shape outside \
                 scan/select/project/join"
                        .into(),
                )
            })?
        };
        // Every ORDER BY attribute must survive into the output schema
        // (ordering on a projected-away attribute is rejected here, at
        // prepare time, like any other unknown attribute).
        let order = match order_by {
            Some(ob) => {
                let attrs = ob
                    .keys
                    .iter()
                    .map(|k| phys.schema.attr_id(&k.attr))
                    .collect::<Result<Vec<_>, _>>()?;
                Some((ob, attrs))
            }
            None => None,
        };
        let merge = match (&order, &projection) {
            (Some((ob, attrs)), Projection::All) if tables.len() == 1 => {
                let t = engine.table(&tables[0])?;
                merge_eligible(&t, ob, attrs, &phys.root)
            }
            _ => false,
        };
        let plan = SelectPlan {
            raw: expr,
            expr: optimized.expr,
            phys,
            slots,
            trace: optimized.trace,
            projection,
            tables,
            param_count,
            order,
            merge,
            limit,
        };
        // Static plan verification (debug builds, or `NF2_VERIFY=1`):
        // the compiled pipeline must satisfy every physical contract —
        // any violation here is a planner bug, reported before the plan
        // can produce a wrong answer.
        if nf2_algebra::verify_enabled() {
            let _span = obs.span("plan.verify").observe(&metrics.plan_verify);
            crate::verify::check_plan(&plan, engine)
                .map_err(|v| QueryError::Verify(v.to_string()))?;
        }
        Ok(plan)
    }

    /// The projection the plan computes.
    pub(crate) fn projection(&self) -> &Projection {
        &self.projection
    }

    /// Binds slots straight into the flat constraint store the compiled
    /// pipeline reads — one template traversal, no tree mutation.
    /// `Ok(None)` means some conjunct has no known value at all: the
    /// result is statically empty (see [`Self::bind_in_place`] for why
    /// that propagates to an empty result). Store order matches
    /// [`PhysPlan::compile`]'s flat numbering.
    fn bind_flat<P: AsRef<str>>(
        &self,
        dict: &SharedDictionary,
        params: &[P],
    ) -> Result<Option<Vec<ValueSet>>, QueryError> {
        if params.len() != self.param_count {
            return Err(QueryError::ParamCount {
                expected: self.param_count,
                got: params.len(),
            });
        }
        fn walk<F: Fn(Atom) -> Option<Atom>>(
            template: &Expr,
            out: &mut Vec<ValueSet>,
            resolve: &F,
        ) -> bool {
            match template {
                Expr::SelectBox { input, constraints } => {
                    for (_, atoms) in constraints {
                        let vals: Vec<Atom> = atoms.iter().filter_map(|&a| resolve(a)).collect();
                        match ValueSet::new(vals) {
                            Some(set) => out.push(set),
                            None => return false, // unsatisfiable conjunct
                        }
                    }
                    walk(input, out, resolve)
                }
                Expr::Project { input, .. } => walk(input, out, resolve),
                Expr::Join(l, r) => walk(l, out, resolve) && walk(r, out, resolve),
                _ => true,
            }
        }
        let snap = dict.snapshot();
        let slots = &self.slots;
        let resolve = |atom: Atom| -> Option<Atom> {
            if atom.id() < SLOT_BASE {
                return Some(atom);
            }
            match &slots[(atom.id() - SLOT_BASE) as usize] {
                Slot::Lit(s) => snap.lookup(s),
                Slot::Param(i) => snap.lookup(params[*i].as_ref()),
            }
        };
        let mut out = Vec::new();
        Ok(walk(&self.expr, &mut out, &resolve).then_some(out))
    }

    /// Binds and streams the plan as a [`Cursor`] over **pinned
    /// snapshots** of the engine's tables: the cursor owns its shard
    /// versions (`'static`), takes no locks while streaming, and keeps
    /// yielding the statement-start state even if the engine mutates —
    /// or drops the tables — mid-stream. A statically-empty result
    /// yields an empty cursor carrying the plan's output schema.
    pub(crate) fn cursor<P: AsRef<str>>(
        &mut self,
        engine: &Engine,
        params: &[P],
    ) -> Result<Cursor<'static>, QueryError> {
        self.cursor_instrumented(engine, params, None)
    }

    /// One [`OpTally`] per physical operator, numbered in the same
    /// pre-order as [`crate::verify::render_phys`] walks the tree — so
    /// tally `i` annotates the `i`-th rendered line.
    pub(crate) fn analyze_exec(&self) -> AnalyzeExec {
        AnalyzeExec {
            tallies: (0..phys_size(&self.phys.root))
                .map(|_| Arc::new(OpTally::default()))
                .collect(),
            order_path: None,
            topk: None,
            statically_empty: false,
        }
    }

    /// [`Self::cursor`] with an optional `EXPLAIN ANALYZE` recorder:
    /// when `analyze` is set every operator's pulls are tallied (rows +
    /// inclusive nanos) and the chosen order path is noted.
    pub(crate) fn cursor_instrumented<P: AsRef<str>>(
        &mut self,
        engine: &Engine,
        params: &[P],
        mut analyze: Option<&mut AnalyzeExec>,
    ) -> Result<Cursor<'static>, QueryError> {
        // One template traversal binds the flat constraint store;
        // everything else was resolved at prepare time.
        let Some(bound) = self.bind_flat(engine.dict(), params)? else {
            // Statically empty: keep the plan's *output* schema, so a
            // cursor's shape does not depend on which value was bound.
            if let Some(a) = analyze.as_deref_mut() {
                a.statically_empty = true;
            }
            return Ok(Cursor::new(RelStream::empty(self.phys.schema.clone())));
        };
        let tallies: Option<Vec<Arc<OpTally>>> = analyze.as_deref().map(|a| a.tallies.clone());
        let tallies = tallies.as_deref();
        // Pin one snapshot per table, once, at statement start: the
        // whole pipeline — every shard scan, the merge's per-shard
        // streams, the join's build side — reads exactly these epochs.
        // Concurrent writers install new versions without disturbing us.
        let tables = self
            .tables
            .iter()
            .map(|n| engine.table(n).map(|t| t.snapshot()))
            .collect::<Result<Vec<_>, _>>()?;
        // Streaming k-way segment merge: the plan is statically
        // eligible (see [`merge_eligible`]) and the dynamic half holds —
        // the dictionary's atom ids still rank like resolved strings and
        // every shard's segments are fresh (tuple order is the kernel's
        // composite sort). Each shard then streams already-ordered and
        // the merge emits globally ordered tuples without sorting;
        // `LIMIT n` pulls ≈ n + shards tuples instead of the whole scan.
        if let Some((ob, attrs)) = &self.order {
            if self.merge && engine.dict().is_id_ordered() {
                let t = &tables[0];
                let fresh = (0..t.shard_count()).all(|s| t.shard_segments(s).is_fresh());
                if fresh {
                    let orders = resolved_orders(engine.dict(), ob, attrs);
                    let parts = (0..t.shard_count())
                        .map(|s| {
                            RelStream::new(
                                self.phys.schema.clone(),
                                // Per-shard pipelines share the same
                                // tallies: the Arcs sum across shards.
                                self.phys
                                    .stream_restricted(&tables, &bound, Some(s), tallies),
                            )
                        })
                        .collect();
                    if let Some(a) = analyze.as_deref_mut() {
                        a.order_path = Some(match self.limit {
                            Some(n) => format!("streaming k-way segment merge, limit {n}"),
                            None => "streaming k-way segment merge".to_owned(),
                        });
                    }
                    let merged = RelStream::merge_sorted(self.phys.schema.clone(), parts, orders);
                    let stream = match self.limit {
                        Some(n) => {
                            let schema = merged.schema().clone();
                            let limited: TupleIter<'static> = Box::new(merged.take(n));
                            RelStream::new(schema, limited)
                        }
                        None => merged,
                    };
                    return Ok(Cursor::new(stream));
                }
            }
        }
        let iter = self.phys.stream_restricted(&tables, &bound, None, tallies);
        let stream = RelStream::new(self.phys.schema.clone(), iter);
        let stream = match (&self.order, self.limit) {
            // ORDER BY + LIMIT fold into one streaming top-k: a bounded
            // heap pulls the pipeline exactly once and retains ≤ n
            // tuples — never a full sort's worth.
            // Bare ORDER BY falls back to a blocking (stable) sort.
            (Some((ob, attrs)), limit) => {
                let orders = resolved_orders(engine.dict(), ob, attrs);
                match limit {
                    Some(n) => match analyze.as_deref_mut() {
                        Some(a) => {
                            a.order_path = Some(format!("top-{n} bounded heap"));
                            let stats = Arc::new(TopKStats::default());
                            a.topk = Some(Arc::clone(&stats));
                            stream.top_k_by_with_stats(orders, n, stats)
                        }
                        None => stream.top_k_by(orders, n),
                    },
                    None => {
                        if let Some(a) = analyze {
                            a.order_path = Some("blocking sort".to_owned());
                        }
                        stream.sorted_by(orders)
                    }
                }
            }
            // Plain LIMIT rides the pull pipeline: `take` stops calling
            // upstream `next()` once satisfied, so scans terminate early
            // (the probe-counted cursor test pins this).
            (None, Some(n)) => {
                let schema = stream.schema().clone();
                let limited: TupleIter<'static> = Box::new(stream.take(n));
                RelStream::new(schema, limited)
            }
            (None, None) => stream,
        };
        Ok(Cursor::new(stream))
    }

    /// Renders the plan for EXPLAIN: the unoptimized tree with its cost
    /// estimate, plus (for `optimized`) the rewrite trace, the optimized
    /// tree and the estimate delta, plus (for `verify`) the static
    /// checker's verdict. `Ok(None)` when binding finds a
    /// statically-empty result.
    pub(crate) fn explain<P: AsRef<str>>(
        &self,
        engine: &Engine,
        params: &[P],
        optimized: bool,
        verify: bool,
    ) -> Result<Option<String>, QueryError> {
        self.explain_with(engine, params, optimized, verify, None)
    }

    /// `EXPLAIN ANALYZE`: executes the statement with per-operator
    /// tallies, drains the cursor, and renders the plan annotated with
    /// actual row counts and inclusive operator times. `Ok(None)` for a
    /// statically-empty result (nothing ran, so nothing to measure).
    pub(crate) fn explain_analyze<P: AsRef<str>>(
        &mut self,
        engine: &Engine,
        params: &[P],
        optimized: bool,
        verify: bool,
    ) -> Result<Option<String>, QueryError> {
        let mut exec = self.analyze_exec();
        let sw = Stopwatch::start();
        let cursor = self.cursor_instrumented(engine, params, Some(&mut exec))?;
        if exec.statically_empty {
            return Ok(None);
        }
        let result_rows = cursor.count() as u64;
        let report = AnalyzeReport {
            exec,
            result_rows,
            total_nanos: sw.elapsed_nanos(),
        };
        self.explain_with(engine, params, optimized, verify, Some(&report))
    }

    /// Shared renderer behind [`Self::explain`] (`analyzed: None`) and
    /// [`Self::explain_analyze`] (`analyzed` carries the actuals).
    fn explain_with<P: AsRef<str>>(
        &self,
        engine: &Engine,
        params: &[P],
        optimized: bool,
        verify: bool,
        analyzed: Option<&AnalyzeReport>,
    ) -> Result<Option<String>, QueryError> {
        // Both trees render from the template — literals as `'lit'`,
        // parameters as `?n` — so the text is identical to what
        // `Prepared::explain` shows for the cached plan. Binding is
        // still attempted (when every parameter is supplied) to detect
        // statically-empty results.
        let bound = if params.len() == self.param_count {
            match self.bind_flat(engine.dict(), params)? {
                Some(b) => Some(b),
                None => return Ok(None),
            }
        } else {
            None
        };
        let fmt_value = |a: Atom| -> String {
            if a.id() >= SLOT_BASE {
                match &self.slots[(a.id() - SLOT_BASE) as usize] {
                    Slot::Lit(s) => format!("'{s}'"),
                    Slot::Param(i) => format!("?{i}"),
                }
            } else {
                format!("{a:?}")
            }
        };
        let sizes: std::collections::HashMap<String, usize> = self
            .tables
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    engine.table(n).map(|t| t.tuple_count()).unwrap_or(0),
                )
            })
            .collect();
        let before = estimate(&self.raw, &sizes);
        let mut text = format!("plan:\n{}", explain_expr(&self.raw, 0, &fmt_value));
        if let Some((ob, _)) = &self.order {
            // The order rides outside the algebra tree (the §3 algebra
            // is ordered-set-free); report the physical operator chosen.
            // A merge-eligible plan reports the merge (the cursor can
            // still fall back at run time if the dictionary or segments
            // stop cooperating — eligibility here is the static half).
            let op = match analyzed.and_then(|r| r.exec.order_path.clone()) {
                // ANALYZE reports the path the cursor *actually* took
                // (merge eligibility has a dynamic half that can fall
                // back at run time).
                Some(actual) => actual,
                None => match (self.merge, self.limit) {
                    (true, Some(n)) => format!("streaming k-way segment merge, limit {n}"),
                    (true, None) => "streaming k-way segment merge".to_owned(),
                    (false, Some(n)) => format!("top-{n} bounded heap"),
                    (false, None) => "blocking sort".to_owned(),
                },
            };
            text.push_str(&format!("\norder: {ob} ({op})"));
            if let Some(stats) = analyzed.and_then(|r| r.exec.topk.as_ref()) {
                text.push_str(&format!(
                    " (actual pulled={} peak retained={})",
                    stats.pulled.load(std::sync::atomic::Ordering::Relaxed),
                    stats
                        .peak_retained
                        .load(std::sync::atomic::Ordering::Relaxed),
                ));
            }
        }
        text.push_str(&format!(
            "\nestimated work: {:.0} ({:.0} tuples out)",
            before.total_work, before.out_tuples
        ));
        if optimized {
            let after = estimate(&self.expr, &sizes);
            text.push_str("\nrewrites:");
            if self.trace.is_empty() {
                text.push_str("\n  (none applicable)");
            }
            for step in &self.trace {
                text.push_str(&format!("\n  [{}] {}", step.rule, step.result));
            }
            text.push_str(&format!(
                "\noptimized plan:\n{}",
                explain_expr(&self.expr, 0, &fmt_value)
            ));
            text.push_str(&format!(
                "\nestimated work: {:.0} -> {:.0}",
                before.total_work, after.total_work
            ));
        }
        match analyzed {
            Some(report) => {
                text.push_str(&format!(
                    "\nphysical:\n{}",
                    crate::verify::render_phys_analyzed(
                        &self.phys.root,
                        &self.tables,
                        Some(engine),
                        1,
                        &report.exec.tallies,
                        0,
                    )
                ));
                text.push_str(&format!(
                    "\nanalyze: {} row(s) out in {}",
                    report.result_rows,
                    nf2_obs::format_nanos(report.total_nanos)
                ));
            }
            None => text.push_str(&format!(
                "\nphysical:\n{}",
                crate::verify::render_phys(&self.phys.root, &self.tables, Some(engine), 1)
            )),
        }
        // With every parameter bound, the pruning effect is computable:
        // which shards the routing conjuncts leave, and how many
        // segments the zone maps skip in them.
        if let Some(bound) = &bound {
            let mut lines = Vec::new();
            scan_pruning_lines(&self.phys.root, self, engine, bound, &mut lines)?;
            if !lines.is_empty() {
                text.push_str("\npruning:");
                for line in lines {
                    text.push_str("\n  ");
                    text.push_str(&line);
                }
            }
        }
        if verify {
            text.push('\n');
            text.push_str(&crate::verify::verify_report(self, engine));
        }
        Ok(Some(text))
    }
}

/// Executes a bound select plan to a materialized [`Output`] — the
/// one-shot `run()`/`Database` semantics (aggregates count, everything
/// else renders a relation).
pub(crate) fn execute_select<P: AsRef<str>>(
    engine: &Engine,
    plan: &mut SelectPlan,
    params: &[P],
) -> Result<Output, QueryError> {
    let cursor = plan.cursor(engine, params)?;
    match plan.projection() {
        Projection::CountStar | Projection::CountDistinct(_) => {
            Ok(Output::Count(cursor.flat_count()))
        }
        _ => {
            let relation = cursor.into_relation()?;
            let rendered = render_nf(&relation, &engine.dict().snapshot());
            Ok(Output::Relation { relation, rendered })
        }
    }
}

/// A statement compiled against an [`Engine`]: parsed once, planned and
/// optimized once (SELECTs), executable any number of times with
/// per-call parameters.
///
/// Handles are owned values, independent of any session: keep them
/// across sessions of the same engine and they stay valid — a DDL change
/// underneath is detected through the engine's epoch and triggers a
/// transparent re-plan (which surfaces errors like a dropped table at
/// the next execution, same as re-preparing by hand).
#[derive(Debug)]
pub struct Prepared {
    sql: String,
    stmt: Statement,
    plan: Option<SelectPlan>,
    /// Which engine the plan was compiled against.
    engine_id: u64,
    /// That engine's DDL epoch at compile (or last re-plan) time.
    epoch: u64,
    param_count: usize,
}

impl Prepared {
    /// Parses `sql` (one statement) and plans it if it is a SELECT.
    pub(crate) fn compile(engine: &Engine, sql: &str) -> Result<Self, QueryError> {
        let stmt = engine.parse_traced(sql)?;
        let plan = Self::plan_of(engine, &stmt)?;
        Ok(Prepared {
            sql: sql.to_owned(),
            param_count: stmt.param_count(),
            stmt,
            plan,
            engine_id: engine.instance_id(),
            epoch: engine.ddl_epoch(),
        })
    }

    fn plan_of(engine: &Engine, stmt: &Statement) -> Result<Option<SelectPlan>, QueryError> {
        match stmt {
            Statement::Select {
                projection,
                table,
                joins,
                predicates,
                order_by,
                limit,
            } => Ok(Some(SelectPlan::build(
                engine,
                projection.clone(),
                table.clone(),
                joins.clone(),
                predicates,
                order_by.clone(),
                *limit,
            )?)),
            _ => Ok(None),
        }
    }

    /// The original statement text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of `?` parameters the statement declares.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Whether executing will stream a relation (the statement is a
    /// SELECT).
    pub fn is_query(&self) -> bool {
        self.plan.is_some()
    }

    /// Re-plans if DDL changed the catalog since this handle was
    /// compiled (or last revalidated).
    fn revalidate(&mut self, engine: &Engine) -> Result<(), QueryError> {
        if self.engine_id != engine.instance_id() || self.epoch != engine.ddl_epoch() {
            self.plan = Self::plan_of(engine, &self.stmt)?;
            self.engine_id = engine.instance_id();
            self.epoch = engine.ddl_epoch();
        }
        Ok(())
    }

    /// Executes a prepared SELECT, streaming the result as a [`Cursor`]
    /// over snapshots pinned at this call. Non-SELECT statements are
    /// rejected — use [`execute`](Self::execute).
    pub fn query<P: AsRef<str>>(
        &mut self,
        session: &Session<'_>,
        params: &[P],
    ) -> Result<Cursor<'static>, QueryError> {
        let engine = session.engine();
        self.revalidate(engine)?;
        let sql = &self.sql;
        let plan = self
            .plan
            .as_mut()
            .ok_or_else(|| QueryError::Semantic(format!("not a SELECT: {sql}")))?;
        plan.cursor(engine, params)
    }

    /// Executes the statement with the given parameters, materializing
    /// an [`Output`] (the same shape `Session::run` produces). SELECTs
    /// reuse the cached plan; mutations bind the parameters into the
    /// statement and run through the session (transactions and WAL
    /// autoflush included).
    pub fn execute<P: AsRef<str>>(
        &mut self,
        session: &mut Session<'_>,
        params: &[P],
    ) -> Result<Output, QueryError> {
        self.revalidate(session.engine())?;
        if let Some(plan) = &mut self.plan {
            // Prepared SELECTs bypass Session::execute, so the latency
            // series is settled here (mutations fall through to the
            // session below and are recorded there).
            let engine = session.engine();
            let clock = engine.stmt_clock();
            let result = execute_select(engine, plan, params);
            if let Some(sw) = clock {
                engine.observe_statement("select", sw);
            }
            return result;
        }
        let lits: Vec<&str> = params.iter().map(AsRef::as_ref).collect();
        let bound = self.stmt.bind(&lits).map_err(|e| QueryError::ParamCount {
            expected: e.expected,
            got: e.got,
        })?;
        session.execute(bound)
    }

    /// Renders the cached plan — tree, cost estimate, applied rewrites —
    /// without executing. Parameters may be unbound; their slots print
    /// as `?n`. This is how prepared-plan reuse is observable: the text
    /// is stable across executions until DDL forces a re-plan.
    pub fn explain(&mut self, session: &Session<'_>) -> Result<String, QueryError> {
        let engine = session.engine();
        self.revalidate(engine)?;
        let sql = &self.sql;
        let plan = self
            .plan
            .as_mut()
            .ok_or_else(|| QueryError::Semantic(format!("not a SELECT: {sql}")))?;
        match plan.explain(engine, NO_PARAMS, true, false)? {
            Some(text) => Ok(text),
            None => Ok("plan: <empty result — predicate value never interned>".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let engine = Engine::new();
        engine
            .session()
            .run_script(
                "CREATE TABLE sc (Student, Course);
                 INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');
                 CREATE TABLE cp (Course, Prof);
                 INSERT INTO cp VALUES ('c1','p1'), ('c2','p2'), ('c3','p1');",
            )
            .unwrap();
        engine
    }

    fn rows_of(out: &Output) -> usize {
        match out {
            Output::Relation { relation, .. } => relation.expand().len(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prepared_select_binds_params_per_call() {
        let engine = engine();
        let mut session = engine.session();
        let mut stmt = session
            .prepare("SELECT Course FROM sc WHERE Student = ?")
            .unwrap();
        assert_eq!(stmt.param_count(), 1);
        assert!(stmt.is_query());
        let s1 = stmt.execute(&mut session, &["s1"]).unwrap();
        assert_eq!(rows_of(&s1), 2);
        let s2 = stmt.execute(&mut session, &["s2"]).unwrap();
        assert_eq!(rows_of(&s2), 1);
        // Unknown value: empty, not an error.
        let ghost = stmt.execute(&mut session, &["ghost"]).unwrap();
        assert_eq!(rows_of(&ghost), 0);
        // Wrong arity is an error.
        assert!(matches!(
            stmt.execute(&mut session, NO_PARAMS),
            Err(QueryError::ParamCount {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn prepared_matches_one_shot_run() {
        let engine = engine();
        let mut session = engine.session();
        let mut stmt = session
            .prepare("SELECT Student FROM sc JOIN cp WHERE Prof = ? AND Student IN ('s1', ?)")
            .unwrap();
        for (prof, student) in [("p1", "s2"), ("p2", "s3"), ("p1", "s1")] {
            let prepared = stmt.execute(&mut session, &[prof, student]).unwrap();
            let one_shot = session
                .run(&format!(
                    "SELECT Student FROM sc JOIN cp WHERE Prof = '{prof}' AND Student IN ('s1', '{student}')"
                ))
                .unwrap();
            assert_eq!(prepared, one_shot, "{prof}/{student}");
        }
    }

    #[test]
    fn wide_in_lists_stay_within_the_slot_range() {
        // 70k values would have overflowed a 16-bit slot range; the
        // reserved range is 2^24 ids with an explicit guard.
        let engine = engine();
        let mut session = engine.session();
        let values: Vec<String> = (0..70_000).map(|i| format!("'v{i}'")).collect();
        let sql = format!(
            "SELECT COUNT(*) FROM sc WHERE Student = 's1' AND Course IN ({}, 'c1')",
            values.join(", ")
        );
        assert_eq!(session.run(&sql).unwrap(), Output::Count(1));
    }

    #[test]
    fn literals_resolve_late() {
        let engine = engine();
        let mut session = engine.session();
        // 'c9' is not interned yet: the plan must not freeze the miss.
        let mut stmt = session
            .prepare("SELECT COUNT(*) FROM sc WHERE Course = 'c9'")
            .unwrap();
        assert_eq!(
            stmt.execute(&mut session, NO_PARAMS).unwrap(),
            Output::Count(0)
        );
        session.run("INSERT INTO sc VALUES ('s9','c9')").unwrap();
        assert_eq!(
            stmt.execute(&mut session, NO_PARAMS).unwrap(),
            Output::Count(1)
        );
    }

    #[test]
    fn ddl_triggers_replan() {
        let engine = engine();
        let mut session = engine.session();
        let mut stmt = session.prepare("SELECT COUNT(*) FROM sc").unwrap();
        assert_eq!(
            stmt.execute(&mut session, NO_PARAMS).unwrap(),
            Output::Count(4)
        );
        // Unrelated DDL: still works (re-planned transparently).
        session.run("CREATE TABLE other (A)").unwrap();
        assert_eq!(
            stmt.execute(&mut session, NO_PARAMS).unwrap(),
            Output::Count(4)
        );
        // Dropping the table surfaces at the next execution.
        session.run("DROP TABLE sc").unwrap();
        assert!(matches!(
            stmt.execute(&mut session, NO_PARAMS),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn prepared_dml_binds_and_mutates() {
        let engine = engine();
        let mut session = engine.session();
        let mut ins = session.prepare("INSERT INTO sc VALUES (?, ?)").unwrap();
        assert!(!ins.is_query());
        assert_eq!(
            ins.execute(&mut session, &["s7", "c7"]).unwrap(),
            Output::Affected(1)
        );
        assert_eq!(
            ins.execute(&mut session, &["s7", "c7"]).unwrap(),
            Output::Affected(0),
            "set semantics"
        );
        let mut del = session.prepare("DELETE FROM sc WHERE Student = ?").unwrap();
        assert_eq!(
            del.execute(&mut session, &[Param::from("s7")]).unwrap(),
            Output::Affected(1)
        );
        // Cursors are for queries only.
        assert!(ins.query(&session, &["x", "y"]).is_err());
    }

    #[test]
    fn prepared_query_streams() {
        let engine = engine();
        let session = engine.session();
        let mut stmt = session
            .prepare("SELECT * FROM sc WHERE Student = ?")
            .unwrap();
        let cursor = stmt.query(&session, &["s1"]).unwrap();
        let flat: Vec<_> = cursor.flat_rows().collect();
        assert_eq!(flat.len(), 2);
    }

    #[test]
    fn prepared_handles_replan_across_engines() {
        // A handle compiled on one engine must not execute its cached
        // attribute ids against another engine's tables.
        let a = Engine::new();
        a.session()
            .run_script(
                "CREATE TABLE t (A, B, C);
                 INSERT INTO t VALUES ('x','y','z');",
            )
            .unwrap();
        let mut stmt = a.session().prepare("SELECT C FROM t WHERE A = ?").unwrap();
        // Engine B: same table name and epoch history, different shape.
        let b = Engine::new();
        b.session()
            .run_script(
                "CREATE TABLE t (C, A);
                 INSERT INTO t VALUES ('z2','x'), ('z3','w');",
            )
            .unwrap();
        assert_eq!(
            a.ddl_epoch(),
            b.ddl_epoch(),
            "epochs alone cannot tell them apart"
        );
        let mut session = b.session();
        match stmt.execute(&mut session, &["x"]).unwrap() {
            Output::Relation { relation, .. } => {
                assert_eq!(relation.arity(), 1);
                let rows: Vec<_> = relation.expand().into_rows().into_iter().collect();
                assert_eq!(rows.len(), 1, "engine B's (C='z2', A='x') row");
            }
            other => panic!("unexpected {other:?}"),
        }
        // And back on engine A it re-plans again.
        let mut session = a.session();
        match stmt.execute(&mut session, &["x"]).unwrap() {
            Output::Relation { relation, .. } => assert_eq!(relation.flat_count(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn repeated_attr_conjuncts_fold_like_the_legacy_path() {
        let engine = engine();
        let mut session = engine.session();
        // {s1} ∩ {s2} = ∅: contradictory equalities on one attribute
        // must yield nothing, on every execution path.
        let sql = "SELECT * FROM sc WHERE Student = 's1' AND Student = 's2'";
        match session.run(sql).unwrap() {
            Output::Relation { relation, .. } => assert!(relation.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        let mut stmt = session
            .prepare("SELECT * FROM sc WHERE Student = ? AND Student = ?")
            .unwrap();
        match stmt.execute(&mut session, &["s1", "s2"]).unwrap() {
            Output::Relation { relation, .. } => assert!(relation.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // And a satisfiable overlap narrows instead of replacing.
        let narrowed = stmt.execute(&mut session, &["s1", "s1"]).unwrap();
        let expected = session
            .run("SELECT * FROM sc WHERE Student = 's1'")
            .unwrap();
        assert_eq!(narrowed, expected);
    }

    #[test]
    fn empty_result_cursor_keeps_output_schema() {
        let engine = engine();
        let session = engine.session();
        let mut stmt = session
            .prepare("SELECT Course FROM sc WHERE Student = ?")
            .unwrap();
        // A hit and a statically-empty miss must report the same
        // (projected) schema.
        let hit = stmt.query(&session, &["s1"]).unwrap();
        let hit_names: Vec<String> = hit.schema().attr_names().map(str::to_owned).collect();
        assert_eq!(hit_names, vec!["Course"]);
        let miss = stmt.query(&session, &["never-interned"]).unwrap();
        let miss_names: Vec<String> = miss.schema().attr_names().map(str::to_owned).collect();
        assert_eq!(
            miss_names, hit_names,
            "schema must not depend on the bound value"
        );
        assert_eq!(miss.count(), 0);
        // Same for joins: the miss carries the joined schema.
        let mut stmt = session
            .prepare("SELECT * FROM sc JOIN cp WHERE Prof = ?")
            .unwrap();
        let miss = stmt.query(&session, &["never-interned"]).unwrap();
        let names: Vec<String> = miss.schema().attr_names().map(str::to_owned).collect();
        assert_eq!(names, vec!["Student", "Course", "Prof"]);
    }

    /// Flat rows of an output, as resolved strings (row-major), in
    /// cursor order.
    fn ordered_rows(session: &Session<'_>, sql: &str) -> Vec<Vec<String>> {
        let snap = session.engine().dict().snapshot();
        session
            .query(sql)
            .unwrap()
            .flat_rows()
            .map(|row| {
                row.iter()
                    .map(|&a| snap.resolve(a).unwrap().to_owned())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn order_by_sorts_by_resolved_value_not_intern_order() {
        let engine = Engine::new();
        let mut session = engine.session();
        // Interned in anti-alphabetical order on purpose: atom ids rank
        // c > b > a, the strings rank a < b < c.
        session
            .run_script(
                "CREATE TABLE t (K, V);
                 INSERT INTO t VALUES ('c','3'), ('b','2'), ('a','1');",
            )
            .unwrap();
        let asc = ordered_rows(&session, "SELECT K FROM t ORDER BY K");
        assert_eq!(asc, vec![vec!["a"], vec!["b"], vec!["c"]]);
        let desc = ordered_rows(&session, "SELECT K FROM t ORDER BY K DESC");
        assert_eq!(desc, vec![vec!["c"], vec!["b"], vec!["a"]]);
        // Late-interned values order correctly on the next execution.
        session.run("INSERT INTO t VALUES ('aa','0')").unwrap();
        let asc = ordered_rows(&session, "SELECT K FROM t ORDER BY K LIMIT 2");
        assert_eq!(asc, vec![vec!["a"], vec!["aa"]]);
    }

    #[test]
    fn top_k_equals_sort_then_truncate_on_every_path() {
        let engine = engine();
        let mut session = engine.session();
        // LIMIT truncates NF² tuples, so the oracle compares ordered
        // tuple streams (a kept tuple may expand to several flat rows).
        let tuples = |session: &Session<'_>, sql: &str| -> Vec<nf2_core::tuple::NfTuple> {
            session
                .query(sql)
                .unwrap()
                .map(|t| t.into_owned())
                .collect()
        };
        for dir in ["", " DESC"] {
            for k in 0..6 {
                let all = tuples(
                    &session,
                    &format!("SELECT Student, Course FROM sc ORDER BY Course{dir}"),
                );
                let truncated: Vec<_> = all.into_iter().take(k).collect();
                let topk = tuples(
                    &session,
                    &format!("SELECT Student, Course FROM sc ORDER BY Course{dir} LIMIT {k}"),
                );
                assert_eq!(topk, truncated, "dir {dir:?} k {k}");
            }
        }
        // run() and prepared execution agree with the cursor path.
        let via_run = session
            .run("SELECT Course FROM sc WHERE Student = 's1' ORDER BY Course LIMIT 1")
            .unwrap();
        let mut stmt = session
            .prepare("SELECT Course FROM sc WHERE Student = ? ORDER BY Course LIMIT 1")
            .unwrap();
        let via_prepared = stmt.execute(&mut session, &["s1"]).unwrap();
        assert_eq!(via_run, via_prepared);
        // A prepared cursor streams the ordered prefix.
        let cursor = stmt.query(&session, &["s1"]).unwrap();
        assert_eq!(cursor.count(), 1);
    }

    #[test]
    fn order_by_rejects_unknown_and_projected_away_attributes() {
        let engine = engine();
        let session = engine.session();
        assert!(session.query("SELECT * FROM sc ORDER BY Nope").is_err());
        // Course is projected away: ordering the output on it is an
        // error at prepare time, not a silent no-op.
        assert!(session
            .prepare("SELECT Student FROM sc ORDER BY Course")
            .is_err());
        // On the joined schema, right-side attributes are orderable.
        assert!(session
            .prepare("SELECT * FROM sc JOIN cp ORDER BY Prof DESC")
            .is_ok());
    }

    #[test]
    fn aggregates_ignore_order_by_and_limit() {
        let engine = engine();
        let mut session = engine.session();
        assert_eq!(
            session
                .run("SELECT COUNT(*) FROM sc ORDER BY Student LIMIT 1")
                .unwrap(),
            Output::Count(4)
        );
        assert_eq!(
            session
                .run("SELECT COUNT(DISTINCT Course) FROM sc ORDER BY Course DESC LIMIT 2")
                .unwrap(),
            Output::Count(3)
        );
        // Ignoring the clause must not skip validating it: a typo'd
        // attribute errors exactly like it does without the aggregate.
        assert!(session
            .run("SELECT COUNT(*) FROM sc ORDER BY Nope LIMIT 2")
            .is_err());
        // The pre-aggregate schema is what counts: ordering on an
        // attribute the COUNT(DISTINCT …) projection drops is fine.
        assert_eq!(
            session
                .run("SELECT COUNT(DISTINCT Course) FROM sc ORDER BY Student")
                .unwrap(),
            Output::Count(3)
        );
    }

    #[test]
    fn explain_reports_the_order_operator() {
        let engine = engine();
        let session = engine.session();
        let mut stmt = session
            .prepare("SELECT * FROM sc ORDER BY Course DESC LIMIT 3")
            .unwrap();
        let text = stmt.explain(&session).unwrap();
        assert!(text.contains("ORDER BY Course DESC"), "{text}");
        assert!(
            text.contains("top-3 bounded heap"),
            "DESC cannot stream off ascending segments: {text}"
        );
        // Course is P(n−1) — the segment sort key — so an ascending
        // order streams straight off the merge.
        let mut stmt = session.prepare("SELECT * FROM sc ORDER BY Course").unwrap();
        let text = stmt.explain(&session).unwrap();
        assert!(text.contains("streaming k-way segment merge"), "{text}");
        let mut stmt = session
            .prepare("SELECT * FROM sc ORDER BY Course, Student LIMIT 2")
            .unwrap();
        let text = stmt.explain(&session).unwrap();
        assert!(text.contains("ORDER BY Course, Student"), "{text}");
        assert!(
            text.contains("streaming k-way segment merge, limit 2"),
            "{text}"
        );
        // Student is not a prefix of the reversed nest order.
        let mut stmt = session
            .prepare("SELECT * FROM sc ORDER BY Student")
            .unwrap();
        let text = stmt.explain(&session).unwrap();
        assert!(text.contains("blocking sort"), "{text}");
    }

    /// Parses the `N` out of `(actual rows=N time=…)` on one plan line.
    fn actual_rows(line: &str) -> u64 {
        let rest = line
            .split("actual rows=")
            .nth(1)
            .unwrap_or_else(|| panic!("no actuals on {line:?}"));
        rest.split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|e| panic!("bad rows in {line:?}: {e}"))
    }

    /// The indented operator lines of the `physical:` section.
    fn physical_lines(text: &str) -> Vec<&str> {
        text.lines()
            .skip_while(|l| !l.starts_with("physical:"))
            .skip(1)
            .take_while(|l| l.starts_with("  "))
            .collect()
    }

    #[test]
    fn explain_analyze_annotates_every_operator() {
        let engine = engine();
        let mut session = engine.session();
        let out = session
            .run("EXPLAIN ANALYZE SELECT Student FROM sc JOIN cp WHERE Prof = 'p1'")
            .unwrap();
        let Output::Message(text) = out else {
            panic!("unexpected {out:?}")
        };
        let phys = physical_lines(&text);
        assert!(phys.len() >= 4, "expected a join pipeline: {text}");
        for line in &phys {
            assert!(line.contains("(actual rows="), "{line}\n{text}");
            assert!(line.contains("time="), "{line}\n{text}");
        }
        // The summary line reports the drained result size, and the root
        // operator's actual matches it exactly (nothing re-orders above
        // the root here).
        let summary = text
            .lines()
            .find(|l| l.starts_with("analyze: "))
            .unwrap_or_else(|| panic!("no analyze summary: {text}"));
        let result_rows: u64 = summary
            .strip_prefix("analyze: ")
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(actual_rows(phys[0]), result_rows, "{text}");
        assert!(result_rows > 0, "p1 teaches interned courses: {text}");
        // The unfiltered scan of sc streamed the whole table.
        let sc_line = phys
            .iter()
            .find(|l| l.contains("scan[sc"))
            .unwrap_or_else(|| panic!("no sc scan: {text}"));
        assert_eq!(
            actual_rows(sc_line),
            engine.table("sc").unwrap().tuple_count() as u64,
            "{text}"
        );
    }

    #[test]
    fn explain_analyze_reports_order_operator_actuals() {
        let engine = engine();
        let mut session = engine.session();
        let out = session
            .run("EXPLAIN ANALYZE SELECT * FROM sc ORDER BY Student LIMIT 2")
            .unwrap();
        let Output::Message(text) = out else {
            panic!("unexpected {out:?}")
        };
        assert!(text.contains("top-2 bounded heap"), "{text}");
        assert!(text.contains("(actual pulled="), "{text}");
        assert!(text.contains("peak retained="), "{text}");
        // The heap pulled exactly what the root operator yielded.
        let pulled: u64 = text
            .split("actual pulled=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let phys = physical_lines(&text);
        assert_eq!(actual_rows(phys[0]), pulled, "{text}");
    }

    #[test]
    fn explain_analyze_of_statically_empty_result() {
        let engine = engine();
        let mut session = engine.session();
        let out = session
            .run("EXPLAIN ANALYZE SELECT * FROM sc WHERE Student = 'ghost'")
            .unwrap();
        assert!(out.to_text().contains("empty result"), "{out:?}");
    }

    #[test]
    fn explain_shows_template_and_estimates() {
        let engine = engine();
        let session = engine.session();
        let mut stmt = session
            .prepare("SELECT Student FROM sc JOIN cp WHERE Prof = ? AND Course = 'c1'")
            .unwrap();
        let text = stmt.explain(&session).unwrap();
        assert!(text.contains("plan:"), "{text}");
        assert!(text.contains("?0"), "param slot rendered: {text}");
        assert!(text.contains("'c1'"), "literal slot rendered: {text}");
        assert!(text.contains("estimated work:"), "{text}");
        assert!(text.contains("rewrites:"), "{text}");
        let again = stmt.explain(&session).unwrap();
        assert_eq!(text, again, "cached plan is stable across calls");
    }
}
