//! A buffer pool with clock (second-chance) eviction over a paged file.
//!
//! The heap layer ([`crate::heap`]) materialises whole files; that is
//! fine for checkpoints but not for the realization-view story (§2):
//! once the NFR *is* the physical representation, lookups should touch a
//! bounded number of page frames, and the frames an access pattern
//! re-touches should stay resident. [`BufferPool`] supplies exactly
//! that: a fixed number of in-memory frames over a [`PagedFile`], with
//! pin/unpin, dirty-page write-back, and hit/miss/eviction accounting
//! that the search-space experiments read.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{Result, StorageError};
use crate::page::{Page, PAGE_SIZE};

/// A file of fixed-size page frames with random-access page I/O.
#[derive(Debug)]
pub struct PagedFile {
    file: File,
    page_count: u32,
}

impl PagedFile {
    /// Creates (truncating) a new paged file.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            page_count: 0,
        })
    }

    /// Opens an existing paged file, validating its geometry.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "paged file length {len} is not a multiple of the page size"
            )));
        }
        Ok(Self {
            file,
            page_count: (len / PAGE_SIZE as u64) as u32,
        })
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Appends a fresh empty page, returning its id.
    pub fn allocate(&mut self) -> Result<u32> {
        let id = self.page_count;
        let page = Page::new(id);
        self.write_page(&page)?;
        self.page_count += 1;
        Ok(id)
    }

    /// Reads and checksum-verifies one page.
    pub fn read_page(&mut self, id: u32) -> Result<Page> {
        if id >= self.page_count {
            return Err(StorageError::InvalidRecord(format!(
                "page {id} out of range"
            )));
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        let mut frame = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut frame)?;
        Page::from_bytes(&frame)
    }

    /// Writes one page at its id's offset.
    pub fn write_page(&mut self, page: &Page) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(page.id() as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&page.to_bytes())?;
        Ok(())
    }

    /// Flushes OS buffers to disk.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok(())
    }
}

/// Buffer-pool access accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a resident frame.
    pub hits: u64,
    /// Requests that had to read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back (at eviction or flush).
    pub write_backs: u64,
}

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// A fixed-capacity page cache with clock (second-chance) replacement.
#[derive(Debug)]
pub struct BufferPool {
    file: PagedFile,
    frames: Vec<Option<Frame>>,
    /// page id → frame index.
    resident: HashMap<u32, usize>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Wraps `file` with a pool of `capacity` frames (at least 1).
    pub fn new(file: PagedFile, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            file,
            frames: (0..capacity).map(|_| None).collect(),
            resident: HashMap::with_capacity(capacity),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of pages in the backing file.
    pub fn page_count(&self) -> u32 {
        self.file.page_count()
    }

    /// Point-in-time access statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Allocates a new page in the backing file and faults it in.
    pub fn allocate_page(&mut self) -> Result<u32> {
        let id = self.file.allocate()?;
        self.fault_in(id)?;
        Ok(id)
    }

    /// Read access to a page, faulting it in if necessary.
    pub fn fetch(&mut self, id: u32) -> Result<&Page> {
        let idx = self.frame_of(id)?;
        let frame = self.frames[idx].as_mut().expect("resident frame");
        frame.referenced = true;
        Ok(&frame.page)
    }

    /// Write access to a page; the frame is marked dirty.
    pub fn fetch_mut(&mut self, id: u32) -> Result<&mut Page> {
        let idx = self.frame_of(id)?;
        let frame = self.frames[idx].as_mut().expect("resident frame");
        frame.referenced = true;
        frame.dirty = true;
        Ok(&mut frame.page)
    }

    /// Pins a page: it cannot be evicted until unpinned as many times.
    pub fn pin(&mut self, id: u32) -> Result<()> {
        let idx = self.frame_of(id)?;
        self.frames[idx].as_mut().expect("resident frame").pins += 1;
        Ok(())
    }

    /// Releases one pin. Unpinning a non-resident or unpinned page is an
    /// error (it indicates a caller bookkeeping bug).
    pub fn unpin(&mut self, id: u32) -> Result<()> {
        let idx = *self.resident.get(&id).ok_or_else(|| {
            StorageError::InvalidRecord(format!("unpin of non-resident page {id}"))
        })?;
        let frame = self.frames[idx].as_mut().expect("resident frame");
        if frame.pins == 0 {
            return Err(StorageError::InvalidRecord(format!(
                "page {id} is not pinned"
            )));
        }
        frame.pins -= 1;
        Ok(())
    }

    /// Writes back one page if dirty (stays resident).
    pub fn flush(&mut self, id: u32) -> Result<()> {
        if let Some(&idx) = self.resident.get(&id) {
            let frame = self.frames[idx].as_mut().expect("resident frame");
            if frame.dirty {
                self.file.write_page(&frame.page)?;
                frame.dirty = false;
                self.stats.write_backs += 1;
            }
        }
        Ok(())
    }

    /// Writes back every dirty frame and syncs the file.
    pub fn flush_all(&mut self) -> Result<()> {
        for idx in 0..self.frames.len() {
            if let Some(frame) = self.frames[idx].as_mut() {
                if frame.dirty {
                    self.file.write_page(&frame.page)?;
                    frame.dirty = false;
                    self.stats.write_backs += 1;
                }
            }
        }
        self.file.sync()
    }

    /// Consumes the pool, flushing everything, and returns the file.
    pub fn into_file(mut self) -> Result<PagedFile> {
        self.flush_all()?;
        Ok(self.file)
    }

    fn frame_of(&mut self, id: u32) -> Result<usize> {
        if let Some(&idx) = self.resident.get(&id) {
            self.stats.hits += 1;
            return Ok(idx);
        }
        self.stats.misses += 1;
        self.fault_in(id)
    }

    /// Loads `id` into a frame, evicting with the clock policy if full.
    fn fault_in(&mut self, id: u32) -> Result<usize> {
        debug_assert!(!self.resident.contains_key(&id));
        let page = self.file.read_page(id)?;
        let idx = self.victim()?;
        if let Some(old) = self.frames[idx].take() {
            if old.dirty {
                self.file.write_page(&old.page)?;
                self.stats.write_backs += 1;
            }
            self.resident.remove(&old.page.id());
            self.stats.evictions += 1;
        }
        self.frames[idx] = Some(Frame {
            page,
            dirty: false,
            pins: 0,
            referenced: true,
        });
        self.resident.insert(id, idx);
        Ok(idx)
    }

    /// Clock scan: free frame, else first unpinned frame whose reference
    /// bit is already clear (clearing bits as the hand passes).
    fn victim(&mut self) -> Result<usize> {
        if let Some(free) = self.frames.iter().position(Option::is_none) {
            return Ok(free);
        }
        // Two sweeps suffice: the first clears reference bits, the second
        // must find one clear unless every frame is pinned.
        for _ in 0..2 * self.frames.len() {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = self.frames[idx].as_mut().expect("pool is full here");
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                return Ok(idx);
            }
        }
        Err(StorageError::PoolExhausted {
            capacity: self.frames.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nf2_pool_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.pages"))
    }

    fn pool_with_pages(tag: &str, pages: u32, capacity: usize) -> BufferPool {
        let mut file = PagedFile::create(&temp_file(tag)).unwrap();
        for _ in 0..pages {
            file.allocate().unwrap();
        }
        BufferPool::new(file, capacity)
    }

    #[test]
    fn paged_file_round_trips_pages() {
        let path = temp_file("roundtrip");
        let mut f = PagedFile::create(&path).unwrap();
        let id = f.allocate().unwrap();
        let mut page = f.read_page(id).unwrap();
        let slot = page.insert(b"persisted").unwrap();
        f.write_page(&page).unwrap();
        f.sync().unwrap();
        let mut g = PagedFile::open(&path).unwrap();
        assert_eq!(g.page_count(), 1);
        assert_eq!(g.read_page(id).unwrap().get(slot).unwrap(), b"persisted");
    }

    #[test]
    fn paged_file_rejects_bad_geometry() {
        let path = temp_file("badgeom");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 7]).unwrap();
        assert!(PagedFile::open(&path).is_err());
    }

    #[test]
    fn out_of_range_reads_error() {
        let mut f = PagedFile::create(&temp_file("range")).unwrap();
        assert!(f.read_page(0).is_err());
        f.allocate().unwrap();
        assert!(f.read_page(0).is_ok());
        assert!(f.read_page(1).is_err());
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut pool = pool_with_pages("hitmiss", 3, 2);
        pool.fetch(0).unwrap();
        pool.fetch(0).unwrap();
        pool.fetch(1).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn eviction_kicks_in_beyond_capacity() {
        let mut pool = pool_with_pages("evict", 4, 2);
        pool.fetch(0).unwrap();
        pool.fetch(1).unwrap();
        pool.fetch(2).unwrap(); // must evict 0 or 1
        assert_eq!(pool.stats().evictions, 1);
        // All pages still readable (faulted back in on demand).
        for id in 0..3 {
            pool.fetch(id).unwrap();
        }
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_frames() {
        let mut pool = pool_with_pages("clock", 4, 2);
        pool.fetch(0).unwrap();
        pool.fetch(1).unwrap();
        // Both frames carry a reference bit; the first eviction scan
        // clears both and takes the frame the hand re-reaches first
        // (page 0). Page 2 lands there with its bit set; page 1's bit
        // stays clear.
        pool.fetch(2).unwrap();
        assert!(!pool.resident.contains_key(&0));
        // Second chance: faulting 3 must pass over referenced page 2 and
        // evict page 1, whose bit was cleared and never re-set.
        pool.fetch(3).unwrap();
        assert!(
            pool.resident.contains_key(&2),
            "referenced frame survived the scan"
        );
        assert!(
            !pool.resident.contains_key(&1),
            "unreferenced frame evicted"
        );
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn dirty_pages_are_written_back_on_eviction() {
        let path = temp_file("writeback");
        let mut file = PagedFile::create(&path).unwrap();
        for _ in 0..3 {
            file.allocate().unwrap();
        }
        let mut pool = BufferPool::new(file, 1);
        let slot = pool.fetch_mut(0).unwrap().insert(b"dirty data").unwrap();
        pool.fetch(1).unwrap(); // evicts page 0, forcing write-back
        assert_eq!(pool.stats().write_backs, 1);
        let page0 = pool.fetch(0).unwrap();
        assert_eq!(page0.get(slot).unwrap(), b"dirty data");
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut pool = pool_with_pages("pin", 3, 2);
        pool.fetch(0).unwrap();
        pool.pin(0).unwrap();
        pool.fetch(1).unwrap();
        pool.fetch(2).unwrap(); // must evict 1, not pinned 0
        assert!(pool.resident.contains_key(&0));
        pool.unpin(0).unwrap();
        assert!(pool.unpin(0).is_err(), "double unpin is a caller bug");
        assert!(pool.unpin(7).is_err(), "unpin of non-resident page");
    }

    #[test]
    fn fully_pinned_pool_reports_exhaustion() {
        let mut pool = pool_with_pages("exhaust", 3, 2);
        pool.fetch(0).unwrap();
        pool.pin(0).unwrap();
        pool.fetch(1).unwrap();
        pool.pin(1).unwrap();
        match pool.fetch(2) {
            Err(StorageError::PoolExhausted { capacity: 2 }) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn flush_all_persists_and_clears_dirt() {
        let path = temp_file("flushall");
        let mut file = PagedFile::create(&path).unwrap();
        for _ in 0..2 {
            file.allocate().unwrap();
        }
        let mut pool = BufferPool::new(file, 2);
        let s0 = pool.fetch_mut(0).unwrap().insert(b"zero").unwrap();
        let s1 = pool.fetch_mut(1).unwrap().insert(b"one").unwrap();
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().write_backs, 2);
        // Re-open the file cold and verify both pages.
        let mut cold = PagedFile::open(&path).unwrap();
        assert_eq!(cold.read_page(0).unwrap().get(s0).unwrap(), b"zero");
        assert_eq!(cold.read_page(1).unwrap().get(s1).unwrap(), b"one");
    }

    #[test]
    fn flush_single_page_is_idempotent() {
        let mut pool = pool_with_pages("flushone", 1, 1);
        pool.fetch_mut(0).unwrap().insert(b"x").unwrap();
        pool.flush(0).unwrap();
        pool.flush(0).unwrap(); // clean now: no second write-back
        assert_eq!(pool.stats().write_backs, 1);
        pool.flush(42).unwrap(); // non-resident: no-op
    }

    #[test]
    fn allocate_page_extends_file_and_pool() {
        let mut pool = pool_with_pages("alloc", 0, 2);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.page_count(), 2);
        pool.fetch(a).unwrap();
        assert_eq!(pool.stats().hits, 1, "freshly allocated page is resident");
    }

    #[test]
    fn into_file_flushes_everything() {
        let path = temp_file("intofile");
        let mut file = PagedFile::create(&path).unwrap();
        file.allocate().unwrap();
        let mut pool = BufferPool::new(file, 1);
        let slot = pool.fetch_mut(0).unwrap().insert(b"final").unwrap();
        let mut file = pool.into_file().unwrap();
        assert_eq!(file.read_page(0).unwrap().get(slot).unwrap(), b"final");
    }

    /// Randomised cross-check: a tiny pool over many pages must behave
    /// exactly like direct file access.
    #[test]
    fn random_workload_matches_direct_file_access() {
        let path = temp_file("oracle");
        let mut file = PagedFile::create(&path).unwrap();
        let pages = 8u32;
        let mut slots = Vec::new();
        for id in 0..pages {
            file.allocate().unwrap();
            let mut p = file.read_page(id).unwrap();
            let slot = p.insert(format!("page-{id}").as_bytes()).unwrap();
            file.write_page(&p).unwrap();
            slots.push(slot);
        }
        let mut pool = BufferPool::new(file, 3);
        // Deterministic pseudo-random access pattern.
        let mut state = 0xdead_beefu64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (state >> 33) as u32 % pages;
            let page = pool.fetch(id).unwrap();
            assert_eq!(
                page.get(slots[id as usize]).unwrap(),
                format!("page-{id}").as_bytes()
            );
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(
            s.misses > 0 && s.hits > 0,
            "3-frame pool over 8 pages must mix"
        );
    }
}
