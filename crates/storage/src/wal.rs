//! Group-commit write-ahead log: a sequenced per-table commit buffer
//! with leader-elected flushes.
//!
//! Concurrent writers (each holding its own per-shard lane lock, see
//! `crate::table`) append entries to one sequenced buffer; a flush
//! request first checks whether its entries are already durable — a
//! racing leader may have flushed the whole group — and otherwise
//! elects itself leader by taking the flush lock and writing the entire
//! buffered prefix in **one** fsync-equivalent (`std::fs::write` of the
//! whole log). The leader can be told to dwell for a configurable
//! group-commit window before snapshotting the buffer, so commits that
//! arrive during the window ride along in the same write.
//!
//! Durability bookkeeping is a single watermark: `durable` counts the
//! log prefix already on disk. Because writers append while holding
//! their shard lock, each shard's entries appear in the log in its
//! serial mutation order; cross-shard interleaving is arbitrary but
//! harmless (ops on different shards touch disjoint rows and commute).
//! Crash recovery therefore replays any *prefix* of the log to a
//! consistent state — `NfTable::open` stops at the first torn entry,
//! which is exactly the last durably committed prefix.

use std::path::Path;

use bytes::{BufMut, BytesMut};
use parking_lot::Mutex;

use nf2_core::tuple::FlatTuple;

use crate::codec::{decode_flat_tuple, encode_flat_tuple};
use crate::error::{Result, StorageError};

/// A WAL entry: one flat-row mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalEntry {
    Insert(FlatTuple),
    Delete(FlatTuple),
}

impl WalEntry {
    pub(crate) fn encode(&self, out: &mut BytesMut) {
        let (tag, row) = match self {
            WalEntry::Insert(r) => (1u8, r),
            WalEntry::Delete(r) => (2u8, r),
        };
        out.put_u8(tag);
        encode_flat_tuple(row, out);
    }

    pub(crate) fn decode(buf: &mut &[u8], arity: usize) -> Result<Self> {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("wal entry truncated".into()));
        }
        let tag = buf[0];
        *buf = &buf[1..];
        let row = decode_flat_tuple(buf, arity)?;
        match tag {
            1 => Ok(WalEntry::Insert(row)),
            2 => Ok(WalEntry::Delete(row)),
            t => Err(StorageError::Corrupt(format!("unknown wal tag {t}"))),
        }
    }
}

/// The sequenced buffer plus its durability watermark. One mutex, held
/// only for appends and snapshot/watermark reads — never across I/O.
#[derive(Debug, Default)]
struct LogBuffer {
    entries: Vec<WalEntry>,
    /// Entries `[..durable]` are on disk.
    durable: usize,
}

/// A per-table group-commit log. See the module docs for the protocol.
///
/// Lock order within the log: `flush` before `buf` (appenders take only
/// `buf`).
#[derive(Debug, Default)]
pub(crate) struct CommitLog {
    buf: Mutex<LogBuffer>,
    /// The leader's flush critical section: serializes the
    /// fsync-equivalent so exactly one writer pays it per group.
    flush: Mutex<()>,
}

impl CommitLog {
    /// An empty log.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A log seeded with already-durable entries — what `open` builds
    /// after replaying an on-disk WAL, so a later flush re-writes the
    /// replayed entries instead of silently dropping them.
    pub(crate) fn with_durable(entries: Vec<WalEntry>) -> Self {
        let durable = entries.len();
        Self {
            buf: Mutex::new(LogBuffer { entries, durable }),
            flush: Mutex::new(()),
        }
    }

    /// Appends one entry to the sequenced buffer.
    pub(crate) fn append(&self, entry: WalEntry) {
        self.buf.lock().entries.push(entry);
    }

    /// Appends a batch of entries contiguously (one buffer lock).
    pub(crate) fn extend(&self, entries: impl IntoIterator<Item = WalEntry>) {
        self.buf.lock().entries.extend(entries);
    }

    /// Number of buffered entries (durable or not). Test/inspection
    /// surface.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.buf.lock().entries.len()
    }

    /// Makes every buffered entry durable at `path`, group-committing
    /// with concurrent flushers.
    ///
    /// Returns `Ok(None)` when the caller's group was already flushed
    /// by a racing leader (no I/O performed — this is the
    /// once-per-fsync-equivalent accounting contract: callers bump
    /// their flush counters only on `Some`). Returns `Ok(Some(n))`
    /// after actually writing, where `n` is the group size: the number
    /// of entries this write newly made durable.
    ///
    /// A non-zero `window_us` makes the elected leader dwell that many
    /// microseconds before snapshotting the buffer, letting concurrent
    /// writers' appends join the group.
    pub(crate) fn flush_to(&self, path: &Path, window_us: u64) -> Result<Option<u64>> {
        {
            let b = self.buf.lock();
            if b.durable >= b.entries.len() {
                return Ok(None);
            }
        }
        let _leader = self.flush.lock();
        if window_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(window_us));
        }
        let (bytes, high, low) = {
            let b = self.buf.lock();
            if b.durable >= b.entries.len() {
                // A leader that won the race flushed our group already.
                return Ok(None);
            }
            let mut out = BytesMut::new();
            for e in &b.entries {
                e.encode(&mut out);
            }
            (out, b.entries.len(), b.durable)
        };
        // The whole sequenced log is rewritten in one write: a crash
        // mid-write leaves a byte prefix, which decodes to an entry
        // prefix — the recovery contract `open` relies on.
        std::fs::write(path, &bytes)?;
        let mut b = self.buf.lock();
        if b.durable < high {
            b.durable = high;
        }
        Ok(Some((high - low) as u64))
    }

    /// Truncates the log after a checkpoint: clears the buffer, resets
    /// the watermark and writes an empty WAL file. Callers must have
    /// quiesced writers (the table holds every lane lock across a
    /// checkpoint).
    pub(crate) fn truncate(&self, path: &Path) -> Result<()> {
        let _leader = self.flush.lock();
        let mut b = self.buf.lock();
        b.entries.clear();
        b.durable = 0;
        std::fs::write(path, b"")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::value::Atom;
    use std::path::PathBuf;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nf2_commitlog_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creatable");
        dir.join("t.wal")
    }

    fn entry(v: u32) -> WalEntry {
        WalEntry::Insert(vec![Atom(v), Atom(v + 1)])
    }

    fn decode_all(bytes: &[u8]) -> Vec<WalEntry> {
        let mut slice = bytes;
        let mut out = Vec::new();
        while !slice.is_empty() {
            out.push(WalEntry::decode(&mut slice, 2).expect("intact log decodes"));
        }
        out
    }

    #[test]
    fn flush_writes_once_per_group_and_reports_size() {
        let path = temp_wal("group");
        let log = CommitLog::new();
        log.append(entry(1));
        log.append(entry(2));
        assert_eq!(log.flush_to(&path, 0).unwrap(), Some(2), "two-entry group");
        // Nothing new buffered: the next flush is a no-op, not a write.
        assert_eq!(log.flush_to(&path, 0).unwrap(), None);
        log.extend([entry(3)]);
        assert_eq!(log.flush_to(&path, 0).unwrap(), Some(1));
        let on_disk = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(on_disk, vec![entry(1), entry(2), entry(3)]);
    }

    #[test]
    fn truncate_resets_buffer_and_file() {
        let path = temp_wal("trunc");
        let log = CommitLog::new();
        log.append(entry(9));
        log.flush_to(&path, 0).unwrap();
        log.truncate(&path).unwrap();
        assert_eq!(log.len(), 0);
        assert!(std::fs::read(&path).unwrap().is_empty());
        assert_eq!(log.flush_to(&path, 0).unwrap(), None, "nothing to flush");
    }

    #[test]
    fn seeded_log_keeps_replayed_entries_durable() {
        let path = temp_wal("seed");
        let log = CommitLog::with_durable(vec![entry(1), entry(2)]);
        // Replayed entries are already on disk: no write needed.
        assert_eq!(log.flush_to(&path, 0).unwrap(), None);
        // A later append re-writes the *whole* sequenced log, keeping
        // the replayed prefix.
        log.append(entry(3));
        assert_eq!(log.flush_to(&path, 0).unwrap(), Some(1));
        let on_disk = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(on_disk, vec![entry(1), entry(2), entry(3)]);
    }

    #[test]
    fn concurrent_flushers_coalesce_into_few_writes() {
        let path = temp_wal("storm");
        let log = std::sync::Arc::new(CommitLog::new());
        let writes = std::sync::atomic::AtomicU64::new(0);
        let appended = 64u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let log = std::sync::Arc::clone(&log);
                let path = path.clone();
                let writes = &writes;
                s.spawn(move || {
                    for i in 0..appended / 4 {
                        log.append(entry(1000 * t + i));
                        if log
                            .flush_to(&path, 0)
                            .expect("flush path writable")
                            .is_some()
                        {
                            writes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let total_writes = writes.load(std::sync::atomic::Ordering::Relaxed);
        assert!(total_writes >= 1, "someone flushed");
        assert!(
            total_writes <= u64::from(appended),
            "never more writes than flush calls"
        );
        assert_eq!(
            decode_all(&std::fs::read(&path).unwrap()).len(),
            appended as usize,
            "every appended entry became durable"
        );
    }
}
