//! Secondary hash indexes: value → record-id postings, with
//! persistence and integrity verification.
//!
//! §5 of the paper points at "the reduction of the search space" as the
//! implementation payoff of NFRs. A fair measurement (experiment E9)
//! needs the 1NF baseline to fight back with its own index; this module
//! provides it, and [`crate::table::FlatTable`] maintains one per
//! indexed attribute under inserts and deletes.

use std::collections::{BTreeSet, HashMap};
use std::path::Path;

use bytes::{BufMut, BytesMut};

use nf2_core::schema::AttrId;
use nf2_core::value::Atom;

use crate::codec::{decode_flat_tuple, fnv1a64, get_varint, put_varint};
use crate::error::{Result, StorageError};
use crate::heap::{HeapFile, RecordId};

/// A hash index over one attribute: atom value → sorted record ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HashIndex {
    attr: AttrId,
    postings: HashMap<Atom, BTreeSet<RecordId>>,
}

impl HashIndex {
    /// An empty index on `attr`.
    pub fn new(attr: AttrId) -> Self {
        Self {
            attr,
            postings: HashMap::new(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Builds an index over a heap of encoded flat tuples.
    pub fn build_flat(heap: &HeapFile, arity: usize, attr: AttrId) -> Result<Self> {
        let mut index = Self::new(attr);
        for (rid, rec) in heap.iter() {
            let mut slice = rec;
            let row = decode_flat_tuple(&mut slice, arity)?;
            index.insert(row[attr], rid);
        }
        Ok(index)
    }

    /// Registers `rid` under `value`.
    pub fn insert(&mut self, value: Atom, rid: RecordId) {
        self.postings.entry(value).or_default().insert(rid);
    }

    /// Removes `rid` from `value`'s posting list. Returns whether it was
    /// present; empty lists are dropped.
    pub fn remove(&mut self, value: Atom, rid: RecordId) -> bool {
        match self.postings.get_mut(&value) {
            Some(list) => {
                let hit = list.remove(&rid);
                if list.is_empty() {
                    self.postings.remove(&value);
                }
                hit
            }
            None => false,
        }
    }

    /// The posting list for `value`, if any.
    pub fn lookup(&self, value: Atom) -> Option<&BTreeSet<RecordId>> {
        self.postings.get(&value)
    }

    /// Number of `(value, rid)` pairs.
    pub fn entry_count(&self) -> usize {
        self.postings.values().map(BTreeSet::len).sum()
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.postings.len()
    }

    /// Verifies the index against a heap of flat tuples: every posting
    /// must point at a live record whose `attr` value matches, and every
    /// record must be covered. Detects dangling and missing postings
    /// after corruption or a maintenance bug.
    pub fn verify_against_flat(&self, heap: &HeapFile, arity: usize) -> Result<()> {
        let mut covered = 0usize;
        for (&value, rids) in &self.postings {
            for &rid in rids {
                let rec = heap.get(rid).map_err(|_| {
                    StorageError::Corrupt(format!(
                        "index on E{} has dangling rid {rid:?} under {value}",
                        self.attr
                    ))
                })?;
                let mut slice = rec;
                let row = decode_flat_tuple(&mut slice, arity)?;
                if row[self.attr] != value {
                    return Err(StorageError::Corrupt(format!(
                        "index on E{} maps {value} to a row holding {}",
                        self.attr, row[self.attr]
                    )));
                }
                covered += 1;
            }
        }
        let live = heap.record_count();
        if covered != live {
            return Err(StorageError::Corrupt(format!(
                "index on E{} covers {covered} of {live} records",
                self.attr
            )));
        }
        Ok(())
    }

    /// Serializes to `path` (checksummed varint format).
    pub fn save(&self, path: &Path) -> Result<()> {
        let mut body = BytesMut::new();
        put_varint(&mut body, self.attr as u64);
        put_varint(&mut body, self.postings.len() as u64);
        let mut values: Vec<Atom> = self.postings.keys().copied().collect();
        values.sort_unstable();
        for value in values {
            let rids = &self.postings[&value];
            put_varint(&mut body, u64::from(value.id()));
            put_varint(&mut body, rids.len() as u64);
            for rid in rids {
                put_varint(&mut body, u64::from(rid.page));
                put_varint(&mut body, u64::from(rid.slot));
            }
        }
        let mut out = BytesMut::with_capacity(body.len() + 8);
        out.put_u64(fnv1a64(&body));
        out.extend_from_slice(&body);
        std::fs::write(path, &out)?;
        Ok(())
    }

    /// Loads from `path`, verifying the checksum.
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 {
            return Err(StorageError::Corrupt("index file truncated".into()));
        }
        let stored = u64::from_be_bytes(bytes[..8].try_into().expect("length checked above"));
        let body = &bytes[8..];
        if fnv1a64(body) != stored {
            return Err(StorageError::ChecksumMismatch { page_id: u32::MAX });
        }
        let mut slice = body;
        let attr = get_varint(&mut slice)? as AttrId;
        let value_count = get_varint(&mut slice)? as usize;
        let mut postings = HashMap::with_capacity(value_count);
        for _ in 0..value_count {
            let value = Atom(get_varint(&mut slice)? as u32);
            let rid_count = get_varint(&mut slice)? as usize;
            let mut rids = BTreeSet::new();
            for _ in 0..rid_count {
                let page = get_varint(&mut slice)? as u32;
                let slot = get_varint(&mut slice)? as u16;
                rids.insert(RecordId { page, slot });
            }
            postings.insert(value, rids);
        }
        Ok(Self { attr, postings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_flat_tuple;
    use nf2_core::tuple::FlatTuple;

    fn heap_of(rows: &[[u32; 2]]) -> (HeapFile, Vec<RecordId>) {
        let mut heap = HeapFile::new();
        let mut rids = Vec::new();
        let mut buf = BytesMut::new();
        for row in rows {
            let row: FlatTuple = row.iter().map(|&v| Atom(v)).collect();
            buf.clear();
            encode_flat_tuple(&row, &mut buf);
            rids.push(heap.insert(&buf).unwrap());
        }
        (heap, rids)
    }

    #[test]
    fn build_lookup_and_counts() {
        let (heap, rids) = heap_of(&[[1, 10], [2, 10], [1, 11]]);
        let idx = HashIndex::build_flat(&heap, 2, 1).unwrap();
        assert_eq!(idx.attr(), 1);
        assert_eq!(idx.entry_count(), 3);
        assert_eq!(idx.distinct_values(), 2);
        let ten = idx.lookup(Atom(10)).unwrap();
        assert_eq!(ten.len(), 2);
        assert!(ten.contains(&rids[0]) && ten.contains(&rids[1]));
        assert!(idx.lookup(Atom(99)).is_none());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut idx = HashIndex::new(0);
        let rid = RecordId { page: 0, slot: 3 };
        idx.insert(Atom(5), rid);
        assert!(idx.remove(Atom(5), rid));
        assert!(!idx.remove(Atom(5), rid), "second removal is a miss");
        assert!(idx.lookup(Atom(5)).is_none(), "empty lists dropped");
    }

    #[test]
    fn verify_accepts_consistent_index() {
        let (heap, _) = heap_of(&[[1, 10], [2, 11]]);
        let idx = HashIndex::build_flat(&heap, 2, 0).unwrap();
        idx.verify_against_flat(&heap, 2).unwrap();
    }

    #[test]
    fn verify_detects_dangling_posting() {
        let (heap, _) = heap_of(&[[1, 10]]);
        let mut idx = HashIndex::build_flat(&heap, 2, 0).unwrap();
        idx.insert(Atom(1), RecordId { page: 9, slot: 0 });
        assert!(matches!(
            idx.verify_against_flat(&heap, 2),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn verify_detects_wrong_value_mapping() {
        let (heap, rids) = heap_of(&[[1, 10]]);
        let mut idx = HashIndex::new(0);
        idx.insert(Atom(42), rids[0]); // wrong value
        assert!(matches!(
            idx.verify_against_flat(&heap, 2),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn verify_detects_missing_coverage() {
        let (heap, _) = heap_of(&[[1, 10], [2, 11]]);
        let idx = HashIndex::new(0); // indexes nothing
        assert!(matches!(
            idx.verify_against_flat(&heap, 2),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_round_trips() {
        let dir = std::env::temp_dir().join("nf2_index_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.bin");
        let (heap, _) = heap_of(&[[1, 10], [2, 10], [3, 12]]);
        let idx = HashIndex::build_flat(&heap, 2, 1).unwrap();
        idx.save(&path).unwrap();
        let loaded = HashIndex::load(&path).unwrap();
        assert_eq!(loaded, idx);
        loaded.verify_against_flat(&heap, 2).unwrap();
    }

    #[test]
    fn load_rejects_corruption() {
        let dir = std::env::temp_dir().join("nf2_index_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        let (heap, _) = heap_of(&[[1, 10]]);
        let idx = HashIndex::build_flat(&heap, 2, 0).unwrap();
        idx.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(HashIndex::load(&path).is_err());
        std::fs::write(&path, &bytes[..4]).unwrap();
        assert!(HashIndex::load(&path).is_err(), "truncated file rejected");
    }
}
