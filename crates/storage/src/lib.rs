//! # nf2-storage — the realization-view storage substrate
//!
//! §2 of the paper argues NFRs are powerful "not only as user view but
//! also as internal view … the reduction of the number of tuples will
//! contribute to the reduction of logical search space. We call this
//! level of view as realization view." This crate makes that concrete:
//!
//! * [`codec`] — compact binary tuple encoding with checksums;
//! * [`page`] — 8 KiB slotted pages;
//! * [`heap`] — page files with record ids and persistence;
//! * [`bufferpool`] — bounded page frames over a paged file, with clock
//!   eviction, pinning, and hit/miss accounting;
//! * [`index`] — secondary hash indexes (value → record ids) with
//!   persistence and integrity verification;
//! * [`dictionary`] — a concurrent interning dictionary;
//! * `wal` (crate-internal) — the sequenced group-commit write-ahead
//!   log shared by a table's per-shard writer lanes;
//! * [`table`] — [`table::NfTable`], the NF²-native engine
//!   (canonical maintenance + WAL + checkpoints + probe-counted lookups),
//!   and [`table::FlatTable`], the 1NF baseline it is measured
//!   against — including maintained secondary indexes, so the comparison
//!   is not against a strawman.

pub mod bufferpool;
pub mod codec;
pub mod dictionary;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod table;
pub(crate) mod wal;

pub use bufferpool::{BufferPool, PagedFile, PoolStats};
pub use dictionary::SharedDictionary;
pub use error::{Result, StorageError};
pub use heap::{HeapFile, RecordId};
pub use index::HashIndex;
pub use page::{Page, PAGE_SIZE};
pub use table::{FlatTable, NfTable, TableScan, TableSnapshot, TableStats};
