//! Slotted pages.
//!
//! Classic slotted-page layout in a fixed 8 KiB frame: a header and a slot
//! directory grow from the front, record payloads grow from the back. A
//! FNV-1a checksum over the payload region detects corruption on load.
//!
//! ```text
//! +--------+------------------+ ... free ... +-----------+-----------+
//! | header | slot 0 | slot 1 |               | record 1  | record 0  |
//! +--------+------------------+ ... free ... +-----------+-----------+
//! ```

use bytes::{Buf, BufMut, BytesMut};

use crate::codec::fnv1a64;
use crate::error::{Result, StorageError};

/// Fixed page size (8 KiB).
pub const PAGE_SIZE: usize = 8192;
/// Header: magic(4) + page_id(4) + slot_count(2) + free_end(2) + checksum(8).
const HEADER_SIZE: usize = 20;
/// Each slot: offset(2) + len(2). A zero-length slot is a tombstone.
const SLOT_SIZE: usize = 4;
const MAGIC: u32 = 0x4e46_3250; // "NF2P"

/// Maximum payload a single record may occupy.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// A slot index within a page.
pub type SlotId = u16;

/// An 8 KiB slotted page.
#[derive(Debug, Clone)]
pub struct Page {
    id: u32,
    /// Slot directory: (offset, len); len == 0 marks a tombstone.
    slots: Vec<(u16, u16)>,
    /// Record payload area, indexed by absolute page offsets.
    data: Box<[u8; PAGE_SIZE]>,
    /// Start of the used payload region (records occupy `free_end..`).
    free_end: usize,
}

impl Page {
    /// A fresh empty page.
    pub fn new(id: u32) -> Self {
        Self {
            id,
            slots: Vec::new(),
            data: Box::new([0u8; PAGE_SIZE]),
            free_end: PAGE_SIZE,
        }
    }

    /// The page id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Free bytes available for one more record (including its slot).
    pub fn free_space(&self) -> usize {
        let used_front = HEADER_SIZE + self.slots.len() * SLOT_SIZE;
        self.free_end.saturating_sub(used_front)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Number of live (non-tombstone) records.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|(_, len)| *len > 0).count()
    }

    /// Inserts a record, returning its slot. Fails when it cannot fit.
    ///
    /// Records must be non-empty: a zero-length slot is the tombstone
    /// encoding, and no tuple codec produces empty records.
    pub fn insert(&mut self, record: &[u8]) -> Result<SlotId> {
        if record.is_empty() {
            return Err(StorageError::InvalidRecord(
                "empty records are not storable".into(),
            ));
        }
        if record.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        if !self.fits(record.len()) {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: self.free_space().saturating_sub(SLOT_SIZE),
            });
        }
        let start = self.free_end - record.len();
        self.data[start..self.free_end].copy_from_slice(record);
        self.free_end = start;
        // Reuse a tombstone slot if available.
        if let Some(idx) = self.slots.iter().position(|(_, len)| *len == 0) {
            self.slots[idx] = (start as u16, record.len() as u16);
            return Ok(idx as SlotId);
        }
        self.slots.push((start as u16, record.len() as u16));
        Ok((self.slots.len() - 1) as SlotId)
    }

    /// Reads a record.
    pub fn get(&self, slot: SlotId) -> Result<&[u8]> {
        let (off, len) = *self
            .slots
            .get(slot as usize)
            .ok_or_else(|| StorageError::InvalidRecord(format!("slot {slot} out of range")))?;
        if len == 0 {
            return Err(StorageError::InvalidRecord(format!(
                "slot {slot} is deleted"
            )));
        }
        Ok(&self.data[off as usize..off as usize + len as usize])
    }

    /// Deletes a record (tombstones the slot). Space is reclaimed by
    /// [`compact`](Self::compact).
    pub fn delete(&mut self, slot: SlotId) -> Result<()> {
        let entry = self
            .slots
            .get_mut(slot as usize)
            .ok_or_else(|| StorageError::InvalidRecord(format!("slot {slot} out of range")))?;
        if entry.1 == 0 {
            return Err(StorageError::InvalidRecord(format!(
                "slot {slot} already deleted"
            )));
        }
        entry.1 = 0;
        Ok(())
    }

    /// Iterates `(slot, record)` pairs over live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        self.slots.iter().enumerate().filter_map(|(i, (off, len))| {
            if *len == 0 {
                None
            } else {
                Some((
                    i as SlotId,
                    &self.data[*off as usize..(*off + *len) as usize],
                ))
            }
        })
    }

    /// Rewrites the payload region dropping tombstoned space. Slot ids of
    /// live records are preserved.
    pub fn compact(&mut self) {
        let mut fresh = Box::new([0u8; PAGE_SIZE]);
        let mut end = PAGE_SIZE;
        let mut slots = self.slots.clone();
        for (i, (off, len)) in self.slots.iter().enumerate() {
            if *len == 0 {
                continue;
            }
            let len_us = *len as usize;
            end -= len_us;
            fresh[end..end + len_us]
                .copy_from_slice(&self.data[*off as usize..*off as usize + len_us]);
            slots[i] = (end as u16, *len);
        }
        // Trim trailing tombstones from the directory.
        while matches!(slots.last(), Some((_, 0))) {
            slots.pop();
        }
        self.data = fresh;
        self.slots = slots;
        self.free_end = end;
    }

    /// Serializes the page to exactly [`PAGE_SIZE`] bytes. The checksum
    /// covers the whole frame after the header, padding included, so a
    /// flipped bit anywhere in the body is detected on load.
    pub fn to_bytes(&self) -> BytesMut {
        let mut out = BytesMut::with_capacity(PAGE_SIZE);
        out.put_u32(MAGIC);
        out.put_u32(self.id);
        out.put_u16(self.slots.len() as u16);
        out.put_u16(self.free_end as u16);
        out.put_u64(0); // checksum placeholder
        for (off, len) in &self.slots {
            out.put_u16(*off);
            out.put_u16(*len);
        }
        out.extend_from_slice(&self.data[self.free_end..]);
        out.resize(PAGE_SIZE, 0);
        let checksum = fnv1a64(&out[HEADER_SIZE..]);
        out[12..20].copy_from_slice(&checksum.to_be_bytes());
        out
    }

    /// Deserializes a page, verifying magic, geometry and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page frame has {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let mut buf = bytes;
        let magic = buf.get_u32();
        if magic != MAGIC {
            return Err(StorageError::Corrupt(format!("bad page magic {magic:#x}")));
        }
        let id = buf.get_u32();
        let slot_count = buf.get_u16() as usize;
        let free_end = buf.get_u16() as usize;
        let checksum = buf.get_u64();
        if fnv1a64(&bytes[HEADER_SIZE..]) != checksum {
            return Err(StorageError::ChecksumMismatch { page_id: id });
        }
        if free_end > PAGE_SIZE || HEADER_SIZE + slot_count * SLOT_SIZE > free_end {
            return Err(StorageError::Corrupt("inconsistent page geometry".into()));
        }
        let body_len = slot_count * SLOT_SIZE + (PAGE_SIZE - free_end);
        if buf.len() < body_len {
            return Err(StorageError::Corrupt("page body truncated".into()));
        }
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            let off = buf.get_u16();
            let len = buf.get_u16();
            if len > 0
                && (usize::from(off) < free_end || usize::from(off) + usize::from(len) > PAGE_SIZE)
            {
                return Err(StorageError::Corrupt("slot points outside payload".into()));
            }
            slots.push((off, len));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data[free_end..].copy_from_slice(&buf[..PAGE_SIZE - free_end]);
        Ok(Self {
            id,
            slots,
            data,
            free_end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete_cycle() {
        let mut p = Page::new(7);
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1).unwrap(), b"hello");
        assert_eq!(p.get(s2).unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
        p.delete(s1).unwrap();
        assert!(p.get(s1).is_err());
        assert_eq!(p.live_count(), 1);
        assert!(p.delete(s1).is_err(), "double delete rejected");
    }

    #[test]
    fn tombstone_slots_are_reused() {
        let mut p = Page::new(0);
        let s1 = p.insert(b"a").unwrap();
        p.delete(s1).unwrap();
        let s2 = p.insert(b"b").unwrap();
        assert_eq!(s1, s2, "tombstone slot reused");
    }

    #[test]
    fn rejects_empty_records() {
        let mut p = Page::new(0);
        assert!(matches!(p.insert(b""), Err(StorageError::InvalidRecord(_))));
    }

    #[test]
    fn rejects_oversized_records() {
        let mut p = Page::new(0);
        let big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&big),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn fills_up_and_reports_space() {
        let mut p = Page::new(0);
        let rec = vec![0xabu8; 1000];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= 7, "should fit at least 7 KiB of records, got {n}");
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn compact_reclaims_space_and_preserves_slots() {
        let mut p = Page::new(0);
        let s1 = p.insert(&[1u8; 2000]).unwrap();
        let s2 = p.insert(&[2u8; 2000]).unwrap();
        let s3 = p.insert(&[3u8; 2000]).unwrap();
        p.delete(s2).unwrap();
        let before = p.free_space();
        p.compact();
        assert!(p.free_space() >= before + 2000);
        assert_eq!(p.get(s1).unwrap(), &[1u8; 2000][..]);
        assert_eq!(p.get(s3).unwrap(), &[3u8; 2000][..]);
        assert!(p.get(s2).is_err());
    }

    #[test]
    fn serialization_round_trips() {
        let mut p = Page::new(42);
        let s1 = p.insert(b"persistent").unwrap();
        p.insert(b"bytes").unwrap();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), PAGE_SIZE);
        let q = Page::from_bytes(&bytes).unwrap();
        assert_eq!(q.id(), 42);
        assert_eq!(q.get(s1).unwrap(), b"persistent");
        assert_eq!(q.live_count(), 2);
    }

    #[test]
    fn corruption_is_detected() {
        let mut p = Page::new(1);
        p.insert(b"guarded").unwrap();
        let mut bytes = p.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a payload byte
        assert!(matches!(
            Page::from_bytes(&bytes),
            Err(StorageError::ChecksumMismatch { page_id: 1 })
        ));
    }

    #[test]
    fn bad_magic_is_detected() {
        let p = Page::new(1);
        let mut bytes = p.to_bytes();
        bytes[0] = 0;
        assert!(matches!(
            Page::from_bytes(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_page_is_detected() {
        let p = Page::new(1);
        let bytes = p.to_bytes();
        assert!(Page::from_bytes(&bytes[..10]).is_err());
    }
}
