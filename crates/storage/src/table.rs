//! Storage-backed tables: the NF² engine and the 1NF baseline.
//!
//! [`NfTable`] is the paper's *realization view* (§2): the NFR is the
//! physical representation. Updates run the §4 incremental canonical
//! maintenance; durability follows the classic recipe — a write-ahead log
//! of flat-row operations plus page checkpoints of the NF² tuples.
//! [`FlatTable`] is the 1NF baseline storing one record per flat row.
//! Both count probes so the "reduction of logical search space" claim
//! (§2, §5) is measurable.
//!
//! ## Write path: routed per-shard commit pipeline
//!
//! Writers no longer serialize on one table lock. Each shard's writer
//! state ([`nf2_core::shard::ShardWriter`]) sits behind its own mutex
//! (a *lane*); a routed §4 point op locks exactly the lane its row
//! routes to, builds the replacement `Arc<ShardVersion>` there, appends
//! its WAL entry to the shared sequenced commit log (`crate::wal`), and
//! publishes through [`VersionCell::submit`] — whose short table-level
//! critical section coalesces racing commits from different shards into
//! a single epoch bump. Multi-shard operations (batches, checkpoints,
//! inspection views) acquire the lanes they touch in **ascending shard
//! index order**; that ordering discipline lives only in this module
//! (`lock_lane`/`lock_lanes`, enforced by `cargo xtask lint`) and is
//! what makes the pipeline deadlock-free.

use std::collections::HashMap;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use parking_lot::Mutex;

use nf2_core::bulk::{BatchSummary, Op};
use nf2_core::kernel::NestKernel;
use nf2_core::maintenance::CostCounter;
use nf2_core::mvcc::{ShardVersion, TableVersion, VersionCell};
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{AttrId, NestOrder, Schema};
use nf2_core::segment::ShardSegments;
use nf2_core::shard::{MaintenanceCost, ShardRouter, ShardSpec, ShardWriter, ShardedCanonical};
use nf2_core::tuple::{FlatTuple, NfTuple, TupleStore, TupleView, ValueSet};
use nf2_core::value::Atom;
use nf2_obs::Histogram;

use crate::codec::{
    decode_flat_tuple, decode_nf_tuple, encode_flat_tuple, encode_nf_tuple, get_varint, put_varint,
};
use crate::dictionary::SharedDictionary;
use crate::error::{Result, StorageError};
use crate::heap::{HeapFile, RecordId};
use crate::index::HashIndex;
use crate::wal::{CommitLog, WalEntry};

/// Probe and operation counters for the search-space experiments (E9) —
/// a point-in-time snapshot of [`SharedTableStats`].
///
/// # Tearing semantics
///
/// A snapshot is **not** an atomic cut across counters: each field is a
/// separate `Relaxed` load, so a snapshot taken while another thread is
/// mid-operation can mix counters from before and after that operation
/// (e.g. a scan's `lookups` bump without its `units_probed` settle).
/// Each individual counter is still exact and monotonic. Code that
/// reasons about *deltas* must therefore diff two whole snapshots taken
/// at quiescent points (`after.units_probed - before.units_probed`),
/// never re-load individual fields mid-measurement — the E21/E22
/// assertions and the analyze proptests follow this discipline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Number of lookup calls.
    pub lookups: u64,
    /// Logical units examined by lookups (NF² tuples or flat rows).
    pub units_probed: u64,
    /// Rows inserted since creation.
    pub inserts: u64,
    /// Rows deleted since creation.
    pub deletes: u64,
    /// Whole columnar segments skipped by zone-map refutation
    /// ([`NfTable::scan_shards_zoned`]) — their tuples were never
    /// probed, so they are *not* in `units_probed`.
    pub segments_skipped: u64,
    /// Version publications submitted by writers. Concurrent
    /// submissions may coalesce into fewer epoch bumps (the install
    /// leader drains racing shards under one bump), so this counts
    /// committed operations, not epochs — `epoch() <= epoch_installs`.
    pub epoch_installs: u64,
    /// MVCC snapshots pinned ([`NfTable::snapshot`]).
    pub snapshot_pins: u64,
    /// WAL flushes that reached the data directory: one per
    /// fsync-equivalent, however many writers' entries rode in the
    /// group (a flush finding its group already durable counts zero).
    pub wal_flushes: u64,
    /// Canonical-form rebuilds triggered by batch maintenance.
    pub rebuilds: u64,
    /// Wall time spent inside those rebuilds, in nanoseconds.
    pub rebuild_nanos: u64,
}

/// The live, concurrently-updated counters behind [`TableStats`].
///
/// Scan and lookup paths run lock-free under MVCC, so the counters are
/// atomics. Every access is `Relaxed`: these are statistical tallies —
/// monotonic counters with no cross-counter invariant readers could
/// rely on — so no ordering stronger than atomicity is needed.
#[derive(Debug, Default)]
pub struct SharedTableStats {
    lookups: AtomicU64,
    units_probed: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    segments_skipped: AtomicU64,
    epoch_installs: AtomicU64,
    snapshot_pins: AtomicU64,
    wal_flushes: AtomicU64,
    rebuilds: AtomicU64,
    rebuild_nanos: AtomicU64,
}

impl SharedTableStats {
    fn with(stats: TableStats) -> Self {
        Self {
            lookups: AtomicU64::new(stats.lookups),
            units_probed: AtomicU64::new(stats.units_probed),
            inserts: AtomicU64::new(stats.inserts),
            deletes: AtomicU64::new(stats.deletes),
            segments_skipped: AtomicU64::new(stats.segments_skipped),
            epoch_installs: AtomicU64::new(stats.epoch_installs),
            snapshot_pins: AtomicU64::new(stats.snapshot_pins),
            wal_flushes: AtomicU64::new(stats.wal_flushes),
            rebuilds: AtomicU64::new(stats.rebuilds),
            rebuild_nanos: AtomicU64::new(stats.rebuild_nanos),
        }
    }

    /// A point-in-time copy. Counters are read individually (`Relaxed`),
    /// so a snapshot taken during a concurrent scan may be mid-settle —
    /// each counter is still exact once the scans it observed finish.
    /// See [`TableStats`] for the tearing semantics and the
    /// whole-snapshot-delta discipline this implies.
    pub fn snapshot(&self) -> TableStats {
        TableStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            units_probed: self.units_probed.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            segments_skipped: self.segments_skipped.load(Ordering::Relaxed),
            epoch_installs: self.epoch_installs.load(Ordering::Relaxed),
            snapshot_pins: self.snapshot_pins.load(Ordering::Relaxed),
            wal_flushes: self.wal_flushes.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            rebuild_nanos: self.rebuild_nanos.load(Ordering::Relaxed),
        }
    }

    fn settle_scan(&self, yielded: u64, skipped: u64) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.units_probed.fetch_add(yielded, Ordering::Relaxed);
        self.segments_skipped.fetch_add(skipped, Ordering::Relaxed);
    }
}

/// An NF² table: canonical NFR as the physical representation — held as
/// a [`ShardedCanonical`] partitioned on the outermost nest attribute
/// (one shard by default) — with WAL + checkpoint durability and an
/// optional value index.
///
/// With more than one shard, §4 point maintenance routes to a single
/// shard (candidate probes drop by the shard count), batch appends
/// rebuild shards in parallel, [`scan`](NfTable::scan) concatenates the
/// per-shard tuple streams, and [`relation`](NfTable::relation) serves
/// the exact global canonical form from an epoch-keyed merge cache.
///
/// ## Concurrency (shard-snapshot MVCC, per-shard writer lanes)
///
/// The table is fully shareable (`&self` for every operation, including
/// mutations): the writer state is split into per-shard *lanes* — one
/// [`ShardWriter`] behind its own [`Mutex`] per shard — and every
/// committed state is *published* into a [`VersionCell`] as immutable
/// `Arc`-held [`ShardVersion`]s. Readers pin a [`TableSnapshot`] once
/// per statement and stream scans without taking any lock. A routed
/// point op locks only the lane its row routes to, so writers on
/// different shards build their replacement versions fully in parallel;
/// publication goes through [`VersionCell::submit`], whose table-level
/// critical section is just the pointer install — racing commits from
/// different shards coalesce there into a single epoch bump, preserving
/// the bump-by-{0,1} snapshot protocol pinned readers rely on.
///
/// Deadlock freedom: every multi-lane path acquires lanes in ascending
/// shard-index order through `lock_lanes`, and a single point op holds
/// exactly one lane. The lane guard is held across the whole commit
/// (mutate → WAL append → submit), so each shard has at most one
/// in-flight commit and its WAL entries appear in serial mutation
/// order.
#[derive(Debug)]
pub struct NfTable {
    name: String,
    dict: SharedDictionary,
    /// Immutable table metadata, copied out of the canonical store at
    /// construction so reads never lock for it.
    schema: Arc<Schema>,
    order: NestOrder,
    routing: ShardRouter,
    /// The published MVCC state: readers pin, writers install.
    versions: VersionCell,
    /// Per-shard writer lanes, indexed by shard id. Lock through
    /// `lock_lane`/`lock_lanes` only — ascending order is the
    /// deadlock-freedom contract (checked by `cargo xtask lint`).
    lanes: Vec<Mutex<ShardWriter>>,
    /// The sequenced group-commit WAL shared by all lanes.
    wal: CommitLog,
    /// (attr, value) → tuple positions at index-build time; dropped on
    /// any state-changing mutation.
    index: Mutex<Option<PointIndex>>,
    /// Group-commit window in microseconds (leader dwell before the
    /// fsync-equivalent); 0 = flush immediately. Engine-configurable.
    group_commit_us: AtomicU64,
    /// Microseconds writers spent blocked on contended lane locks
    /// (uncontended acquisitions record nothing).
    lock_wait_us: Histogram,
    /// Entries made durable per WAL group flush.
    wal_group_size: Histogram,
    /// Epoch-keyed merged-relation cache: `(epoch, merge)` of the last
    /// merge computed. A read at the same epoch reuses the `Arc`; a
    /// state-changing mutation bumps the epoch and the next read
    /// re-merges. No-op mutations leave the epoch — and the warm cache —
    /// alone, and a reader can never observe a half-invalidated cell
    /// (the pair is replaced atomically under its own lock).
    merged: Mutex<Option<(u64, Arc<NfRelation>)>>,
    stats: Arc<SharedTableStats>,
}

/// The secondary point-lookup index: (attr, value) → positions of the
/// canonical tuples containing that value.
type PointIndex = HashMap<(AttrId, Atom), Vec<usize>>;

impl NfTable {
    /// Creates an empty single-shard table.
    pub fn create(
        name: &str,
        attr_names: &[&str],
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self> {
        Self::create_sharded(name, attr_names, order, ShardSpec::single(), dict)
    }

    /// Creates an empty table partitioned by `spec` on the outermost
    /// nest attribute.
    pub fn create_sharded(
        name: &str,
        attr_names: &[&str],
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self> {
        let schema = Schema::new(name, attr_names)?;
        let canon = ShardedCanonical::new(schema, order, spec)?;
        Ok(Self::wrap(
            name,
            dict,
            canon,
            TableStats::default(),
            CommitLog::new(),
        ))
    }

    /// Builds a single-shard table from an existing 1NF relation by
    /// nesting from scratch.
    pub fn from_flat(
        name: &str,
        flat: &FlatRelation,
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self> {
        Self::from_flat_sharded(name, flat, order, ShardSpec::single(), dict)
    }

    /// Builds a sharded table from an existing 1NF relation: rows are
    /// routed, then every shard nests its own rows (in parallel).
    pub fn from_flat_sharded(
        name: &str,
        flat: &FlatRelation,
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self> {
        let canon = ShardedCanonical::from_flat(flat, order, spec)?;
        Ok(Self::wrap(
            name,
            dict,
            canon,
            TableStats::default(),
            CommitLog::new(),
        ))
    }

    /// Bulk-loads rows of atoms through the single-pass nest kernel: one
    /// sort-group pass per shard instead of per-row §4 maintenance. The
    /// fast path for cold loads; `repro` E16 measures it against batch
    /// appends.
    pub fn bulk_load_atoms<I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = FlatTuple>,
    {
        Self::bulk_load_atoms_sharded(name, attr_names, rows, order, ShardSpec::single(), dict)
    }

    /// [`bulk_load_atoms`](Self::bulk_load_atoms) into a sharded table:
    /// rows are routed first and every shard runs its own kernel pass,
    /// in parallel across shards.
    pub fn bulk_load_atoms_sharded<I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = FlatTuple>,
    {
        let schema = Schema::new(name, attr_names)?;
        let flat = FlatRelation::from_rows(schema, rows).map_err(StorageError::Model)?;
        let canon = ShardedCanonical::from_flat(&flat, order, spec)?;
        let loaded = flat.len() as u64;
        Ok(Self::wrap(
            name,
            dict,
            canon,
            TableStats {
                inserts: loaded,
                ..TableStats::default()
            },
            CommitLog::new(),
        ))
    }

    /// Bulk-loads rows of string values, interning every value into the
    /// shared dictionary first — query literals, WAL rows and bulk-loaded
    /// rows all resolve in one value space end-to-end.
    pub fn bulk_load_strs<'a, I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<&'a str>>,
    {
        Self::bulk_load_strs_sharded(name, attr_names, rows, order, ShardSpec::single(), dict)
    }

    /// [`bulk_load_strs`](Self::bulk_load_strs) into a sharded table.
    pub fn bulk_load_strs_sharded<'a, I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<&'a str>>,
    {
        let atoms: Vec<FlatTuple> = rows.into_iter().map(|row| dict.intern_row(&row)).collect();
        Self::bulk_load_atoms_sharded(name, attr_names, atoms, order, spec, dict)
    }

    /// Assembles a table around a sharded canonical relation — split
    /// into per-shard writer lanes — and publishes its initial versions
    /// at epoch 0.
    fn wrap(
        name: &str,
        dict: SharedDictionary,
        canon: ShardedCanonical,
        stats: TableStats,
        wal: CommitLog,
    ) -> Self {
        Self {
            name: name.to_owned(),
            dict,
            schema: canon.schema().clone(),
            order: canon.order().clone(),
            routing: canon.router().clone(),
            versions: VersionCell::new(canon.versions()),
            lanes: canon.into_writers().into_iter().map(Mutex::new).collect(),
            wal,
            index: Mutex::new(None),
            group_commit_us: AtomicU64::new(0),
            lock_wait_us: Histogram::new(),
            wal_group_size: Histogram::new(),
            merged: Mutex::new(None),
            stats: Arc::new(SharedTableStats::with(stats)),
        }
    }

    /// Locks one shard's writer lane — the single per-shard lock
    /// acquisition point. Contended acquisitions (another writer holds
    /// the lane) record their wait in the `lock_wait_us` histogram;
    /// the uncontended fast path costs one `try_lock`.
    fn lock_lane(&self, shard: usize) -> std::sync::MutexGuard<'_, ShardWriter> {
        if let Some(guard) = self.lanes[shard].try_lock() {
            return guard;
        }
        let sw = nf2_obs::Stopwatch::start();
        let guard = self.lanes[shard].lock();
        self.lock_wait_us.record(sw.elapsed_us());
        guard
    }

    /// Locks the given lanes in **ascending shard-index order** — the
    /// deadlock-freedom discipline every multi-shard path follows.
    /// `shards` must be sorted and deduplicated.
    fn lock_lanes(&self, shards: &[usize]) -> Vec<std::sync::MutexGuard<'_, ShardWriter>> {
        debug_assert!(
            shards.windows(2).all(|w| w[0] < w[1]),
            "lanes must be acquired in ascending shard order"
        );
        shards.iter().map(|&s| self.lock_lane(s)).collect()
    }

    /// Locks every lane (ascending), quiescing all writers — the
    /// whole-table critical section for checkpoints and inspection.
    fn lock_all_lanes(&self) -> Vec<std::sync::MutexGuard<'_, ShardWriter>> {
        let all: Vec<usize> = (0..self.lanes.len()).collect();
        self.lock_lanes(&all)
    }

    /// Publishes already-locked lanes' current versions through the
    /// coalescing submit protocol. Callers must hold the lane guards
    /// they pass in (that is what bounds each shard to one in-flight
    /// commit).
    fn submit_lanes(&self, lanes: &[(usize, &ShardWriter)]) {
        let versions = lanes
            .iter()
            .map(|&(shard, lane)| (shard, Arc::clone(lane.version())))
            .collect();
        self.versions.submit(versions);
        self.stats.epoch_installs.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies a batch of flat-row operations through the auto strategy
    /// **per shard** (§4 incremental below the rebuild threshold, a
    /// kernel re-nest above it — shards rebuild concurrently on scoped
    /// threads), logging every operation to the WAL. Returns the batch
    /// summary and whether any shard took the rebuild arm.
    ///
    /// Each shard's kernel scratch is reused across appends, so a long
    /// ingest stream pays the rebuild arm's allocations once per shard.
    pub fn append_batch(&self, ops: &[Op]) -> Result<(BatchSummary, bool)> {
        // Validate the whole batch up front: arity errors are the only
        // failure mode below, so rejecting them here keeps the batch
        // atomic — on Err the relation, WAL and index are all untouched.
        let arity = self.schema.arity();
        for op in ops {
            if op.row().len() != arity {
                return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                    expected: arity,
                    got: op.row().len(),
                }));
            }
        }
        // Route the batch: one sub-batch per shard, in the original
        // operation order within each shard.
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); self.shard_count()];
        for op in ops {
            per_shard[self.routing.route_row(op.row())].push(op.clone());
        }
        let touched: Vec<usize> = (0..per_shard.len())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();
        if touched.is_empty() {
            return Ok((BatchSummary::default(), false));
        }
        let mut lanes = self.lock_lanes(&touched);
        let sw = nf2_obs::Stopwatch::start();
        let mut outcomes: Vec<Option<nf2_core::Result<(BatchSummary, bool)>>> =
            (0..touched.len()).map(|_| None).collect();
        // Fan the sub-batches across scoped threads — each lane's
        // rebuild/incremental arm runs concurrently, exactly like the
        // shard-parallel rebuild the monolithic store used to do.
        std::thread::scope(|scope| {
            let mut slots = outcomes.iter_mut();
            for (lane, &shard) in lanes.iter_mut().zip(&touched) {
                let slot = slots.next().expect("one outcome slot per touched lane");
                let batch = &per_shard[shard];
                let lane: &mut ShardWriter = lane;
                if touched.len() == 1 {
                    *slot = Some(lane.apply_batch(batch));
                } else {
                    scope.spawn(move || *slot = Some(lane.apply_batch(batch)));
                }
            }
        });
        let mut summary = BatchSummary::default();
        let mut rebuilds = 0u64;
        for outcome in outcomes {
            let (s, rebuilt) = outcome
                .expect("scoped threads filled every slot")
                .map_err(StorageError::Model)?;
            summary.inserted += s.inserted;
            summary.deleted += s.deleted;
            summary.noops += s.noops;
            rebuilds += u64::from(rebuilt);
        }
        let rebuilt = rebuilds > 0;
        if rebuilt {
            // Attribute the batch's wall time to the rebuild series only
            // when a shard actually took the rebuild arm — incremental
            // batches stay out of the rebuild histogram.
            self.stats.rebuilds.fetch_add(rebuilds, Ordering::Relaxed);
            self.stats
                .rebuild_nanos
                .fetch_add(sw.elapsed_nanos(), Ordering::Relaxed);
        }
        if summary.inserted + summary.deleted > 0 {
            *self.index.lock() = None;
            // Publish every shard the batch routed to through one
            // submit. A shard whose sub-batch turned out to be all
            // no-ops re-installs its existing Arc — pointer-identical,
            // so pinned and pruned readers are untouched. A batch with
            // no state change at all skips the bump entirely, keeping
            // the epoch-keyed merge cache warm.
            let locked: Vec<(usize, &ShardWriter)> = touched
                .iter()
                .zip(lanes.iter())
                .map(|(&shard, lane)| (shard, &**lane))
                .collect();
            self.submit_lanes(&locked);
        }
        // WAL replay tolerates no-ops (insert/delete return false), so the
        // whole batch is logged verbatim — while the lanes are still
        // held, so no racing point op can interleave inside the batch's
        // log footprint on any touched shard — and replays to the same
        // state.
        self.wal.extend(ops.iter().map(|op| match op {
            Op::Insert(row) => WalEntry::Insert(row.clone()),
            Op::Delete(row) => WalEntry::Delete(row.clone()),
        }));
        self.stats
            .inserts
            .fetch_add(summary.inserted as u64, Ordering::Relaxed);
        self.stats
            .deletes
            .fetch_add(summary.deleted as u64, Ordering::Relaxed);
        Ok((summary, rebuilt))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The nest order the table is canonical for.
    pub fn order(&self) -> &NestOrder {
        &self.order
    }

    /// The shard specification the table is partitioned by.
    pub fn shard_spec(&self) -> &ShardSpec {
        self.routing.spec()
    }

    /// Number of shards (1 unless created through a `_sharded`
    /// constructor).
    pub fn shard_count(&self) -> usize {
        self.routing.shard_count()
    }

    /// An assembled view of the table's sharded canonical store.
    ///
    /// Quiesces writers momentarily (every lane locked in ascending
    /// order), snapshots each lane's version, and reassembles a
    /// [`ShardedCanonical`] around them — an inspection/verification
    /// surface, not a fast path. The returned view is owned: the lanes
    /// are released before it is handed back, so holding it blocks
    /// nothing.
    pub fn sharded(&self) -> ShardedView {
        let lanes = self.lock_all_lanes();
        let versions: Vec<Arc<ShardVersion>> =
            lanes.iter().map(|l| Arc::clone(l.version())).collect();
        let segment_rows = lanes.first().map_or(1, |l| l.segment_rows());
        drop(lanes);
        let store = ShardedCanonical::from_versions(
            self.schema.clone(),
            self.order.clone(),
            self.routing.spec().clone(),
            versions,
            segment_rows,
        )
        .expect("lane versions always match the table's own shard spec");
        ShardedView { store }
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &SharedDictionary {
        &self.dict
    }

    /// Pins the current MVCC snapshot: the epoch and every shard's
    /// published version, grabbed atomically. All statement-level reads
    /// go through a snapshot so one statement sees one table state.
    pub fn snapshot(&self) -> TableSnapshot {
        self.stats.snapshot_pins.fetch_add(1, Ordering::Relaxed);
        TableSnapshot {
            version: self.versions.pin(),
            routing: self.routing.clone(),
            stats: Arc::clone(&self.stats),
        }
    }

    /// The current epoch: bumped exactly once per state-changing
    /// statement or batch. Epoch 0 is the freshly created/loaded state.
    pub fn epoch(&self) -> u64 {
        self.versions.epoch()
    }

    /// The current NFR — always the exact global canonical form
    /// `ν_P(R*)`, regardless of shard count, merged from the pinned
    /// snapshot and cached per epoch: repeated reads at one epoch share
    /// one `Arc`, and a no-op mutation (which does not bump the epoch)
    /// keeps the cache warm.
    pub fn relation(&self) -> Arc<NfRelation> {
        let pin = self.versions.pin();
        let mut cache = self.merged.lock();
        if let Some((epoch, rel)) = &*cache {
            if *epoch == pin.epoch() {
                return Arc::clone(rel);
            }
        }
        let rel = Arc::new(merge_version(&self.schema, &self.routing, &pin));
        *cache = Some((pin.epoch(), Arc::clone(&rel)));
        rel
    }

    /// NF² tuple count of the global canonical form (the logical search
    /// space size).
    pub fn tuple_count(&self) -> usize {
        self.relation().tuple_count()
    }

    /// Flat row count (`|R*|`).
    pub fn flat_count(&self) -> u128 {
        self.versions.pin().flat_count()
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> TableStats {
        self.stats.snapshot()
    }

    /// Accumulated §4 maintenance cost over the table's lifetime
    /// (summed across shards).
    pub fn maintenance_cost(&self) -> CostCounter {
        self.maintenance_breakdown().total
    }

    /// The per-shard maintenance-cost breakdown, aggregated from the
    /// per-lane counters under a whole-table quiesce.
    pub fn maintenance_breakdown(&self) -> MaintenanceCost {
        let lanes = self.lock_all_lanes();
        let mut breakdown = MaintenanceCost::new(lanes.len());
        for (shard, lane) in lanes.iter().enumerate() {
            breakdown.per_shard[shard] = *lane.cost();
            breakdown.total.accumulate(lane.cost());
        }
        breakdown
    }

    /// Interns string values into a flat row for this schema.
    pub fn row_from_strs(&self, values: &[&str]) -> Result<FlatTuple> {
        if values.len() != self.schema().arity() {
            return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                expected: self.schema().arity(),
                got: values.len(),
            }));
        }
        Ok(self.dict.intern_row(values))
    }

    /// Inserts a row of string values. Returns `true` if new.
    pub fn insert_row(&self, values: &[&str]) -> Result<bool> {
        let row = self.row_from_strs(values)?;
        self.insert_atoms(row)
    }

    /// Inserts a flat row of atoms via §4 maintenance (routed to one
    /// shard), logging to the WAL.
    ///
    /// A new version is published — and the epoch bumped — exactly when
    /// the row was fresh: a no-op duplicate leaves the canonical shards
    /// untouched, so the cached merge at the current epoch stays valid
    /// (dropping it would force a full re-merge for nothing). This
    /// conditional form also covers the compensating mutations a
    /// `ROLLBACK` replays: undo entries are recorded only for operations
    /// that changed state, and replaying them in reverse order
    /// re-applies each one against exactly the state it inverts, so
    /// every compensating call *is* state-changing and publishes here
    /// (the table- and session-level rollback regression tests pin
    /// this).
    pub fn insert_atoms(&self, row: FlatTuple) -> Result<bool> {
        self.check_row_arity(row.len())?;
        let shard = self.routing.route_row(&row);
        let mut lane = self.lock_lane(shard);
        let fresh = lane
            .insert_counted(row.clone())
            .map_err(StorageError::Model)?;
        if fresh {
            *self.index.lock() = None;
            // WAL append happens under the lane lock so this shard's
            // entries hit the sequenced log in serial mutation order.
            self.wal.append(WalEntry::Insert(row));
            self.submit_lanes(&[(shard, &*lane)]);
            self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        }
        Ok(fresh)
    }

    /// Deletes a row of string values. Returns `true` if it existed.
    pub fn delete_row(&self, values: &[&str]) -> Result<bool> {
        let row = self.row_from_strs(values)?;
        self.delete_atoms(&row)
    }

    /// Deletes a flat row of atoms via §4 maintenance (routed to one
    /// shard), logging to the WAL. A version is published (epoch bump)
    /// when the row was present — see
    /// [`insert_atoms`](Self::insert_atoms) for why this conditional
    /// form also covers the rollback/undo path.
    pub fn delete_atoms(&self, row: &[Atom]) -> Result<bool> {
        self.check_row_arity(row.len())?;
        let shard = self.routing.route_row(row);
        let mut lane = self.lock_lane(shard);
        let hit = lane.delete_counted(row).map_err(StorageError::Model)?;
        if hit {
            *self.index.lock() = None;
            self.wal.append(WalEntry::Delete(row.to_vec()));
            self.submit_lanes(&[(shard, &*lane)]);
            self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(hit)
    }

    /// Rejects rows of the wrong arity before routing (the router
    /// indexes the routing attribute, so arity must hold first).
    fn check_row_arity(&self, got: usize) -> Result<()> {
        if got != self.schema.arity() {
            return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                expected: self.schema.arity(),
                got,
            }));
        }
        Ok(())
    }

    /// Whether the table contains the flat row (`searcht` against
    /// exactly one shard of the current snapshot).
    pub fn contains(&self, row: &[Atom]) -> bool {
        let pin = self.versions.pin();
        let shard = self.routing.route_row(row);
        pin.shard(shard).contains(row)
    }

    /// A zero-copy, probe-counted scan over the stored NF² tuples — the
    /// per-shard tuple streams of the *current snapshot*, concatenated
    /// in shard order.
    ///
    /// The iterator yields [`TupleView`]s straight out of the pinned
    /// shard versions — no clone, no merge, no lock held while
    /// streaming — and counts every yielded tuple, flushing the total
    /// into [`stats`](Self::stats) (`lookups += 1`, `units_probed +=
    /// yielded`) when dropped. Streaming query cursors ride on this: a
    /// cursor that stops after the first tuple is charged one probe,
    /// not a full relation's worth — which is also how tests assert
    /// that a cursor did *not* materialize its input.
    ///
    /// On a multi-shard table a global canonical tuple whose outermost
    /// set spans shards streams as one tuple per shard; the concatenation
    /// is a valid NFR with the same `R*`, so query semantics (selections,
    /// joins, counts, expansions) are unchanged.
    pub fn scan(&self) -> TableScan {
        self.snapshot().scan()
    }

    /// [`TableSnapshot::scan_shards`] against a freshly pinned snapshot.
    pub fn scan_shards(&self, shards: &[usize]) -> TableScan {
        self.snapshot().scan_shards(shards)
    }

    /// [`TableSnapshot::scan_shards_zoned`] against a freshly pinned
    /// snapshot.
    pub fn scan_shards_zoned(&self, shards: &[usize], zones: &[(AttrId, ValueSet)]) -> TableScan {
        self.snapshot().scan_shards_zoned(shards, zones)
    }

    /// [`TableSnapshot::zone_skip_counts`] against a freshly pinned
    /// snapshot.
    pub fn zone_skip_counts(
        &self,
        shards: &[usize],
        zones: &[(AttrId, ValueSet)],
    ) -> Vec<(usize, usize)> {
        self.snapshot().zone_skip_counts(shards, zones)
    }

    /// Changes the target tuples-per-segment on the backing store,
    /// re-tiles every fresh shard and publishes the re-tiled versions.
    /// Test and experiment knob.
    pub fn set_segment_rows(&self, rows: usize) {
        let mut lanes = self.lock_all_lanes();
        for lane in lanes.iter_mut() {
            lane.set_segment_rows(rows);
        }
        // Holding every lane means no submit is in flight, so the
        // whole-table install cannot race a coalescing leader.
        self.versions
            .install_all(lanes.iter().map(|l| Arc::clone(l.version())).collect());
    }

    /// The value router the table's shards are partitioned by — what a
    /// query planner asks to turn an outer-attribute predicate into a
    /// shard set for [`scan_shards`](Self::scan_shards).
    pub fn routing(&self) -> &nf2_core::shard::ShardRouter {
        &self.routing
    }

    /// Scan lookup: NF² tuples whose `attr` component contains `value`.
    /// Probes every tuple (counted) — the realization-view win is that
    /// there are far fewer tuples than rows.
    pub fn lookup_scan(&self, attr: AttrId, value: Atom) -> Vec<NfTuple> {
        let rel = self.relation();
        let mut probed = 0u64;
        let mut hits = Vec::new();
        for t in rel.tuples() {
            probed += 1;
            if t.component(attr).contains(value) {
                hits.push(t.clone());
            }
        }
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.stats.units_probed.fetch_add(probed, Ordering::Relaxed);
        hits
    }

    /// Builds the (attr, value) → tuples index over the current state.
    ///
    /// The index is held in the writer state and dropped on any
    /// state-changing mutation, so an index that exists always describes
    /// the current epoch's merged relation.
    pub fn build_index(&self) {
        let rel = self.relation();
        let mut index: HashMap<(AttrId, Atom), Vec<usize>> = HashMap::new();
        for (pos, t) in rel.tuples().iter().enumerate() {
            for attr in 0..self.schema.arity() {
                for v in t.component(attr).iter() {
                    index.entry((attr, v)).or_default().push(pos);
                }
            }
        }
        *self.index.lock() = Some(index);
    }

    /// Indexed lookup; probes only the posting list (counted). Requires
    /// [`build_index`](Self::build_index) since the last mutation.
    pub fn lookup_indexed(&self, attr: AttrId, value: Atom) -> Result<Vec<NfTuple>> {
        let rel = self.relation();
        let guard = self.index.lock();
        let index = guard.as_ref().ok_or_else(|| {
            StorageError::InvalidRecord("index not built (or invalidated by a mutation)".into())
        })?;
        let tuples = rel.tuples();
        let hits = index
            .get(&(attr, value))
            .map(|positions| {
                self.stats
                    .units_probed
                    .fetch_add(positions.len() as u64, Ordering::Relaxed);
                positions.iter().map(|&p| tuples[p].clone()).collect()
            })
            .unwrap_or_default();
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        Ok(hits)
    }

    /// Checkpoints to `dir`: meta + page file of NF² tuples (the merged
    /// global canonical form); truncates the WAL.
    ///
    /// Holds every lane lock (ascending) across the whole checkpoint so
    /// the meta, pages and WAL truncation describe one consistent state
    /// (every mutation publishes before releasing its lane, so the
    /// published snapshot and the lane state agree here).
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let lanes = self.lock_all_lanes();
        let versions: Vec<Arc<ShardVersion>> =
            lanes.iter().map(|l| Arc::clone(l.version())).collect();
        let segment_rows = lanes.first().map_or(1, |l| l.segment_rows());
        self.write_meta_for(&versions, segment_rows, &meta_path(dir, &self.name))?;
        let store = ShardedCanonical::from_versions(
            self.schema.clone(),
            self.order.clone(),
            self.routing.spec().clone(),
            versions,
            segment_rows,
        )
        .expect("lane versions always match the table's own shard spec");
        let mut heap = HeapFile::new();
        let mut buf = BytesMut::new();
        let merged = store.to_relation();
        for t in merged.tuples() {
            buf.clear();
            encode_nf_tuple(t, &mut buf);
            heap.insert(&buf)?;
        }
        heap.save(&pages_path(dir, &self.name))?;
        self.wal.truncate(&wal_path(dir, &self.name))?;
        drop(lanes);
        Ok(())
    }

    /// Makes buffered WAL entries durable without checkpointing, via
    /// the group-commit protocol: concurrent flushers elect one leader
    /// per group and the whole sequenced log lands in one
    /// fsync-equivalent. `wal_flushes` counts actual writes — a flush
    /// whose group a racing leader already made durable counts zero —
    /// and each group's size is recorded in the `wal.group.size`
    /// histogram.
    pub fn flush_wal(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let window = self.group_commit_us.load(Ordering::Relaxed);
        if let Some(group) = self.wal.flush_to(&wal_path(dir, &self.name), window)? {
            self.stats.wal_flushes.fetch_add(1, Ordering::Relaxed);
            self.wal_group_size.record(group);
        }
        Ok(())
    }

    /// Sets the group-commit window: how long an elected flush leader
    /// dwells (microseconds) before its fsync-equivalent, letting
    /// concurrent writers' entries join the group. 0 flushes
    /// immediately. Engine wiring (`EngineBuilder::group_commit`).
    pub fn set_group_commit_us(&self, us: u64) {
        self.group_commit_us.store(us, Ordering::Relaxed);
    }

    /// The configured group-commit window in microseconds.
    pub fn group_commit_us(&self) -> u64 {
        self.group_commit_us.load(Ordering::Relaxed)
    }

    /// Replaces the write-path histogram handles with shared ones —
    /// registry-backed clones, so the engine's metrics snapshot exports
    /// lane lock waits and WAL group sizes without polling the table.
    /// Called at table registration, before the table is shared.
    pub fn set_write_metrics(&mut self, lock_wait_us: Histogram, wal_group_size: Histogram) {
        self.lock_wait_us = lock_wait_us;
        self.wal_group_size = wal_group_size;
    }

    /// Opens a table from `dir`: loads the checkpoint pages, restores the
    /// persisted shard spec, then replays the WAL (every entry routed
    /// through the sharded store like a live mutation).
    ///
    /// Replay is prefix-tolerant: a crash in the middle of a group
    /// flush leaves a torn byte tail, and because the group-commit log
    /// rewrites the whole sequenced file per flush, any byte prefix
    /// decodes to an entry prefix — replay stops at the first torn
    /// entry, which is exactly the last durably committed prefix. The
    /// replayed entries re-seed the in-memory commit log as
    /// already-durable, so a later flush re-writes them instead of
    /// silently dropping them.
    pub fn open(dir: &Path, name: &str, dict: SharedDictionary) -> Result<Self> {
        let (attr_names, order_attrs, dict_entries, spec, persisted_segments) =
            read_meta(&meta_path(dir, name))?;
        // Restore dictionary contents (atom ids are dense from 0).
        for entry in &dict_entries {
            dict.intern(entry);
        }
        let refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
        let schema = Schema::new(name, &refs)?;
        let arity = schema.arity();
        let order = NestOrder::new(order_attrs, arity).map_err(StorageError::Model)?;
        let heap = HeapFile::load(&pages_path(dir, name))?;
        let mut tuples = Vec::with_capacity(heap.record_count());
        for (_, rec) in heap.iter() {
            let mut slice = rec;
            tuples.push(decode_nf_tuple(&mut slice, arity)?);
        }
        let rel = NfRelation::from_tuples(schema.clone(), tuples)?;
        let flat = rel.expand();
        let mut canon = ShardedCanonical::from_flat(&flat, order, spec)?;
        let wal_bytes = std::fs::read(wal_path(dir, name)).unwrap_or_default();
        // Validate the rebuilt segments against the persisted synopsis
        // *before* WAL replay (replayed point ops legitimately mark
        // shards stale again). The synopsis describes the table state at
        // write_meta time, which is only the page state when no WAL
        // entries are pending — a meta flushed mid-stream (flush_wal +
        // write_meta) is ahead of the checkpoint pages, so it cannot be
        // checked against them.
        if let Some(persisted) = &persisted_segments {
            canon.set_segment_rows(persisted.segment_rows);
            if wal_bytes.is_empty() {
                check_persisted_segments(&canon, persisted)?;
            }
        }
        // Replay the WAL up to the first torn entry (see above).
        let mut slice: &[u8] = &wal_bytes;
        let mut entries = Vec::new();
        while !slice.is_empty() {
            match WalEntry::decode(&mut slice, arity) {
                Ok(entry) => entries.push(entry),
                Err(_) => break,
            }
        }
        for entry in &entries {
            match entry {
                WalEntry::Insert(row) => {
                    canon.insert(row.clone())?;
                }
                WalEntry::Delete(row) => {
                    canon.delete(row)?;
                }
            }
        }
        Ok(Self::wrap(
            name,
            dict,
            canon,
            TableStats::default(),
            CommitLog::with_durable(entries),
        ))
    }

    /// Writes the meta file describing the current table state — what a
    /// checkpoint records, without touching pages or WAL. Quiesces the
    /// lanes to collect a consistent synopsis.
    pub fn write_meta(&self, path: &Path) -> Result<()> {
        let lanes = self.lock_all_lanes();
        let versions: Vec<Arc<ShardVersion>> =
            lanes.iter().map(|l| Arc::clone(l.version())).collect();
        let segment_rows = lanes.first().map_or(1, |l| l.segment_rows());
        drop(lanes);
        self.write_meta_for(&versions, segment_rows, path)
    }

    /// The meta serializer proper, fed a consistent set of shard
    /// versions (collected under lane locks by the caller).
    fn write_meta_for(
        &self,
        versions: &[Arc<ShardVersion>],
        segment_rows: usize,
        path: &Path,
    ) -> Result<()> {
        let mut buf = BytesMut::new();
        let schema = self.schema();
        put_varint(&mut buf, schema.arity() as u64);
        for name in schema.attr_names() {
            put_varint(&mut buf, name.len() as u64);
            buf.extend_from_slice(name.as_bytes());
        }
        for &a in self.order.as_slice() {
            put_varint(&mut buf, a as u64);
        }
        // Dictionary contents in atom order.
        let snap = self.dict.snapshot();
        put_varint(&mut buf, snap.len() as u64);
        for id in 0..snap.len() as u32 {
            let name = snap.resolve(Atom(id)).expect("dense atom ids");
            put_varint(&mut buf, name.len() as u64);
            buf.extend_from_slice(name.as_bytes());
        }
        // Shard spec: tag byte, then the spec parameters.
        match self.shard_spec() {
            ShardSpec::Hash { shards } => {
                buf.put_u8(0);
                put_varint(&mut buf, *shards as u64);
            }
            ShardSpec::Range { boundaries } => {
                buf.put_u8(1);
                put_varint(&mut buf, boundaries.len() as u64);
                for b in boundaries {
                    put_varint(&mut buf, u64::from(b.id()));
                }
            }
        }
        // Per-shard segment metadata (the zone-map synopsis): target
        // tuples-per-segment, then per shard a fresh/stale flag and,
        // when fresh, each segment's row count, distinct-outer estimate
        // and per-attribute min/max codes. open() re-derives segments
        // from the checkpoint pages and validates them against this.
        put_varint(&mut buf, segment_rows as u64);
        put_varint(&mut buf, versions.len() as u64);
        for version in versions {
            let ss = version.segments();
            if !ss.is_fresh() {
                buf.put_u8(0);
                continue;
            }
            buf.put_u8(1);
            put_varint(&mut buf, ss.segment_count() as u64);
            for seg in ss.segments() {
                put_varint(&mut buf, seg.rows() as u64);
                put_varint(&mut buf, seg.distinct_outer() as u64);
                for a in 0..schema.arity() {
                    put_varint(&mut buf, u64::from(seg.min(a).id()));
                    put_varint(&mut buf, u64::from(seg.max(a).id()));
                }
            }
        }
        let checksum = crate::codec::fnv1a64(&buf);
        let mut out = BytesMut::with_capacity(buf.len() + 8);
        out.put_u64(checksum);
        out.extend_from_slice(&buf);
        std::fs::write(path, &out)?;
        Ok(())
    }
}

/// Merges a pinned [`TableVersion`] into the exact global canonical
/// form `ν_P(R*)` — the snapshot-side twin of
/// [`ShardedCanonical::to_relation`], computed from published versions
/// so it never needs the writer lock.
fn merge_version(schema: &Arc<Schema>, routing: &ShardRouter, pin: &TableVersion) -> NfRelation {
    if pin.shard_count() == 1 {
        return pin.shard(0).relation().clone();
    }
    let tuples: Vec<NfTuple> = pin
        .shards()
        .iter()
        .flat_map(|s| s.tuples().iter().cloned())
        .collect();
    if tuples.is_empty() {
        return NfRelation::new(schema.clone());
    }
    let attr = routing
        .attr()
        .expect("multi-shard relations have a routing attribute");
    let concat = NfRelation::from_disjoint_tuples(schema.clone(), tuples)
        .expect("per-shard tuples carry the shared schema arity");
    NestKernel::new().nest_once(&concat, attr)
}

/// An owned, read-only assembly of the table's [`ShardedCanonical`]
/// store — what [`NfTable::sharded`] hands out for inspection and
/// verification surfaces. Holds `Arc` snapshots of the lane versions
/// taken under a momentary whole-table quiesce; no lock is held while
/// the view is alive.
pub struct ShardedView {
    store: ShardedCanonical,
}

impl std::ops::Deref for ShardedView {
    type Target = ShardedCanonical;

    fn deref(&self) -> &ShardedCanonical {
        &self.store
    }
}

/// A pinned, immutable view of one table at one epoch — the reader half
/// of the MVCC protocol.
///
/// A snapshot is pinned once per statement ([`NfTable::snapshot`]) and
/// every scan the statement runs goes against it: concurrent writers
/// install new versions without disturbing it, so one statement sees
/// one table state no matter how long its cursor streams. Dropping the
/// snapshot releases the pinned shard versions.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    version: Arc<TableVersion>,
    routing: ShardRouter,
    stats: Arc<SharedTableStats>,
}

impl TableSnapshot {
    /// The epoch this snapshot was pinned at.
    pub fn epoch(&self) -> u64 {
        self.version.epoch()
    }

    /// The pinned per-shard versions.
    pub fn version(&self) -> &Arc<TableVersion> {
        &self.version
    }

    /// The value router (shard pruning resolves against the same
    /// routing the pinned versions were partitioned by).
    pub fn routing(&self) -> &ShardRouter {
        &self.routing
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.version.shard_count()
    }

    /// One pinned shard's columnar segment synopsis.
    pub fn shard_segments(&self, shard: usize) -> &ShardSegments {
        self.version.shard(shard).segments()
    }

    /// NF² tuple count across the pinned shards.
    pub fn tuple_count(&self) -> usize {
        self.version.tuple_count()
    }

    /// Flat row count (`|R*|`) of the pinned state.
    pub fn flat_count(&self) -> u128 {
        self.version.flat_count()
    }

    /// Whether the pinned state contains the flat row.
    pub fn contains(&self, row: &[Atom]) -> bool {
        let shard = self.routing.route_row(row);
        self.version.shard(shard).contains(row)
    }

    /// A zero-copy, probe-counted scan over every pinned shard in shard
    /// order — see [`NfTable::scan`] for semantics and probe
    /// accounting.
    pub fn scan(&self) -> TableScan {
        let all: Vec<usize> = (0..self.shard_count()).collect();
        self.scan_shards(&all)
    }

    /// A zero-copy, probe-counted scan restricted to the given shards
    /// (out-of-range ids are ignored). This is the storage half of
    /// **shard pruning**: a selection that fixes the outermost nest
    /// attribute resolves its shard set through
    /// [`routing`](Self::routing) and scans only those shards — the
    /// skipped shards' tuples are never yielded, so they never show up
    /// in the table's stats either.
    ///
    /// Probe accounting uses **one** counter across all selected
    /// shards, settled once on drop — concatenating shard streams must
    /// never double-count, even when a downstream `take(n)` stops
    /// mid-shard.
    pub fn scan_shards(&self, shards: &[usize]) -> TableScan {
        let parts = shards
            .iter()
            .filter_map(|&i| self.version.shards().get(i))
            .map(|v| {
                let len = v.tuples().len();
                (Arc::clone(v), 0..len)
            })
            .collect();
        TableScan {
            parts,
            part: 0,
            idx: 0,
            stats: Arc::clone(&self.stats),
            yielded: 0,
            skipped: 0,
        }
    }

    /// A zero-copy, probe-counted scan over `shards` that additionally
    /// skips whole columnar segments whose zone maps refute any of the
    /// `zones` conjuncts — `(attr, values)` pairs meaning "the `attr`
    /// component must intersect `values`". A segment whose `[min, max]`
    /// range for `attr` excludes every value in `values` cannot hold a
    /// matching tuple, so its tuples are never yielded (and never
    /// probe-counted); the skip itself is tallied in
    /// [`TableStats::segments_skipped`].
    ///
    /// Shards whose segments are stale (point maintenance since the
    /// last rebuild) fall back to their full tuple slice — zone maps
    /// are an optimization, never a semantic filter, so callers still
    /// apply the real predicate downstream.
    pub fn scan_shards_zoned(&self, shards: &[usize], zones: &[(AttrId, ValueSet)]) -> TableScan {
        let mut parts: Vec<(Arc<ShardVersion>, Range<usize>)> = Vec::new();
        let mut skipped = 0u64;
        for &i in shards {
            let Some(v) = self.version.shards().get(i) else {
                continue;
            };
            let ss = v.segments();
            if zones.is_empty() || !ss.is_fresh() {
                let len = v.tuples().len();
                parts.push((Arc::clone(v), 0..len));
                continue;
            }
            for seg in ss.segments() {
                if zones.iter().all(|(attr, vals)| seg.admits(*attr, vals)) {
                    parts.push((Arc::clone(v), seg.range()));
                } else {
                    skipped += 1;
                }
            }
        }
        TableScan {
            parts,
            part: 0,
            idx: 0,
            stats: Arc::clone(&self.stats),
            yielded: 0,
            skipped,
        }
    }

    /// Counts, without scanning anything, how many segments of each
    /// listed shard the zone conjuncts would skip: `(skipped, total)`
    /// per shard, in the order given. Stale shards report `(0, n)` —
    /// they cannot skip. This is the static side of EXPLAIN's pruning
    /// report; [`scan_shards_zoned`](Self::scan_shards_zoned) is the
    /// execution side and its [`TableStats::segments_skipped`] tally
    /// agrees with the sum reported here.
    pub fn zone_skip_counts(
        &self,
        shards: &[usize],
        zones: &[(AttrId, ValueSet)],
    ) -> Vec<(usize, usize)> {
        shards
            .iter()
            .filter_map(|&i| self.version.shards().get(i))
            .map(|v| {
                let ss = v.segments();
                let total = ss.segment_count();
                if zones.is_empty() || !ss.is_fresh() {
                    return (0, total);
                }
                let kept = ss
                    .segments()
                    .iter()
                    .filter(|seg| zones.iter().all(|(attr, vals)| seg.admits(*attr, vals)))
                    .count();
                (total - kept, total)
            })
            .collect()
    }
}

/// One persisted segment's metadata: row count, distinct-outer
/// estimate, and per-attribute `(min, max)` atom codes.
#[derive(Debug, PartialEq, Eq)]
struct PersistedSegment {
    rows: usize,
    distinct_outer: usize,
    bounds: Vec<(u32, u32)>,
}

/// The persisted segment synopsis of a whole table: the tiling target
/// plus, per shard, `Some(segments)` if the shard was fresh at
/// checkpoint time (`None` = stale, nothing to validate against).
#[derive(Debug)]
struct PersistedSegments {
    segment_rows: usize,
    shards: Vec<Option<Vec<PersistedSegment>>>,
}

/// Parsed meta contents: attribute names, nest order, dictionary
/// entries, the shard spec, and (absent in pre-segment meta files) the
/// persisted segment synopsis.
type MetaContents = (
    Vec<String>,
    Vec<usize>,
    Vec<String>,
    ShardSpec,
    Option<PersistedSegments>,
);

fn read_meta(path: &Path) -> Result<MetaContents> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Err(StorageError::Corrupt("meta file truncated".into()));
    }
    let stored = u64::from_be_bytes(bytes[..8].try_into().expect("length checked above"));
    let body = &bytes[8..];
    if crate::codec::fnv1a64(body) != stored {
        return Err(StorageError::ChecksumMismatch { page_id: u32::MAX });
    }
    let mut slice = body;
    let read_string = |slice: &mut &[u8]| -> Result<String> {
        let len = get_varint(slice)? as usize;
        if slice.len() < len {
            return Err(StorageError::Corrupt("meta string truncated".into()));
        }
        let s = String::from_utf8(slice[..len].to_vec())
            .map_err(|_| StorageError::Corrupt("meta string not utf8".into()))?;
        *slice = &slice[len..];
        Ok(s)
    };
    let arity = get_varint(&mut slice)? as usize;
    let mut attr_names = Vec::with_capacity(arity);
    for _ in 0..arity {
        attr_names.push(read_string(&mut slice)?);
    }
    let mut order = Vec::with_capacity(arity);
    for _ in 0..arity {
        order.push(get_varint(&mut slice)? as usize);
    }
    let dict_len = get_varint(&mut slice)? as usize;
    let mut dict_entries = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict_entries.push(read_string(&mut slice)?);
    }
    if slice.is_empty() {
        // Meta written before sharding existed: those tables were all
        // single-shard, so that is exactly what the missing spec means.
        return Ok((attr_names, order, dict_entries, ShardSpec::single(), None));
    }
    let tag = slice[0];
    slice = &slice[1..];
    let spec = match tag {
        0 => ShardSpec::hash(get_varint(&mut slice)? as usize),
        1 => {
            let len = get_varint(&mut slice)? as usize;
            let mut boundaries = Vec::with_capacity(len);
            for _ in 0..len {
                boundaries.push(Atom(get_varint(&mut slice)? as u32));
            }
            ShardSpec::range(boundaries)
        }
        t => {
            return Err(StorageError::Corrupt(format!("unknown shard spec tag {t}")));
        }
    }
    .map_err(StorageError::Model)?;
    if slice.is_empty() {
        // Meta written before columnar segments existed.
        return Ok((attr_names, order, dict_entries, spec, None));
    }
    let segment_rows = get_varint(&mut slice)? as usize;
    let shard_count = get_varint(&mut slice)? as usize;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        if slice.is_empty() {
            return Err(StorageError::Corrupt("segment meta truncated".into()));
        }
        let fresh = slice[0];
        slice = &slice[1..];
        if fresh == 0 {
            shards.push(None);
            continue;
        }
        let seg_count = get_varint(&mut slice)? as usize;
        let mut segs = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let rows = get_varint(&mut slice)? as usize;
            let distinct_outer = get_varint(&mut slice)? as usize;
            let mut bounds = Vec::with_capacity(arity);
            for _ in 0..arity {
                let lo = get_varint(&mut slice)? as u32;
                let hi = get_varint(&mut slice)? as u32;
                bounds.push((lo, hi));
            }
            segs.push(PersistedSegment {
                rows,
                distinct_outer,
                bounds,
            });
        }
        shards.push(Some(segs));
    }
    let persisted = PersistedSegments {
        segment_rows,
        shards,
    };
    Ok((attr_names, order, dict_entries, spec, Some(persisted)))
}

/// Validates freshly rebuilt segments against the synopsis persisted at
/// checkpoint time: shards that were fresh then must re-derive to the
/// same tiling, distinct-outer estimates and zone bounds now — a
/// mismatch means the pages or meta were tampered with or corrupted.
fn check_persisted_segments(canon: &ShardedCanonical, persisted: &PersistedSegments) -> Result<()> {
    if persisted.shards.len() != canon.shard_count() {
        return Err(StorageError::Corrupt(format!(
            "segment meta lists {} shards, store has {}",
            persisted.shards.len(),
            canon.shard_count()
        )));
    }
    let arity = canon.schema().arity();
    for (idx, expected) in persisted.shards.iter().enumerate() {
        let Some(expected) = expected else { continue };
        let ss = canon.shard_segments(idx);
        let mismatch = |what: String| {
            StorageError::Corrupt(format!(
                "shard {idx}: rebuilt segments disagree with checkpoint meta ({what})"
            ))
        };
        if ss.segment_count() != expected.len() {
            return Err(mismatch(format!(
                "{} segments rebuilt, {} persisted",
                ss.segment_count(),
                expected.len()
            )));
        }
        for (n, (seg, want)) in ss.segments().iter().zip(expected).enumerate() {
            let bounds: Vec<(u32, u32)> = (0..arity)
                .map(|a| (seg.min(a).id(), seg.max(a).id()))
                .collect();
            if seg.rows() != want.rows
                || seg.distinct_outer() != want.distinct_outer
                || bounds != want.bounds
            {
                return Err(mismatch(format!("segment {n}")));
            }
        }
    }
    Ok(())
}

/// A lazy, owning scan over a pinned table snapshot — tuple ranges of
/// `Arc`-held shard versions, streamed back-to-back; see
/// [`NfTable::scan`].
///
/// The scan holds its own pins, so it stays valid (and keeps yielding
/// exactly the pinned state) however long it lives and whatever
/// concurrent writers install in the meantime. Items are
/// [`TupleView::Shared`] — zero-copy views that carry their pin with
/// them, so downstream operators can hold or outlive the scan freely.
///
/// Probe accounting is batched: the scan keeps a local counter and
/// settles it into the table's shared stats exactly once, on drop, so
/// the per-tuple hot path takes no lock.
#[derive(Debug)]
pub struct TableScan {
    /// Pinned shard versions with the tuple range to stream from each,
    /// in shard order.
    parts: Vec<(Arc<ShardVersion>, Range<usize>)>,
    /// Current part index.
    part: usize,
    /// Next tuple within the current part (absolute index into the
    /// shard version's tuple slice).
    idx: usize,
    stats: Arc<SharedTableStats>,
    yielded: u64,
    /// Segments excluded up front by zone maps (settled on drop).
    skipped: u64,
}

impl Iterator for TableScan {
    type Item = TupleView<'static>;

    fn next(&mut self) -> Option<TupleView<'static>> {
        loop {
            let (version, range) = self.parts.get(self.part)?;
            let at = self.idx.max(range.start);
            if at < range.end {
                self.idx = at + 1;
                self.yielded += 1;
                let store: Arc<dyn TupleStore> = version.clone();
                return Some(TupleView::shared(store, at));
            }
            self.part += 1;
            self.idx = 0;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self
            .parts
            .get(self.part..)
            .unwrap_or_default()
            .iter()
            .enumerate()
            .map(|(n, (_, range))| {
                if n == 0 {
                    range.end.saturating_sub(self.idx.max(range.start))
                } else {
                    range.len()
                }
            })
            .sum();
        (remaining, Some(remaining))
    }
}

impl Drop for TableScan {
    fn drop(&mut self) {
        self.stats.settle_scan(self.yielded, self.skipped);
    }
}

fn meta_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.meta"))
}
fn pages_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.pages"))
}
fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

/// The 1NF baseline: one heap record per flat row, with optional
/// maintained secondary indexes (so the E9 comparison is against the
/// strongest reasonable flat engine, not a strawman).
#[derive(Debug)]
pub struct FlatTable {
    name: String,
    schema: Arc<Schema>,
    heap: HeapFile,
    locations: HashMap<FlatTuple, RecordId>,
    indexes: HashMap<AttrId, HashIndex>,
    stats: SharedTableStats,
}

impl FlatTable {
    /// Creates an empty 1NF table.
    pub fn create(name: &str, attr_names: &[&str]) -> Result<Self> {
        Ok(Self {
            name: name.to_owned(),
            schema: Schema::new(name, attr_names)?,
            heap: HeapFile::new(),
            locations: HashMap::new(),
            indexes: HashMap::new(),
            stats: SharedTableStats::default(),
        })
    }

    /// Builds from an existing 1NF relation.
    pub fn from_flat(name: &str, flat: &FlatRelation) -> Result<Self> {
        let names: Vec<&str> = flat.schema().attr_names().collect();
        let mut table = Self::create(name, &names)?;
        for row in flat.rows() {
            table.insert_atoms(row.clone())?;
        }
        Ok(table)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row count.
    pub fn row_count(&self) -> usize {
        self.locations.len()
    }

    /// Bytes occupied by heap pages.
    pub fn size_bytes(&self) -> usize {
        self.heap.size_bytes()
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> TableStats {
        self.stats.snapshot()
    }

    /// Inserts a flat row. Returns `true` if new. Maintained indexes are
    /// updated in the same operation.
    pub fn insert_atoms(&mut self, row: FlatTuple) -> Result<bool> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            }));
        }
        if self.locations.contains_key(&row) {
            return Ok(false);
        }
        let mut buf = BytesMut::new();
        encode_flat_tuple(&row, &mut buf);
        let rid = self.heap.insert(&buf)?;
        for (&attr, index) in &mut self.indexes {
            index.insert(row[attr], rid);
        }
        self.locations.insert(row, rid);
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Deletes a flat row. Returns `true` if present. Maintained indexes
    /// are updated in the same operation.
    pub fn delete_atoms(&mut self, row: &[Atom]) -> Result<bool> {
        match self.locations.remove(row) {
            Some(rid) => {
                self.heap.delete(rid)?;
                for (&attr, index) in &mut self.indexes {
                    index.remove(row[attr], rid);
                }
                self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Builds (or rebuilds) a maintained index on `attr`. Unlike
    /// [`NfTable::build_index`], the index survives mutations — it is
    /// updated by every insert and delete.
    pub fn create_index(&mut self, attr: AttrId) -> Result<()> {
        if attr >= self.schema.arity() {
            return Err(StorageError::Model(nf2_core::NfError::AttrOutOfBounds {
                attr,
                arity: self.schema.arity(),
            }));
        }
        let index = HashIndex::build_flat(&self.heap, self.schema.arity(), attr)?;
        self.indexes.insert(attr, index);
        Ok(())
    }

    /// Indexed lookup: rows whose `attr` equals `value`, probing only
    /// the posting list (counted). Requires [`create_index`](Self::create_index).
    pub fn lookup_indexed(&self, attr: AttrId, value: Atom) -> Result<Vec<FlatTuple>> {
        let index = self
            .indexes
            .get(&attr)
            .ok_or_else(|| StorageError::InvalidRecord(format!("no index on attribute {attr}")))?;
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let arity = self.schema.arity();
        let mut hits = Vec::new();
        if let Some(rids) = index.lookup(value) {
            self.stats
                .units_probed
                .fetch_add(rids.len() as u64, Ordering::Relaxed);
            for &rid in rids {
                let mut slice = self.heap.get(rid)?;
                hits.push(decode_flat_tuple(&mut slice, arity)?);
            }
        }
        Ok(hits)
    }

    /// Verifies every maintained index against the heap (failure
    /// injection hook: a maintenance bug or corruption surfaces here).
    pub fn verify_indexes(&self) -> Result<()> {
        for index in self.indexes.values() {
            index.verify_against_flat(&self.heap, self.schema.arity())?;
        }
        Ok(())
    }

    /// Scan lookup: rows whose `attr` equals `value`. Probes every row.
    pub fn lookup_scan(&self, attr: AttrId, value: Atom) -> Vec<FlatTuple> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let mut hits = Vec::new();
        let arity = self.schema.arity();
        for (_, rec) in self.heap.iter() {
            self.stats.units_probed.fetch_add(1, Ordering::Relaxed);
            let mut slice = rec;
            if let Ok(row) = decode_flat_tuple(&mut slice, arity) {
                if row[attr] == value {
                    hits.push(row);
                }
            }
        }
        hits
    }

    /// Reconstructs the 1NF relation.
    pub fn to_flat_relation(&self) -> FlatRelation {
        FlatRelation::from_rows(self.schema.clone(), self.locations.keys().cloned())
            .expect("stored rows have correct arity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nf2_table_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_table() -> NfTable {
        let dict = SharedDictionary::new();
        let t =
            NfTable::create("sc", &["Student", "Course"], NestOrder::identity(2), dict).unwrap();
        for (s, c) in [("s1", "c1"), ("s2", "c1"), ("s1", "c2"), ("s3", "c3")] {
            assert!(t.insert_row(&[s, c]).unwrap());
        }
        t
    }

    #[test]
    fn insert_compresses_into_nf_tuples() {
        let t = sample_table();
        assert_eq!(t.flat_count(), 4);
        assert!(t.tuple_count() < 4, "students collapse per course");
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let t = sample_table();
        assert!(!t.insert_row(&["s1", "c1"]).unwrap());
        assert!(!t.delete_row(&["zz", "c9"]).unwrap());
        assert_eq!(t.flat_count(), 4);
    }

    #[test]
    fn delete_updates_canonical_form() {
        let t = sample_table();
        assert!(t.delete_row(&["s1", "c1"]).unwrap());
        assert_eq!(t.flat_count(), 3);
        let row = t.row_from_strs(&["s1", "c1"]).unwrap();
        assert!(!t.contains(&row));
    }

    #[test]
    fn lookup_scan_counts_probes() {
        let t = sample_table();
        let c1 = t.dict().lookup("c1").unwrap();
        let hits = t.lookup_scan(1, c1);
        assert_eq!(hits.len(), 1, "both c1 students live in one tuple");
        let stats = t.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.units_probed, t.tuple_count() as u64);
    }

    #[test]
    fn scan_counts_only_what_it_yields() {
        let t = sample_table();
        let tuples = t.tuple_count();
        assert!(tuples >= 2);
        // A partial scan charges exactly the tuples pulled.
        {
            let mut scan = t.scan();
            assert!(scan.next().is_some());
        }
        let stats = t.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.units_probed, 1, "one tuple yielded → one probe");
        // A full drain charges the whole relation.
        assert_eq!(t.scan().count(), tuples);
        assert_eq!(t.stats().units_probed, 1 + tuples as u64);
    }

    #[test]
    fn indexed_lookup_probes_less() {
        let t = sample_table();
        assert!(t.lookup_indexed(0, Atom(0)).is_err(), "index not built yet");
        t.build_index();
        let s1 = t.dict().lookup("s1").unwrap();
        let hits = t.lookup_indexed(0, s1).unwrap();
        assert!(!hits.is_empty());
        // Mutation invalidates the index.
        t.insert_row(&["s9", "c9"]).unwrap();
        assert!(t.lookup_indexed(0, s1).is_err());
    }

    #[test]
    fn checkpoint_and_open_round_trips() {
        let dir = temp_dir("ckpt");
        let t = sample_table();
        t.checkpoint(&dir).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
        assert_eq!(reopened.flat_count(), 4);
        // Dictionary restored: names resolve.
        let row = reopened.row_from_strs(&["s1", "c1"]).unwrap();
        assert!(reopened.contains(&row));
    }

    #[test]
    fn wal_replay_recovers_unflushed_updates() {
        let dir = temp_dir("wal");
        let t = sample_table();
        t.checkpoint(&dir).unwrap();
        // Post-checkpoint updates, flushed to WAL only.
        t.insert_row(&["s4", "c1"]).unwrap();
        t.delete_row(&["s3", "c3"]).unwrap();
        t.flush_wal(&dir).unwrap();
        // Meta must know the new dictionary entries — rewrite it the way
        // checkpoint would, without truncating the wal.
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
        assert_eq!(reopened.flat_count(), 4);
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let dir = temp_dir("badmeta");
        let t = sample_table();
        t.checkpoint(&dir).unwrap();
        let meta = meta_path(&dir, "sc");
        let mut bytes = std::fs::read(&meta).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&meta, &bytes).unwrap();
        assert!(NfTable::open(&dir, "sc", SharedDictionary::new()).is_err());
    }

    #[test]
    fn bulk_load_matches_per_row_inserts() {
        let per_row = sample_table();
        let dict = SharedDictionary::new();
        let bulk = NfTable::bulk_load_strs(
            "sc",
            &["Student", "Course"],
            [("s1", "c1"), ("s2", "c1"), ("s1", "c2"), ("s3", "c3")]
                .iter()
                .map(|(s, c)| vec![*s, *c])
                .collect::<Vec<_>>(),
            NestOrder::identity(2),
            dict,
        )
        .unwrap();
        // Same value space (fresh dictionaries intern in the same order),
        // so the relations are directly comparable.
        assert_eq!(bulk.relation(), per_row.relation());
        assert_eq!(bulk.stats().inserts, 4);
        // The shared dictionary resolves bulk-loaded values.
        let row = bulk.row_from_strs(&["s1", "c2"]).unwrap();
        assert!(bulk.contains(&row));
    }

    #[test]
    fn bulk_load_checks_arity() {
        let dict = SharedDictionary::new();
        let bad = NfTable::bulk_load_strs(
            "sc",
            &["Student", "Course"],
            vec![vec!["s1"]],
            NestOrder::identity(2),
            dict,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn append_batch_is_atomic_on_arity_errors() {
        let t = sample_table();
        let before = t.relation();
        let good = t.row_from_strs(&["s9", "c9"]).unwrap();
        let bad = vec![t.dict().intern("s9")]; // arity 1 against a 2-ary schema
        let ops = vec![Op::Insert(good.clone()), Op::Insert(bad)];
        assert!(t.append_batch(&ops).is_err());
        // Nothing was applied or logged: the valid prefix did not land.
        assert_eq!(t.relation(), before);
        assert!(!t.contains(&good));
        assert_eq!(t.stats().inserts, 4, "only the seed inserts counted");
    }

    #[test]
    fn append_batch_maintains_canonical_form_and_wal() {
        let dir = temp_dir("append");
        let t = sample_table();
        t.checkpoint(&dir).unwrap();
        let mk = |s: &str, c: &str, t: &NfTable| t.row_from_strs(&[s, c]).unwrap();
        // Small batch: incremental arm.
        let small = vec![Op::Insert(mk("s4", "c1", &t))];
        let (summary, rebuilt) = t.append_batch(&small).unwrap();
        assert!(!rebuilt, "1 op vs 4 rows stays incremental");
        assert_eq!(summary.inserted, 1);
        // Large batch: rebuild arm through the kernel.
        let big: Vec<Op> = (0..12)
            .map(|i| Op::Insert(mk(&format!("x{i}"), "c9", &t)))
            .collect();
        let (summary, rebuilt) = t.append_batch(&big).unwrap();
        assert!(rebuilt, "12 ops vs 5 rows rebuilds");
        assert_eq!(summary.inserted, 12);
        assert_eq!(t.flat_count(), 17);
        // The maintained form stays canonical either way.
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(fresh, *t.relation());
        // WAL replay after reopen reproduces the same relation.
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
    }

    #[test]
    fn maintenance_costs_accumulate() {
        let t = sample_table();
        let cost = t.maintenance_cost();
        assert!(cost.recons_calls >= 4, "one recons per insert at least");
    }

    /// A sharded twin of [`sample_table`] plus extra rows so several
    /// shards are populated.
    fn sharded_table(shards: usize) -> NfTable {
        let dict = SharedDictionary::new();
        let t = NfTable::create_sharded(
            "sc",
            &["Student", "Course"],
            NestOrder::identity(2),
            ShardSpec::hash(shards).unwrap(),
            dict,
        )
        .unwrap();
        for (s, c) in [
            ("s1", "c1"),
            ("s2", "c1"),
            ("s1", "c2"),
            ("s3", "c3"),
            ("s2", "c4"),
            ("s3", "c5"),
        ] {
            assert!(t.insert_row(&[s, c]).unwrap());
        }
        t
    }

    #[test]
    fn sharded_table_serves_the_global_canonical_form() {
        let sharded = sharded_table(4);
        assert_eq!(sharded.shard_count(), 4);
        // relation() must equal the canonical form of the same rows on a
        // single-shard table.
        let dict = SharedDictionary::new();
        let plain =
            NfTable::create("sc", &["Student", "Course"], NestOrder::identity(2), dict).unwrap();
        for (s, c) in [
            ("s1", "c1"),
            ("s2", "c1"),
            ("s1", "c2"),
            ("s3", "c3"),
            ("s2", "c4"),
            ("s3", "c5"),
        ] {
            plain.insert_row(&[s, c]).unwrap();
        }
        assert_eq!(sharded.relation(), plain.relation());
        assert_eq!(sharded.flat_count(), 6);
        // The concatenated scan yields every shard's tuples (possibly
        // more than the merged count, never fewer).
        let scanned = sharded.scan().count();
        assert!(scanned >= sharded.tuple_count());
        assert_eq!(
            sharded.scan().map(|t| t.expansion_count()).sum::<u128>(),
            6,
            "same R* through the concatenated stream"
        );
    }

    #[test]
    fn sharded_append_batch_and_deletes_stay_canonical() {
        let t = sharded_table(3);
        let big: Vec<Op> = (0..12)
            .map(|i| {
                Op::Insert(
                    t.row_from_strs(&[&format!("x{i}"), &format!("c{}", i % 5)])
                        .unwrap(),
                )
            })
            .collect();
        let (summary, _) = t.append_batch(&big).unwrap();
        assert_eq!(summary.inserted, 12);
        assert!(t.delete_row(&["s1", "c1"]).unwrap());
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(fresh, *t.relation(), "merge cache tracks every mutation");
        t.sharded().verify().unwrap();
        // Per-shard cost breakdown sums to the total.
        let breakdown = t.maintenance_breakdown();
        let sum: u64 = breakdown.per_shard.iter().map(|c| c.candidate_probes).sum();
        assert_eq!(sum, breakdown.total.candidate_probes);
    }

    #[test]
    fn scan_shards_prunes_and_counts_probes_exactly() {
        let t = sharded_table(4);
        // Routing attribute is Course (P(n−1) under the identity order).
        assert_eq!(t.routing().attr(), Some(1));
        let c1 = t.dict().lookup("c1").unwrap();
        let shard = t.routing().spec().route_value(c1);
        let expected = t.sharded().shard(shard).tuple_count();
        assert!(expected >= 1);

        // The pruned scan yields exactly that shard's tuples and charges
        // exactly that many probes under exactly one lookup.
        let before = t.stats();
        assert_eq!(t.scan_shards(&[shard]).count(), expected);
        let after = t.stats();
        assert_eq!(after.units_probed - before.units_probed, expected as u64);
        assert_eq!(after.lookups - before.lookups, 1, "one scan, one counter");

        // Every yielded tuple can actually hold c1 rows' shard-mates.
        for tuple in t.scan_shards(&[shard]) {
            for v in tuple.component(1).iter() {
                assert_eq!(t.routing().spec().route_value(v), shard);
            }
        }

        // Degenerate sets: nothing scanned, out-of-range ignored.
        assert_eq!(t.scan_shards(&[]).count(), 0);
        assert_eq!(t.scan_shards(&[99]).count(), 0);

        // A take(1) stopping mid-shard across a multi-shard
        // concatenation charges exactly one probe — per-shard streams
        // must never double-count (satellite: concat accounting).
        let before = t.stats();
        {
            let mut scan = t.scan_shards(&[0, 1, 2, 3]);
            assert!(scan.next().is_some());
        }
        let after = t.stats();
        assert_eq!(after.units_probed - before.units_probed, 1);
        assert_eq!(after.lookups - before.lookups, 1);

        // scan() over all shards ≡ scan_shards(all).
        let all: Vec<usize> = (0..t.shard_count()).collect();
        assert_eq!(t.scan().count(), t.scan_shards(&all).count());

        // The router's value-set API unions, sorts and dedups.
        let vals: Vec<Atom> = ["c1", "c3", "c1"]
            .iter()
            .map(|s| t.dict().lookup(s).unwrap())
            .collect();
        let shards = t.routing().shards_for_values(&vals);
        assert!(shards.windows(2).all(|w| w[0] < w[1]), "{shards:?}");
        assert!(shards.contains(&shard));
    }

    #[test]
    fn merged_cache_refreshes_after_noop_and_compensating_mutations() {
        // The rollback path replays compensating ops and must never
        // serve a mid-transaction merge: every state-changing mutation
        // invalidates the cache, and compensating ops are always
        // state-changing (undo entries exist only for ops that changed
        // state, replayed in reverse against exactly the state they
        // invert). No-op mutations, by contrast, may keep the cache —
        // the canonical shards did not move.
        let t = sharded_table(3);
        let before = t.relation(); // fill the cache
        let epoch_before = t.epoch();
        t.insert_row(&["s9", "c9"]).unwrap();
        assert_eq!(t.epoch(), epoch_before + 1, "state change bumps the epoch");
        let _ = t.relation(); // re-fill with the mutated state
        t.delete_row(&["s9", "c9"]).unwrap(); // compensate
        assert_eq!(t.relation(), before, "compensation restores the merge");
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(*t.relation(), fresh);
        // No-op duplicate insert / missing delete: the epoch — and the
        // warm cache at it — stay put (the state is unchanged), so the
        // next read hands back the same Arc without re-merging.
        let warm = t.relation();
        let epoch = t.epoch();
        assert!(!t.insert_row(&["s1", "c1"]).unwrap());
        assert!(!t.delete_row(&["zz", "zz"]).unwrap());
        assert_eq!(t.epoch(), epoch, "no-ops do not bump the epoch");
        assert!(
            Arc::ptr_eq(&t.relation(), &warm),
            "no-op mutations keep the merge cache warm"
        );
        assert_eq!(t.relation(), before);
    }

    #[test]
    fn sharded_checkpoint_restores_spec_and_state() {
        let dir = temp_dir("sharded_ckpt");
        let t = sharded_table(3);
        t.checkpoint(&dir).unwrap();
        t.insert_row(&["s9", "c9"]).unwrap();
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.shard_count(), 3, "spec survives the round trip");
        assert_eq!(reopened.shard_spec(), t.shard_spec());
        assert_eq!(reopened.relation(), t.relation());
        reopened.sharded().verify().unwrap();
    }

    #[test]
    fn concurrent_point_writers_commit_on_distinct_shards() {
        let t = sharded_table(4);
        let start = t.flat_count();
        // Four writer threads, each hammering its own set of rows. The
        // lanes let them commit in parallel; the coalescing submit may
        // batch racing publications, so the epoch advances by at most —
        // and usually fewer than — the number of state changes.
        let rounds = 50u32;
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..rounds {
                        t.insert_row(&[&format!("w{w}_{i}"), &format!("c{w}x{i}")])
                            .expect("concurrent insert routes cleanly");
                    }
                });
            }
        });
        assert_eq!(t.flat_count(), start + u128::from(4 * rounds));
        let inserted = u64::from(4 * rounds);
        assert!(t.epoch() <= inserted + 6, "one bump max per state change");
        assert_eq!(t.stats().inserts, 6 + inserted);
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(fresh, *t.relation(), "storm preserves canonical form");
        t.sharded().verify().unwrap();
    }

    #[test]
    fn wal_flushes_count_once_per_write_and_record_group_size() {
        let dir = temp_dir("group_stats");
        let t = sample_table();
        assert_eq!(t.stats().wal_flushes, 0);
        t.flush_wal(&dir).unwrap();
        assert_eq!(t.stats().wal_flushes, 1, "four entries, one write");
        // Nothing new buffered: the flush is a no-op and must not count.
        t.flush_wal(&dir).unwrap();
        assert_eq!(t.stats().wal_flushes, 1, "already-durable group is free");
        t.insert_row(&["s7", "c7"]).unwrap();
        t.flush_wal(&dir).unwrap();
        assert_eq!(t.stats().wal_flushes, 2);
    }

    #[test]
    fn torn_wal_tail_recovers_last_durable_prefix() {
        let dir = temp_dir("torn");
        let t = sample_table();
        t.checkpoint(&dir).unwrap();
        // Two post-checkpoint entries; remember the byte boundary after
        // the first so we can tear the file inside the second.
        t.insert_row(&["s5", "c5"]).unwrap();
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let boundary = std::fs::metadata(wal_path(&dir, "sc")).unwrap().len();
        t.insert_row(&["s6", "c6"]).unwrap();
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let full = std::fs::read(wal_path(&dir, "sc")).unwrap();
        assert!(full.len() > boundary as usize);
        // Crash mid-group: only part of the second entry hit the disk.
        std::fs::write(wal_path(&dir, "sc"), &full[..boundary as usize + 1]).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        let s5 = reopened.row_from_strs(&["s5", "c5"]).unwrap();
        assert!(reopened.contains(&s5), "durable prefix replayed");
        assert_eq!(reopened.flat_count(), 5, "torn entry not applied");
    }

    #[test]
    fn reopened_table_keeps_replayed_wal_across_flushes() {
        let dir = temp_dir("reseed");
        let t = sample_table();
        t.checkpoint(&dir).unwrap();
        t.insert_row(&["s5", "c5"]).unwrap();
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        // First reopen replays s5 from the WAL; a flush after another
        // insert must keep s5 in the rewritten log (the commit log is
        // seeded with the replayed entries as already durable).
        let r1 = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        r1.insert_row(&["s6", "c6"]).unwrap();
        r1.flush_wal(&dir).unwrap();
        r1.write_meta(&meta_path(&dir, "sc")).unwrap();
        let r2 = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(r2.flat_count(), 6);
        let s5 = r2.row_from_strs(&["s5", "c5"]).unwrap();
        assert!(r2.contains(&s5), "replayed entry survives the next flush");
    }

    /// A bulk-loaded table (fresh segments) with clustered values:
    /// `A` ascends with the `B` group so segment zone maps are tight.
    fn segmented_table(shards: usize, rows: usize) -> NfTable {
        let dict = SharedDictionary::new();
        let data: Vec<Vec<String>> = (0..rows)
            .map(|i| vec![format!("a{i:05}"), format!("b{:04}", i / 8)])
            .collect();
        let refs: Vec<Vec<&str>> = data
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let t = NfTable::bulk_load_strs_sharded(
            "t",
            &["A", "B"],
            refs,
            NestOrder::identity(2),
            ShardSpec::hash(shards).unwrap(),
            dict,
        )
        .unwrap();
        t.set_segment_rows(16);
        t
    }

    #[test]
    fn zoned_scan_skips_segments_and_counts_them() {
        let t = segmented_table(1, 400);
        let total_segments = t.sharded().shard_segments(0).segment_count();
        assert!(total_segments > 3, "400 rows at 16/segment tile widely");
        // A tight predicate on the non-routing attribute A: values from
        // one narrow window of the clustered layout.
        let vals = ValueSet::new(vec![t.dict().lookup("a00007").unwrap()])
            .expect("looked-up atoms form a set");
        let zones = vec![(0usize, vals)];
        let before = t.stats();
        let full = t.scan_shards(&[0]).count();
        let zoned = t.scan_shards_zoned(&[0], &zones).count();
        let after = t.stats();
        assert!(zoned < full, "zone maps must exclude tuples up front");
        // Probe accounting: the zoned scan charged only what it yielded,
        // and tallied the skipped segments.
        assert_eq!(
            after.units_probed - before.units_probed,
            (full + zoned) as u64
        );
        let skipped = after.segments_skipped - before.segments_skipped;
        assert!(
            skipped as usize * 2 >= total_segments,
            "a point predicate must skip at least half the segments: {skipped}/{total_segments}"
        );
        let counts = t.zone_skip_counts(&[0], &zones);
        assert_eq!(counts, vec![(skipped as usize, total_segments)]);
        // Soundness: the zoned scan still yields every actually-matching
        // tuple (zone maps over-approximate, never under-approximate).
        let target = t.dict().lookup("a00007").unwrap();
        let matches_full = t
            .scan_shards(&[0])
            .filter(|tp| tp.component(0).contains(target))
            .count();
        let zones2 = vec![(
            0usize,
            ValueSet::new(vec![target]).expect("one atom forms a set"),
        )];
        let matches_zoned = t
            .scan_shards_zoned(&[0], &zones2)
            .filter(|tp| tp.component(0).contains(target))
            .count();
        assert_eq!(matches_full, matches_zoned);
    }

    #[test]
    fn stale_segments_fall_back_to_full_scans() {
        let t = segmented_table(1, 200);
        let vals = ValueSet::new(vec![t.dict().lookup("a00003").unwrap()])
            .expect("looked-up atoms form a set");
        let zones = vec![(0usize, vals)];
        assert!(t.scan_shards_zoned(&[0], &zones).count() < t.scan_shards(&[0]).count());
        // A point insert breaks segment freshness: the zoned scan must
        // degrade to the full shard, never drop tuples.
        t.insert_row(&["zz", "b0000"]).unwrap();
        assert!(!t.sharded().shard_segments(0).is_fresh());
        let before = t.stats().segments_skipped;
        assert_eq!(
            t.scan_shards_zoned(&[0], &zones).count(),
            t.scan_shards(&[0]).count()
        );
        assert_eq!(
            t.stats().segments_skipped,
            before,
            "stale shards skip nothing"
        );
        assert_eq!(t.zone_skip_counts(&[0], &zones)[0].0, 0);
    }

    #[test]
    fn checkpoint_persists_and_validates_segment_meta() {
        let dir = temp_dir("seg_meta");
        let t = segmented_table(2, 300);
        t.checkpoint(&dir).unwrap();
        let reopened = NfTable::open(&dir, "t", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
        for s in 0..2 {
            let reopened_canon = reopened.sharded();
            let ss = reopened_canon.shard_segments(s);
            assert!(ss.is_fresh(), "reopen re-derives fresh segments");
            assert_eq!(
                ss.segment_count(),
                t.sharded().shard_segments(s).segment_count(),
                "persisted tiling target survives the round trip"
            );
        }
        // Tamper with the pages: the rebuilt segments no longer match
        // the persisted synopsis and open() must refuse.
        let pages = pages_path(&dir, "t");
        let mut heap = HeapFile::new();
        let mut buf = BytesMut::new();
        for tuple in t.relation().tuples().iter().skip(1) {
            buf.clear();
            encode_nf_tuple(tuple, &mut buf);
            heap.insert(&buf).unwrap();
        }
        heap.save(&pages).unwrap();
        assert!(
            NfTable::open(&dir, "t", SharedDictionary::new()).is_err(),
            "segment synopsis must catch a dropped tuple"
        );
    }

    #[test]
    fn flat_table_baseline_probes_every_row() {
        let mut ft = FlatTable::create("sc", &["Student", "Course"]).unwrap();
        for row in [[0u32, 10], [1, 10], [0, 11], [2, 12]] {
            assert!(ft
                .insert_atoms(row.iter().map(|&v| Atom(v)).collect())
                .unwrap());
        }
        assert_eq!(ft.row_count(), 4);
        let hits = ft.lookup_scan(1, Atom(10));
        assert_eq!(hits.len(), 2);
        assert_eq!(ft.stats().units_probed, 4);
        assert!(ft.delete_atoms(&[Atom(0), Atom(10)]).unwrap());
        assert!(!ft.delete_atoms(&[Atom(0), Atom(10)]).unwrap());
        assert_eq!(ft.row_count(), 3);
    }

    #[test]
    fn flat_table_maintained_index_survives_mutations() {
        let mut ft = FlatTable::create("sc", &["Student", "Course"]).unwrap();
        for row in [[0u32, 10], [1, 10], [0, 11]] {
            ft.insert_atoms(row.iter().map(|&v| Atom(v)).collect())
                .unwrap();
        }
        assert!(ft.lookup_indexed(1, Atom(10)).is_err(), "no index yet");
        ft.create_index(1).unwrap();
        assert_eq!(ft.lookup_indexed(1, Atom(10)).unwrap().len(), 2);
        // The index follows inserts and deletes.
        ft.insert_atoms(vec![Atom(2), Atom(10)]).unwrap();
        ft.delete_atoms(&[Atom(0), Atom(10)]).unwrap();
        assert_eq!(ft.lookup_indexed(1, Atom(10)).unwrap().len(), 2);
        assert!(ft.lookup_indexed(1, Atom(99)).unwrap().is_empty());
        ft.verify_indexes().unwrap();
        // Probe counting: only the posting list is touched.
        let before = ft.stats().units_probed;
        ft.lookup_indexed(1, Atom(11)).unwrap();
        assert_eq!(ft.stats().units_probed - before, 1);
    }

    #[test]
    fn flat_table_rejects_index_on_bad_attr() {
        let mut ft = FlatTable::create("sc", &["A", "B"]).unwrap();
        assert!(ft.create_index(5).is_err());
    }

    #[test]
    fn flat_table_round_trips_relation() {
        let schema = Schema::new("r", &["A", "B"]).unwrap();
        let flat =
            FlatRelation::from_rows(schema, vec![vec![Atom(1), Atom(2)], vec![Atom(3), Atom(4)]])
                .unwrap();
        let ft = FlatTable::from_flat("r", &flat).unwrap();
        assert_eq!(ft.to_flat_relation(), flat);
        assert!(ft.size_bytes() >= crate::page::PAGE_SIZE);
    }
}
