//! Storage-backed tables: the NF² engine and the 1NF baseline.
//!
//! [`NfTable`] is the paper's *realization view* (§2): the NFR is the
//! physical representation. Updates run the §4 incremental canonical
//! maintenance; durability follows the classic recipe — a write-ahead log
//! of flat-row operations plus page checkpoints of the NF² tuples.
//! [`FlatTable`] is the 1NF baseline storing one record per flat row.
//! Both count probes so the "reduction of logical search space" claim
//! (§2, §5) is measurable.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use parking_lot::Mutex;

use nf2_core::bulk::{BatchSummary, Op};
use nf2_core::maintenance::CostCounter;
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{AttrId, NestOrder, Schema};
use nf2_core::shard::{MaintenanceCost, ShardSpec, ShardedCanonical};
use nf2_core::tuple::{FlatTuple, NfTuple, ValueSet};
use nf2_core::value::Atom;

use crate::codec::{
    decode_flat_tuple, decode_nf_tuple, encode_flat_tuple, encode_nf_tuple, get_varint, put_varint,
};
use crate::dictionary::SharedDictionary;
use crate::error::{Result, StorageError};
use crate::heap::{HeapFile, RecordId};
use crate::index::HashIndex;

/// Probe and operation counters for the search-space experiments (E9).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Number of lookup calls.
    pub lookups: u64,
    /// Logical units examined by lookups (NF² tuples or flat rows).
    pub units_probed: u64,
    /// Rows inserted since creation.
    pub inserts: u64,
    /// Rows deleted since creation.
    pub deletes: u64,
    /// Whole columnar segments skipped by zone-map refutation
    /// ([`NfTable::scan_shards_zoned`]) — their tuples were never
    /// probed, so they are *not* in `units_probed`.
    pub segments_skipped: u64,
}

/// A WAL entry: one flat-row mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WalEntry {
    Insert(FlatTuple),
    Delete(FlatTuple),
}

impl WalEntry {
    fn encode(&self, out: &mut BytesMut) {
        let (tag, row) = match self {
            WalEntry::Insert(r) => (1u8, r),
            WalEntry::Delete(r) => (2u8, r),
        };
        out.put_u8(tag);
        encode_flat_tuple(row, out);
    }

    fn decode(buf: &mut &[u8], arity: usize) -> Result<Self> {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("wal entry truncated".into()));
        }
        let tag = buf[0];
        *buf = &buf[1..];
        let row = decode_flat_tuple(buf, arity)?;
        match tag {
            1 => Ok(WalEntry::Insert(row)),
            2 => Ok(WalEntry::Delete(row)),
            t => Err(StorageError::Corrupt(format!("unknown wal tag {t}"))),
        }
    }
}

/// An NF² table: canonical NFR as the physical representation — held as
/// a [`ShardedCanonical`] partitioned on the outermost nest attribute
/// (one shard by default) — with WAL + checkpoint durability and an
/// optional value index.
///
/// With more than one shard, §4 point maintenance routes to a single
/// shard (candidate probes drop by the shard count), batch appends
/// rebuild shards in parallel, [`scan`](NfTable::scan) concatenates the
/// per-shard tuple streams, and [`relation`](NfTable::relation) serves
/// the exact global canonical form from a lazily-merged cache
/// (invalidated by mutations, rebuilt on first read — a write-heavy
/// stream never pays for merges nobody reads).
#[derive(Debug)]
pub struct NfTable {
    name: String,
    dict: SharedDictionary,
    canon: ShardedCanonical,
    /// Lazily-merged global canonical form for multi-shard tables:
    /// mutations reset the cell ([`invalidate_merged`](Self::invalidate_merged)),
    /// [`relation`](Self::relation) fills it on demand. Single-shard
    /// tables borrow shard 0 directly and never touch it.
    merged: std::sync::OnceLock<NfRelation>,
    wal: Vec<WalEntry>,
    /// (attr, value) → tuple positions at index-build time; dropped on any
    /// mutation.
    index: Option<HashMap<(AttrId, Atom), Vec<usize>>>,
    stats: Mutex<TableStats>,
    /// Accumulated §4 maintenance costs across all updates, with the
    /// per-shard breakdown.
    maintenance: MaintenanceCost,
}

impl NfTable {
    /// Creates an empty single-shard table.
    pub fn create(
        name: &str,
        attr_names: &[&str],
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self> {
        Self::create_sharded(name, attr_names, order, ShardSpec::single(), dict)
    }

    /// Creates an empty table partitioned by `spec` on the outermost
    /// nest attribute.
    pub fn create_sharded(
        name: &str,
        attr_names: &[&str],
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self> {
        let schema = Schema::new(name, attr_names)?;
        let canon = ShardedCanonical::new(schema, order, spec)?;
        Ok(Self::wrap(name, dict, canon, TableStats::default()))
    }

    /// Builds a single-shard table from an existing 1NF relation by
    /// nesting from scratch.
    pub fn from_flat(
        name: &str,
        flat: &FlatRelation,
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self> {
        Self::from_flat_sharded(name, flat, order, ShardSpec::single(), dict)
    }

    /// Builds a sharded table from an existing 1NF relation: rows are
    /// routed, then every shard nests its own rows (in parallel).
    pub fn from_flat_sharded(
        name: &str,
        flat: &FlatRelation,
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self> {
        let canon = ShardedCanonical::from_flat(flat, order, spec)?;
        Ok(Self::wrap(name, dict, canon, TableStats::default()))
    }

    /// Bulk-loads rows of atoms through the single-pass nest kernel: one
    /// sort-group pass per shard instead of per-row §4 maintenance. The
    /// fast path for cold loads; `repro` E16 measures it against batch
    /// appends.
    pub fn bulk_load_atoms<I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = FlatTuple>,
    {
        Self::bulk_load_atoms_sharded(name, attr_names, rows, order, ShardSpec::single(), dict)
    }

    /// [`bulk_load_atoms`](Self::bulk_load_atoms) into a sharded table:
    /// rows are routed first and every shard runs its own kernel pass,
    /// in parallel across shards.
    pub fn bulk_load_atoms_sharded<I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = FlatTuple>,
    {
        let schema = Schema::new(name, attr_names)?;
        let flat = FlatRelation::from_rows(schema, rows).map_err(StorageError::Model)?;
        let canon = ShardedCanonical::from_flat(&flat, order, spec)?;
        let loaded = flat.len() as u64;
        Ok(Self::wrap(
            name,
            dict,
            canon,
            TableStats {
                inserts: loaded,
                ..TableStats::default()
            },
        ))
    }

    /// Bulk-loads rows of string values, interning every value into the
    /// shared dictionary first — query literals, WAL rows and bulk-loaded
    /// rows all resolve in one value space end-to-end.
    pub fn bulk_load_strs<'a, I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<&'a str>>,
    {
        Self::bulk_load_strs_sharded(name, attr_names, rows, order, ShardSpec::single(), dict)
    }

    /// [`bulk_load_strs`](Self::bulk_load_strs) into a sharded table.
    pub fn bulk_load_strs_sharded<'a, I>(
        name: &str,
        attr_names: &[&str],
        rows: I,
        order: NestOrder,
        spec: ShardSpec,
        dict: SharedDictionary,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<&'a str>>,
    {
        let atoms: Vec<FlatTuple> = rows.into_iter().map(|row| dict.intern_row(&row)).collect();
        Self::bulk_load_atoms_sharded(name, attr_names, atoms, order, spec, dict)
    }

    /// Assembles a table around a sharded canonical relation.
    fn wrap(
        name: &str,
        dict: SharedDictionary,
        canon: ShardedCanonical,
        stats: TableStats,
    ) -> Self {
        let shards = canon.shard_count();
        Self {
            name: name.to_owned(),
            dict,
            maintenance: MaintenanceCost::new(shards),
            canon,
            merged: std::sync::OnceLock::new(),
            wal: Vec::new(),
            index: None,
            stats: Mutex::new(stats),
        }
    }

    /// Drops the merged-relation cache after a mutation; the next
    /// [`relation`](Self::relation) read re-merges. Cheap — an empty
    /// cell swap, no merge work on the write path.
    fn invalidate_merged(&mut self) {
        self.merged = std::sync::OnceLock::new();
    }

    /// Applies a batch of flat-row operations through the auto strategy
    /// **per shard** (§4 incremental below the rebuild threshold, a
    /// kernel re-nest above it — shards rebuild concurrently on scoped
    /// threads), logging every operation to the WAL. Returns the batch
    /// summary and whether any shard took the rebuild arm.
    ///
    /// Each shard's kernel scratch is reused across appends, so a long
    /// ingest stream pays the rebuild arm's allocations once per shard.
    pub fn append_batch(&mut self, ops: &[Op]) -> Result<(BatchSummary, bool)> {
        // Validate the whole batch up front: arity errors are the only
        // failure mode below, so rejecting them here keeps the batch
        // atomic — on Err the relation, WAL and index are all untouched.
        let arity = self.schema().arity();
        for op in ops {
            if op.row().len() != arity {
                return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                    expected: arity,
                    got: op.row().len(),
                }));
            }
        }
        let (summary, rebuilds) = self.canon.apply_batch_auto(ops, &mut self.maintenance)?;
        let rebuilt = rebuilds > 0;
        if summary.inserted + summary.deleted > 0 {
            self.index = None;
            self.invalidate_merged();
        }
        // WAL replay tolerates no-ops (insert/delete return false), so the
        // whole batch is logged verbatim and replays to the same state.
        for op in ops {
            match op {
                Op::Insert(row) => self.wal.push(WalEntry::Insert(row.clone())),
                Op::Delete(row) => self.wal.push(WalEntry::Delete(row.clone())),
            }
        }
        let mut stats = self.stats.lock();
        stats.inserts += summary.inserted as u64;
        stats.deletes += summary.deleted as u64;
        Ok((summary, rebuilt))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.canon.schema()
    }

    /// The nest order the table is canonical for.
    pub fn order(&self) -> &NestOrder {
        self.canon.order()
    }

    /// The shard specification the table is partitioned by.
    pub fn shard_spec(&self) -> &ShardSpec {
        self.canon.router().spec()
    }

    /// Number of shards (1 unless created through a `_sharded`
    /// constructor).
    pub fn shard_count(&self) -> usize {
        self.canon.shard_count()
    }

    /// The sharded canonical store backing the table.
    pub fn sharded(&self) -> &ShardedCanonical {
        &self.canon
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &SharedDictionary {
        &self.dict
    }

    /// The current NFR — always the exact global canonical form
    /// `ν_P(R*)`, regardless of shard count. Multi-shard tables merge
    /// lazily on first read after a mutation; single-shard tables borrow
    /// shard 0 at zero cost.
    pub fn relation(&self) -> &NfRelation {
        if self.canon.shard_count() == 1 {
            return self.canon.shard(0).relation();
        }
        self.merged.get_or_init(|| self.canon.to_relation())
    }

    /// NF² tuple count of the global canonical form (the logical search
    /// space size).
    pub fn tuple_count(&self) -> usize {
        self.relation().tuple_count()
    }

    /// Flat row count (`|R*|`).
    pub fn flat_count(&self) -> u128 {
        self.canon.flat_count()
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> TableStats {
        *self.stats.lock()
    }

    /// Accumulated §4 maintenance cost over the table's lifetime
    /// (summed across shards).
    pub fn maintenance_cost(&self) -> CostCounter {
        self.maintenance.total
    }

    /// The per-shard maintenance-cost breakdown.
    pub fn maintenance_breakdown(&self) -> &MaintenanceCost {
        &self.maintenance
    }

    /// Interns string values into a flat row for this schema.
    pub fn row_from_strs(&self, values: &[&str]) -> Result<FlatTuple> {
        if values.len() != self.schema().arity() {
            return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                expected: self.schema().arity(),
                got: values.len(),
            }));
        }
        Ok(self.dict.intern_row(values))
    }

    /// Inserts a row of string values. Returns `true` if new.
    pub fn insert_row(&mut self, values: &[&str]) -> Result<bool> {
        let row = self.row_from_strs(values)?;
        self.insert_atoms(row)
    }

    /// Inserts a flat row of atoms via §4 maintenance (routed to one
    /// shard), logging to the WAL.
    ///
    /// The merged-relation cache is invalidated exactly when the row was
    /// fresh — a no-op duplicate leaves the canonical shards untouched,
    /// so the cached merge stays valid (dropping it would force a full
    /// re-merge for nothing). This conditional form also covers the
    /// compensating mutations a `ROLLBACK` replays: undo entries are
    /// recorded only for operations that changed state, and replaying
    /// them in reverse order re-applies each one against exactly the
    /// state it inverts, so every compensating call *is* state-changing
    /// and invalidates here (the table- and session-level rollback
    /// regression tests pin this).
    pub fn insert_atoms(&mut self, row: FlatTuple) -> Result<bool> {
        let fresh = self
            .canon
            .insert_counted(row.clone(), &mut self.maintenance)?;
        if fresh {
            self.wal.push(WalEntry::Insert(row));
            self.index = None;
            self.invalidate_merged();
            self.stats.lock().inserts += 1;
        }
        Ok(fresh)
    }

    /// Deletes a row of string values. Returns `true` if it existed.
    pub fn delete_row(&mut self, values: &[&str]) -> Result<bool> {
        let row = self.row_from_strs(values)?;
        self.delete_atoms(&row)
    }

    /// Deletes a flat row of atoms via §4 maintenance (routed to one
    /// shard), logging to the WAL. The merged cache is invalidated when
    /// the row was present — see [`insert_atoms`](Self::insert_atoms)
    /// for why this conditional form also covers the rollback/undo path.
    pub fn delete_atoms(&mut self, row: &[Atom]) -> Result<bool> {
        let hit = self.canon.delete_counted(row, &mut self.maintenance)?;
        if hit {
            self.wal.push(WalEntry::Delete(row.to_vec()));
            self.index = None;
            self.invalidate_merged();
            self.stats.lock().deletes += 1;
        }
        Ok(hit)
    }

    /// Whether the table contains the flat row (`searcht` against
    /// exactly one shard).
    pub fn contains(&self, row: &[Atom]) -> bool {
        self.canon.contains(row)
    }

    /// A borrowing, probe-counted scan over the stored NF² tuples — the
    /// per-shard tuple streams, concatenated in shard order.
    ///
    /// The iterator yields `&NfTuple` straight out of the canonical
    /// shards — no clone, no merge — and counts every yielded tuple,
    /// flushing the total into [`stats`](Self::stats) (`lookups += 1`,
    /// `units_probed += yielded`) when dropped. Streaming query cursors
    /// ride on this: a cursor that stops after the first tuple is charged
    /// one probe, not a full relation's worth — which is also how tests
    /// assert that a cursor did *not* materialize its input.
    ///
    /// On a multi-shard table a global canonical tuple whose outermost
    /// set spans shards streams as one tuple per shard; the concatenation
    /// is a valid NFR with the same `R*`, so query semantics (selections,
    /// joins, counts, expansions) are unchanged.
    pub fn scan(&self) -> TableScan<'_> {
        self.scan_of(self.canon.shards().iter().map(|s| s.relation().tuples()))
    }

    /// A borrowing, probe-counted scan restricted to the given shards
    /// (ascending, deduplicated; out-of-range ids are ignored). This is
    /// the storage half of **shard pruning**: a selection that fixes the
    /// outermost nest attribute resolves its shard set through
    /// [`routing`](Self::routing) and scans only those shards — the
    /// skipped shards' tuples are never yielded, so they never show up
    /// in [`stats`](Self::stats) either.
    ///
    /// Probe accounting is identical to [`scan`](Self::scan): **one**
    /// counter across all selected shards, settled once on drop —
    /// concatenating shard streams must never double-count, even when a
    /// downstream `take(n)` stops mid-shard.
    pub fn scan_shards(&self, shards: &[usize]) -> TableScan<'_> {
        let all = self.canon.shards();
        self.scan_of(
            shards
                .iter()
                .filter_map(|&i| all.get(i))
                .map(|s| s.relation().tuples()),
        )
    }

    /// A borrowing, probe-counted scan over `shards` that additionally
    /// skips whole columnar segments whose zone maps refute any of the
    /// `zones` conjuncts — `(attr, values)` pairs meaning "the `attr`
    /// component must intersect `values`". A segment whose `[min, max]`
    /// range for `attr` excludes every value in `values` cannot hold a
    /// matching tuple, so its tuples are never yielded (and never
    /// probe-counted); the skip itself is tallied in
    /// [`TableStats::segments_skipped`].
    ///
    /// Shards whose segments are stale (point maintenance since the
    /// last rebuild) fall back to their full tuple slice — zone maps
    /// are an optimization, never a semantic filter, so callers still
    /// apply the real predicate downstream.
    pub fn scan_shards_zoned(
        &self,
        shards: &[usize],
        zones: &[(AttrId, ValueSet)],
    ) -> TableScan<'_> {
        let all = self.canon.shards();
        let segs = self.canon.segments();
        let mut slices: Vec<&[NfTuple]> = Vec::new();
        let mut skipped = 0u64;
        for &i in shards {
            let Some(shard) = all.get(i) else { continue };
            let tuples = shard.relation().tuples();
            let ss = &segs[i];
            if zones.is_empty() || !ss.is_fresh() {
                slices.push(tuples);
                continue;
            }
            for seg in ss.segments() {
                if zones.iter().all(|(attr, vals)| seg.admits(*attr, vals)) {
                    slices.push(&tuples[seg.range()]);
                } else {
                    skipped += 1;
                }
            }
        }
        TableScan {
            shards: slices,
            shard: 0,
            idx: 0,
            stats: &self.stats,
            yielded: 0,
            skipped,
        }
    }

    /// Counts, without scanning anything, how many segments of each
    /// listed shard the zone conjuncts would skip: `(skipped, total)`
    /// per shard, in the order given. Stale shards report `(0, n)` —
    /// they cannot skip. This is the static side of EXPLAIN's pruning
    /// report; [`scan_shards_zoned`](Self::scan_shards_zoned) is the
    /// execution side and its [`TableStats::segments_skipped`] tally
    /// agrees with the sum reported here.
    pub fn zone_skip_counts(
        &self,
        shards: &[usize],
        zones: &[(AttrId, ValueSet)],
    ) -> Vec<(usize, usize)> {
        let segs = self.canon.segments();
        shards
            .iter()
            .filter_map(|&i| segs.get(i))
            .map(|ss| {
                let total = ss.segment_count();
                if zones.is_empty() || !ss.is_fresh() {
                    return (0, total);
                }
                let kept = ss
                    .segments()
                    .iter()
                    .filter(|seg| zones.iter().all(|(attr, vals)| seg.admits(*attr, vals)))
                    .count();
                (total - kept, total)
            })
            .collect()
    }

    /// Changes the target tuples-per-segment on the backing store and
    /// re-tiles every fresh shard. Test and experiment knob.
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.canon.set_segment_rows(rows);
    }

    fn scan_of<'a>(&'a self, shards: impl Iterator<Item = &'a [NfTuple]>) -> TableScan<'a> {
        TableScan {
            shards: shards.collect(),
            shard: 0,
            idx: 0,
            stats: &self.stats,
            yielded: 0,
            skipped: 0,
        }
    }

    /// The value router the table's shards are partitioned by — what a
    /// query planner asks to turn an outer-attribute predicate into a
    /// shard set for [`scan_shards`](Self::scan_shards).
    pub fn routing(&self) -> &nf2_core::shard::ShardRouter {
        self.canon.router()
    }

    /// Scan lookup: NF² tuples whose `attr` component contains `value`.
    /// Probes every tuple (counted) — the realization-view win is that
    /// there are far fewer tuples than rows.
    pub fn lookup_scan(&self, attr: AttrId, value: Atom) -> Vec<NfTuple> {
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        let mut hits = Vec::new();
        for t in self.relation().tuples() {
            stats.units_probed += 1;
            if t.component(attr).contains(value) {
                hits.push(t.clone());
            }
        }
        hits
    }

    /// Builds the (attr, value) → tuples index over the current state.
    pub fn build_index(&mut self) {
        let mut index: HashMap<(AttrId, Atom), Vec<usize>> = HashMap::new();
        for (pos, t) in self.relation().tuples().iter().enumerate() {
            for attr in 0..self.schema().arity() {
                for v in t.component(attr).iter() {
                    index.entry((attr, v)).or_default().push(pos);
                }
            }
        }
        self.index = Some(index);
    }

    /// Indexed lookup; probes only the posting list (counted). Requires
    /// [`build_index`](Self::build_index) since the last mutation.
    pub fn lookup_indexed(&self, attr: AttrId, value: Atom) -> Result<Vec<NfTuple>> {
        let index = self.index.as_ref().ok_or_else(|| {
            StorageError::InvalidRecord("index not built (or invalidated by a mutation)".into())
        })?;
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        let tuples = self.relation().tuples();
        Ok(index
            .get(&(attr, value))
            .map(|positions| {
                stats.units_probed += positions.len() as u64;
                positions.iter().map(|&p| tuples[p].clone()).collect()
            })
            .unwrap_or_default())
    }

    /// Checkpoints to `dir`: meta + page file of NF² tuples (the merged
    /// global canonical form); truncates the WAL.
    pub fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        self.write_meta(&meta_path(dir, &self.name))?;
        let mut heap = HeapFile::new();
        let mut buf = BytesMut::new();
        for t in self.relation().tuples() {
            buf.clear();
            encode_nf_tuple(t, &mut buf);
            heap.insert(&buf)?;
        }
        heap.save(&pages_path(dir, &self.name))?;
        self.wal.clear();
        std::fs::write(wal_path(dir, &self.name), b"")?;
        Ok(())
    }

    /// Appends pending WAL entries to disk without checkpointing.
    pub fn flush_wal(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut buf = BytesMut::new();
        for e in &self.wal {
            e.encode(&mut buf);
        }
        std::fs::write(wal_path(dir, &self.name), &buf)?;
        Ok(())
    }

    /// Opens a table from `dir`: loads the checkpoint pages, restores the
    /// persisted shard spec, then replays the WAL (every entry routed
    /// through the sharded store like a live mutation).
    pub fn open(dir: &Path, name: &str, dict: SharedDictionary) -> Result<Self> {
        let (attr_names, order_attrs, dict_entries, spec, persisted_segments) =
            read_meta(&meta_path(dir, name))?;
        // Restore dictionary contents (atom ids are dense from 0).
        for entry in &dict_entries {
            dict.intern(entry);
        }
        let refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
        let schema = Schema::new(name, &refs)?;
        let arity = schema.arity();
        let order = NestOrder::new(order_attrs, arity).map_err(StorageError::Model)?;
        let heap = HeapFile::load(&pages_path(dir, name))?;
        let mut tuples = Vec::with_capacity(heap.record_count());
        for (_, rec) in heap.iter() {
            let mut slice = rec;
            tuples.push(decode_nf_tuple(&mut slice, arity)?);
        }
        let rel = NfRelation::from_tuples(schema.clone(), tuples)?;
        let flat = rel.expand();
        let mut canon = ShardedCanonical::from_flat(&flat, order, spec)?;
        let wal_bytes = std::fs::read(wal_path(dir, name)).unwrap_or_default();
        // Validate the rebuilt segments against the persisted synopsis
        // *before* WAL replay (replayed point ops legitimately mark
        // shards stale again). The synopsis describes the table state at
        // write_meta time, which is only the page state when no WAL
        // entries are pending — a meta flushed mid-stream (flush_wal +
        // write_meta) is ahead of the checkpoint pages, so it cannot be
        // checked against them.
        if let Some(persisted) = &persisted_segments {
            canon.set_segment_rows(persisted.segment_rows);
            if wal_bytes.is_empty() {
                check_persisted_segments(&canon, persisted)?;
            }
        }
        // Replay WAL.
        let mut slice: &[u8] = &wal_bytes;
        while !slice.is_empty() {
            match WalEntry::decode(&mut slice, arity)? {
                WalEntry::Insert(row) => {
                    canon.insert(row)?;
                }
                WalEntry::Delete(row) => {
                    canon.delete(&row)?;
                }
            }
        }
        Ok(Self::wrap(name, dict, canon, TableStats::default()))
    }

    fn write_meta(&self, path: &Path) -> Result<()> {
        let mut buf = BytesMut::new();
        let schema = self.schema();
        put_varint(&mut buf, schema.arity() as u64);
        for name in schema.attr_names() {
            put_varint(&mut buf, name.len() as u64);
            buf.extend_from_slice(name.as_bytes());
        }
        for &a in self.canon.order().as_slice() {
            put_varint(&mut buf, a as u64);
        }
        // Dictionary contents in atom order.
        let snap = self.dict.snapshot();
        put_varint(&mut buf, snap.len() as u64);
        for id in 0..snap.len() as u32 {
            let name = snap.resolve(Atom(id)).expect("dense atom ids");
            put_varint(&mut buf, name.len() as u64);
            buf.extend_from_slice(name.as_bytes());
        }
        // Shard spec: tag byte, then the spec parameters.
        match self.shard_spec() {
            ShardSpec::Hash { shards } => {
                buf.put_u8(0);
                put_varint(&mut buf, *shards as u64);
            }
            ShardSpec::Range { boundaries } => {
                buf.put_u8(1);
                put_varint(&mut buf, boundaries.len() as u64);
                for b in boundaries {
                    put_varint(&mut buf, u64::from(b.id()));
                }
            }
        }
        // Per-shard segment metadata (the zone-map synopsis): target
        // tuples-per-segment, then per shard a fresh/stale flag and,
        // when fresh, each segment's row count, distinct-outer estimate
        // and per-attribute min/max codes. open() re-derives segments
        // from the checkpoint pages and validates them against this.
        put_varint(&mut buf, self.canon.segment_rows() as u64);
        put_varint(&mut buf, self.canon.shard_count() as u64);
        for ss in self.canon.segments() {
            if !ss.is_fresh() {
                buf.put_u8(0);
                continue;
            }
            buf.put_u8(1);
            put_varint(&mut buf, ss.segment_count() as u64);
            for seg in ss.segments() {
                put_varint(&mut buf, seg.rows() as u64);
                put_varint(&mut buf, seg.distinct_outer() as u64);
                for a in 0..schema.arity() {
                    put_varint(&mut buf, u64::from(seg.min(a).id()));
                    put_varint(&mut buf, u64::from(seg.max(a).id()));
                }
            }
        }
        let checksum = crate::codec::fnv1a64(&buf);
        let mut out = BytesMut::with_capacity(buf.len() + 8);
        out.put_u64(checksum);
        out.extend_from_slice(&buf);
        std::fs::write(path, &out)?;
        Ok(())
    }
}

/// One persisted segment's metadata: row count, distinct-outer
/// estimate, and per-attribute `(min, max)` atom codes.
#[derive(Debug, PartialEq, Eq)]
struct PersistedSegment {
    rows: usize,
    distinct_outer: usize,
    bounds: Vec<(u32, u32)>,
}

/// The persisted segment synopsis of a whole table: the tiling target
/// plus, per shard, `Some(segments)` if the shard was fresh at
/// checkpoint time (`None` = stale, nothing to validate against).
#[derive(Debug)]
struct PersistedSegments {
    segment_rows: usize,
    shards: Vec<Option<Vec<PersistedSegment>>>,
}

/// Parsed meta contents: attribute names, nest order, dictionary
/// entries, the shard spec, and (absent in pre-segment meta files) the
/// persisted segment synopsis.
type MetaContents = (
    Vec<String>,
    Vec<usize>,
    Vec<String>,
    ShardSpec,
    Option<PersistedSegments>,
);

fn read_meta(path: &Path) -> Result<MetaContents> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Err(StorageError::Corrupt("meta file truncated".into()));
    }
    let stored = u64::from_be_bytes(bytes[..8].try_into().expect("length checked above"));
    let body = &bytes[8..];
    if crate::codec::fnv1a64(body) != stored {
        return Err(StorageError::ChecksumMismatch { page_id: u32::MAX });
    }
    let mut slice = body;
    let read_string = |slice: &mut &[u8]| -> Result<String> {
        let len = get_varint(slice)? as usize;
        if slice.len() < len {
            return Err(StorageError::Corrupt("meta string truncated".into()));
        }
        let s = String::from_utf8(slice[..len].to_vec())
            .map_err(|_| StorageError::Corrupt("meta string not utf8".into()))?;
        *slice = &slice[len..];
        Ok(s)
    };
    let arity = get_varint(&mut slice)? as usize;
    let mut attr_names = Vec::with_capacity(arity);
    for _ in 0..arity {
        attr_names.push(read_string(&mut slice)?);
    }
    let mut order = Vec::with_capacity(arity);
    for _ in 0..arity {
        order.push(get_varint(&mut slice)? as usize);
    }
    let dict_len = get_varint(&mut slice)? as usize;
    let mut dict_entries = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict_entries.push(read_string(&mut slice)?);
    }
    if slice.is_empty() {
        // Meta written before sharding existed: those tables were all
        // single-shard, so that is exactly what the missing spec means.
        return Ok((attr_names, order, dict_entries, ShardSpec::single(), None));
    }
    let tag = slice[0];
    slice = &slice[1..];
    let spec = match tag {
        0 => ShardSpec::hash(get_varint(&mut slice)? as usize),
        1 => {
            let len = get_varint(&mut slice)? as usize;
            let mut boundaries = Vec::with_capacity(len);
            for _ in 0..len {
                boundaries.push(Atom(get_varint(&mut slice)? as u32));
            }
            ShardSpec::range(boundaries)
        }
        t => {
            return Err(StorageError::Corrupt(format!("unknown shard spec tag {t}")));
        }
    }
    .map_err(StorageError::Model)?;
    if slice.is_empty() {
        // Meta written before columnar segments existed.
        return Ok((attr_names, order, dict_entries, spec, None));
    }
    let segment_rows = get_varint(&mut slice)? as usize;
    let shard_count = get_varint(&mut slice)? as usize;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        if slice.is_empty() {
            return Err(StorageError::Corrupt("segment meta truncated".into()));
        }
        let fresh = slice[0];
        slice = &slice[1..];
        if fresh == 0 {
            shards.push(None);
            continue;
        }
        let seg_count = get_varint(&mut slice)? as usize;
        let mut segs = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let rows = get_varint(&mut slice)? as usize;
            let distinct_outer = get_varint(&mut slice)? as usize;
            let mut bounds = Vec::with_capacity(arity);
            for _ in 0..arity {
                let lo = get_varint(&mut slice)? as u32;
                let hi = get_varint(&mut slice)? as u32;
                bounds.push((lo, hi));
            }
            segs.push(PersistedSegment {
                rows,
                distinct_outer,
                bounds,
            });
        }
        shards.push(Some(segs));
    }
    let persisted = PersistedSegments {
        segment_rows,
        shards,
    };
    Ok((attr_names, order, dict_entries, spec, Some(persisted)))
}

/// Validates freshly rebuilt segments against the synopsis persisted at
/// checkpoint time: shards that were fresh then must re-derive to the
/// same tiling, distinct-outer estimates and zone bounds now — a
/// mismatch means the pages or meta were tampered with or corrupted.
fn check_persisted_segments(canon: &ShardedCanonical, persisted: &PersistedSegments) -> Result<()> {
    if persisted.shards.len() != canon.shard_count() {
        return Err(StorageError::Corrupt(format!(
            "segment meta lists {} shards, store has {}",
            persisted.shards.len(),
            canon.shard_count()
        )));
    }
    let arity = canon.schema().arity();
    for (idx, expected) in persisted.shards.iter().enumerate() {
        let Some(expected) = expected else { continue };
        let ss = canon.shard_segments(idx);
        let mismatch = |what: String| {
            StorageError::Corrupt(format!(
                "shard {idx}: rebuilt segments disagree with checkpoint meta ({what})"
            ))
        };
        if ss.segment_count() != expected.len() {
            return Err(mismatch(format!(
                "{} segments rebuilt, {} persisted",
                ss.segment_count(),
                expected.len()
            )));
        }
        for (n, (seg, want)) in ss.segments().iter().zip(expected).enumerate() {
            let bounds: Vec<(u32, u32)> = (0..arity)
                .map(|a| (seg.min(a).id(), seg.max(a).id()))
                .collect();
            if seg.rows() != want.rows
                || seg.distinct_outer() != want.distinct_outer
                || bounds != want.bounds
            {
                return Err(mismatch(format!("segment {n}")));
            }
        }
    }
    Ok(())
}

/// A lazy scan over an [`NfTable`]'s tuples — the shards' tuple slices,
/// streamed back-to-back; see [`NfTable::scan`].
///
/// Probe accounting is batched: the scan keeps a local counter and
/// settles it into the table's [`TableStats`] exactly once, on drop, so
/// the per-tuple hot path takes no lock.
#[derive(Debug)]
pub struct TableScan<'a> {
    /// Per-shard tuple slices, in shard order.
    shards: Vec<&'a [NfTuple]>,
    /// Current shard index.
    shard: usize,
    /// Next tuple within the current shard.
    idx: usize,
    stats: &'a Mutex<TableStats>,
    yielded: u64,
    /// Segments excluded up front by zone maps (settled on drop).
    skipped: u64,
}

impl<'a> Iterator for TableScan<'a> {
    type Item = &'a NfTuple;

    fn next(&mut self) -> Option<&'a NfTuple> {
        loop {
            let slice = self.shards.get(self.shard)?;
            if let Some(t) = slice.get(self.idx) {
                self.idx += 1;
                self.yielded += 1;
                return Some(t);
            }
            self.shard += 1;
            self.idx = 0;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self.shards[self.shard.min(self.shards.len())..]
            .iter()
            .map(|s| s.len())
            .sum::<usize>()
            .saturating_sub(self.idx);
        (remaining, Some(remaining))
    }
}

impl Drop for TableScan<'_> {
    fn drop(&mut self) {
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        stats.units_probed += self.yielded;
        stats.segments_skipped += self.skipped;
    }
}

fn meta_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.meta"))
}
fn pages_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.pages"))
}
fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

/// The 1NF baseline: one heap record per flat row, with optional
/// maintained secondary indexes (so the E9 comparison is against the
/// strongest reasonable flat engine, not a strawman).
#[derive(Debug)]
pub struct FlatTable {
    name: String,
    schema: Arc<Schema>,
    heap: HeapFile,
    locations: HashMap<FlatTuple, RecordId>,
    indexes: HashMap<AttrId, HashIndex>,
    stats: Mutex<TableStats>,
}

impl FlatTable {
    /// Creates an empty 1NF table.
    pub fn create(name: &str, attr_names: &[&str]) -> Result<Self> {
        Ok(Self {
            name: name.to_owned(),
            schema: Schema::new(name, attr_names)?,
            heap: HeapFile::new(),
            locations: HashMap::new(),
            indexes: HashMap::new(),
            stats: Mutex::new(TableStats::default()),
        })
    }

    /// Builds from an existing 1NF relation.
    pub fn from_flat(name: &str, flat: &FlatRelation) -> Result<Self> {
        let names: Vec<&str> = flat.schema().attr_names().collect();
        let mut table = Self::create(name, &names)?;
        for row in flat.rows() {
            table.insert_atoms(row.clone())?;
        }
        Ok(table)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row count.
    pub fn row_count(&self) -> usize {
        self.locations.len()
    }

    /// Bytes occupied by heap pages.
    pub fn size_bytes(&self) -> usize {
        self.heap.size_bytes()
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> TableStats {
        *self.stats.lock()
    }

    /// Inserts a flat row. Returns `true` if new. Maintained indexes are
    /// updated in the same operation.
    pub fn insert_atoms(&mut self, row: FlatTuple) -> Result<bool> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::Model(nf2_core::NfError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            }));
        }
        if self.locations.contains_key(&row) {
            return Ok(false);
        }
        let mut buf = BytesMut::new();
        encode_flat_tuple(&row, &mut buf);
        let rid = self.heap.insert(&buf)?;
        for (&attr, index) in &mut self.indexes {
            index.insert(row[attr], rid);
        }
        self.locations.insert(row, rid);
        self.stats.lock().inserts += 1;
        Ok(true)
    }

    /// Deletes a flat row. Returns `true` if present. Maintained indexes
    /// are updated in the same operation.
    pub fn delete_atoms(&mut self, row: &[Atom]) -> Result<bool> {
        match self.locations.remove(row) {
            Some(rid) => {
                self.heap.delete(rid)?;
                for (&attr, index) in &mut self.indexes {
                    index.remove(row[attr], rid);
                }
                self.stats.lock().deletes += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Builds (or rebuilds) a maintained index on `attr`. Unlike
    /// [`NfTable::build_index`], the index survives mutations — it is
    /// updated by every insert and delete.
    pub fn create_index(&mut self, attr: AttrId) -> Result<()> {
        if attr >= self.schema.arity() {
            return Err(StorageError::Model(nf2_core::NfError::AttrOutOfBounds {
                attr,
                arity: self.schema.arity(),
            }));
        }
        let index = HashIndex::build_flat(&self.heap, self.schema.arity(), attr)?;
        self.indexes.insert(attr, index);
        Ok(())
    }

    /// Indexed lookup: rows whose `attr` equals `value`, probing only
    /// the posting list (counted). Requires [`create_index`](Self::create_index).
    pub fn lookup_indexed(&self, attr: AttrId, value: Atom) -> Result<Vec<FlatTuple>> {
        let index = self
            .indexes
            .get(&attr)
            .ok_or_else(|| StorageError::InvalidRecord(format!("no index on attribute {attr}")))?;
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        let arity = self.schema.arity();
        let mut hits = Vec::new();
        if let Some(rids) = index.lookup(value) {
            stats.units_probed += rids.len() as u64;
            for &rid in rids {
                let mut slice = self.heap.get(rid)?;
                hits.push(decode_flat_tuple(&mut slice, arity)?);
            }
        }
        Ok(hits)
    }

    /// Verifies every maintained index against the heap (failure
    /// injection hook: a maintenance bug or corruption surfaces here).
    pub fn verify_indexes(&self) -> Result<()> {
        for index in self.indexes.values() {
            index.verify_against_flat(&self.heap, self.schema.arity())?;
        }
        Ok(())
    }

    /// Scan lookup: rows whose `attr` equals `value`. Probes every row.
    pub fn lookup_scan(&self, attr: AttrId, value: Atom) -> Vec<FlatTuple> {
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        let mut hits = Vec::new();
        let arity = self.schema.arity();
        for (_, rec) in self.heap.iter() {
            stats.units_probed += 1;
            let mut slice = rec;
            if let Ok(row) = decode_flat_tuple(&mut slice, arity) {
                if row[attr] == value {
                    hits.push(row);
                }
            }
        }
        hits
    }

    /// Reconstructs the 1NF relation.
    pub fn to_flat_relation(&self) -> FlatRelation {
        FlatRelation::from_rows(self.schema.clone(), self.locations.keys().cloned())
            .expect("stored rows have correct arity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nf2_table_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_table() -> NfTable {
        let dict = SharedDictionary::new();
        let mut t =
            NfTable::create("sc", &["Student", "Course"], NestOrder::identity(2), dict).unwrap();
        for (s, c) in [("s1", "c1"), ("s2", "c1"), ("s1", "c2"), ("s3", "c3")] {
            assert!(t.insert_row(&[s, c]).unwrap());
        }
        t
    }

    #[test]
    fn insert_compresses_into_nf_tuples() {
        let t = sample_table();
        assert_eq!(t.flat_count(), 4);
        assert!(t.tuple_count() < 4, "students collapse per course");
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let mut t = sample_table();
        assert!(!t.insert_row(&["s1", "c1"]).unwrap());
        assert!(!t.delete_row(&["zz", "c9"]).unwrap());
        assert_eq!(t.flat_count(), 4);
    }

    #[test]
    fn delete_updates_canonical_form() {
        let mut t = sample_table();
        assert!(t.delete_row(&["s1", "c1"]).unwrap());
        assert_eq!(t.flat_count(), 3);
        let row = t.row_from_strs(&["s1", "c1"]).unwrap();
        assert!(!t.contains(&row));
    }

    #[test]
    fn lookup_scan_counts_probes() {
        let t = sample_table();
        let c1 = t.dict().lookup("c1").unwrap();
        let hits = t.lookup_scan(1, c1);
        assert_eq!(hits.len(), 1, "both c1 students live in one tuple");
        let stats = t.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.units_probed, t.tuple_count() as u64);
    }

    #[test]
    fn scan_counts_only_what_it_yields() {
        let t = sample_table();
        let tuples = t.tuple_count();
        assert!(tuples >= 2);
        // A partial scan charges exactly the tuples pulled.
        {
            let mut scan = t.scan();
            assert!(scan.next().is_some());
        }
        let stats = t.stats();
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.units_probed, 1, "one tuple yielded → one probe");
        // A full drain charges the whole relation.
        assert_eq!(t.scan().count(), tuples);
        assert_eq!(t.stats().units_probed, 1 + tuples as u64);
    }

    #[test]
    fn indexed_lookup_probes_less() {
        let mut t = sample_table();
        assert!(t.lookup_indexed(0, Atom(0)).is_err(), "index not built yet");
        t.build_index();
        let s1 = t.dict().lookup("s1").unwrap();
        let hits = t.lookup_indexed(0, s1).unwrap();
        assert!(!hits.is_empty());
        // Mutation invalidates the index.
        t.insert_row(&["s9", "c9"]).unwrap();
        assert!(t.lookup_indexed(0, s1).is_err());
    }

    #[test]
    fn checkpoint_and_open_round_trips() {
        let dir = temp_dir("ckpt");
        let mut t = sample_table();
        t.checkpoint(&dir).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
        assert_eq!(reopened.flat_count(), 4);
        // Dictionary restored: names resolve.
        let row = reopened.row_from_strs(&["s1", "c1"]).unwrap();
        assert!(reopened.contains(&row));
    }

    #[test]
    fn wal_replay_recovers_unflushed_updates() {
        let dir = temp_dir("wal");
        let mut t = sample_table();
        t.checkpoint(&dir).unwrap();
        // Post-checkpoint updates, flushed to WAL only.
        t.insert_row(&["s4", "c1"]).unwrap();
        t.delete_row(&["s3", "c3"]).unwrap();
        t.flush_wal(&dir).unwrap();
        // Meta must know the new dictionary entries — rewrite it the way
        // checkpoint would, without truncating the wal.
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
        assert_eq!(reopened.flat_count(), 4);
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let dir = temp_dir("badmeta");
        let mut t = sample_table();
        t.checkpoint(&dir).unwrap();
        let meta = meta_path(&dir, "sc");
        let mut bytes = std::fs::read(&meta).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&meta, &bytes).unwrap();
        assert!(NfTable::open(&dir, "sc", SharedDictionary::new()).is_err());
    }

    #[test]
    fn bulk_load_matches_per_row_inserts() {
        let per_row = sample_table();
        let dict = SharedDictionary::new();
        let bulk = NfTable::bulk_load_strs(
            "sc",
            &["Student", "Course"],
            [("s1", "c1"), ("s2", "c1"), ("s1", "c2"), ("s3", "c3")]
                .iter()
                .map(|(s, c)| vec![*s, *c])
                .collect::<Vec<_>>(),
            NestOrder::identity(2),
            dict,
        )
        .unwrap();
        // Same value space (fresh dictionaries intern in the same order),
        // so the relations are directly comparable.
        assert_eq!(bulk.relation(), per_row.relation());
        assert_eq!(bulk.stats().inserts, 4);
        // The shared dictionary resolves bulk-loaded values.
        let row = bulk.row_from_strs(&["s1", "c2"]).unwrap();
        assert!(bulk.contains(&row));
    }

    #[test]
    fn bulk_load_checks_arity() {
        let dict = SharedDictionary::new();
        let bad = NfTable::bulk_load_strs(
            "sc",
            &["Student", "Course"],
            vec![vec!["s1"]],
            NestOrder::identity(2),
            dict,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn append_batch_is_atomic_on_arity_errors() {
        let mut t = sample_table();
        let before = t.relation().clone();
        let good = t.row_from_strs(&["s9", "c9"]).unwrap();
        let bad = vec![t.dict().intern("s9")]; // arity 1 against a 2-ary schema
        let ops = vec![Op::Insert(good.clone()), Op::Insert(bad)];
        assert!(t.append_batch(&ops).is_err());
        // Nothing was applied or logged: the valid prefix did not land.
        assert_eq!(t.relation(), &before);
        assert!(!t.contains(&good));
        assert_eq!(t.stats().inserts, 4, "only the seed inserts counted");
    }

    #[test]
    fn append_batch_maintains_canonical_form_and_wal() {
        let dir = temp_dir("append");
        let mut t = sample_table();
        t.checkpoint(&dir).unwrap();
        let mk = |s: &str, c: &str, t: &NfTable| t.row_from_strs(&[s, c]).unwrap();
        // Small batch: incremental arm.
        let small = vec![Op::Insert(mk("s4", "c1", &t))];
        let (summary, rebuilt) = t.append_batch(&small).unwrap();
        assert!(!rebuilt, "1 op vs 4 rows stays incremental");
        assert_eq!(summary.inserted, 1);
        // Large batch: rebuild arm through the kernel.
        let big: Vec<Op> = (0..12)
            .map(|i| Op::Insert(mk(&format!("x{i}"), "c9", &t)))
            .collect();
        let (summary, rebuilt) = t.append_batch(&big).unwrap();
        assert!(rebuilt, "12 ops vs 5 rows rebuilds");
        assert_eq!(summary.inserted, 12);
        assert_eq!(t.flat_count(), 17);
        // The maintained form stays canonical either way.
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(&fresh, t.relation());
        // WAL replay after reopen reproduces the same relation.
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
    }

    #[test]
    fn maintenance_costs_accumulate() {
        let t = sample_table();
        let cost = t.maintenance_cost();
        assert!(cost.recons_calls >= 4, "one recons per insert at least");
    }

    /// A sharded twin of [`sample_table`] plus extra rows so several
    /// shards are populated.
    fn sharded_table(shards: usize) -> NfTable {
        let dict = SharedDictionary::new();
        let mut t = NfTable::create_sharded(
            "sc",
            &["Student", "Course"],
            NestOrder::identity(2),
            ShardSpec::hash(shards).unwrap(),
            dict,
        )
        .unwrap();
        for (s, c) in [
            ("s1", "c1"),
            ("s2", "c1"),
            ("s1", "c2"),
            ("s3", "c3"),
            ("s2", "c4"),
            ("s3", "c5"),
        ] {
            assert!(t.insert_row(&[s, c]).unwrap());
        }
        t
    }

    #[test]
    fn sharded_table_serves_the_global_canonical_form() {
        let sharded = sharded_table(4);
        assert_eq!(sharded.shard_count(), 4);
        // relation() must equal the canonical form of the same rows on a
        // single-shard table.
        let dict = SharedDictionary::new();
        let mut plain =
            NfTable::create("sc", &["Student", "Course"], NestOrder::identity(2), dict).unwrap();
        for (s, c) in [
            ("s1", "c1"),
            ("s2", "c1"),
            ("s1", "c2"),
            ("s3", "c3"),
            ("s2", "c4"),
            ("s3", "c5"),
        ] {
            plain.insert_row(&[s, c]).unwrap();
        }
        assert_eq!(sharded.relation(), plain.relation());
        assert_eq!(sharded.flat_count(), 6);
        // The concatenated scan yields every shard's tuples (possibly
        // more than the merged count, never fewer).
        let scanned = sharded.scan().count();
        assert!(scanned >= sharded.tuple_count());
        assert_eq!(
            sharded.scan().map(|t| t.expansion_count()).sum::<u128>(),
            6,
            "same R* through the concatenated stream"
        );
    }

    #[test]
    fn sharded_append_batch_and_deletes_stay_canonical() {
        let mut t = sharded_table(3);
        let big: Vec<Op> = (0..12)
            .map(|i| {
                Op::Insert(
                    t.row_from_strs(&[&format!("x{i}"), &format!("c{}", i % 5)])
                        .unwrap(),
                )
            })
            .collect();
        let (summary, _) = t.append_batch(&big).unwrap();
        assert_eq!(summary.inserted, 12);
        assert!(t.delete_row(&["s1", "c1"]).unwrap());
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(&fresh, t.relation(), "merge cache tracks every mutation");
        t.sharded().verify().unwrap();
        // Per-shard cost breakdown sums to the total.
        let breakdown = t.maintenance_breakdown();
        let sum: u64 = breakdown.per_shard.iter().map(|c| c.candidate_probes).sum();
        assert_eq!(sum, breakdown.total.candidate_probes);
    }

    #[test]
    fn scan_shards_prunes_and_counts_probes_exactly() {
        let t = sharded_table(4);
        // Routing attribute is Course (P(n−1) under the identity order).
        assert_eq!(t.routing().attr(), Some(1));
        let c1 = t.dict().lookup("c1").unwrap();
        let shard = t.routing().spec().route_value(c1);
        let expected = t.sharded().shard(shard).tuple_count();
        assert!(expected >= 1);

        // The pruned scan yields exactly that shard's tuples and charges
        // exactly that many probes under exactly one lookup.
        let before = t.stats();
        assert_eq!(t.scan_shards(&[shard]).count(), expected);
        let after = t.stats();
        assert_eq!(after.units_probed - before.units_probed, expected as u64);
        assert_eq!(after.lookups - before.lookups, 1, "one scan, one counter");

        // Every yielded tuple can actually hold c1 rows' shard-mates.
        for tuple in t.scan_shards(&[shard]) {
            for v in tuple.component(1).iter() {
                assert_eq!(t.routing().spec().route_value(v), shard);
            }
        }

        // Degenerate sets: nothing scanned, out-of-range ignored.
        assert_eq!(t.scan_shards(&[]).count(), 0);
        assert_eq!(t.scan_shards(&[99]).count(), 0);

        // A take(1) stopping mid-shard across a multi-shard
        // concatenation charges exactly one probe — per-shard streams
        // must never double-count (satellite: concat accounting).
        let before = t.stats();
        {
            let mut scan = t.scan_shards(&[0, 1, 2, 3]);
            assert!(scan.next().is_some());
        }
        let after = t.stats();
        assert_eq!(after.units_probed - before.units_probed, 1);
        assert_eq!(after.lookups - before.lookups, 1);

        // scan() over all shards ≡ scan_shards(all).
        let all: Vec<usize> = (0..t.shard_count()).collect();
        assert_eq!(t.scan().count(), t.scan_shards(&all).count());

        // The router's value-set API unions, sorts and dedups.
        let vals: Vec<Atom> = ["c1", "c3", "c1"]
            .iter()
            .map(|s| t.dict().lookup(s).unwrap())
            .collect();
        let shards = t.routing().shards_for_values(&vals);
        assert!(shards.windows(2).all(|w| w[0] < w[1]), "{shards:?}");
        assert!(shards.contains(&shard));
    }

    #[test]
    fn merged_cache_refreshes_after_noop_and_compensating_mutations() {
        // The rollback path replays compensating ops and must never
        // serve a mid-transaction merge: every state-changing mutation
        // invalidates the cache, and compensating ops are always
        // state-changing (undo entries exist only for ops that changed
        // state, replayed in reverse against exactly the state they
        // invert). No-op mutations, by contrast, may keep the cache —
        // the canonical shards did not move.
        let mut t = sharded_table(3);
        let before = t.relation().clone(); // fill the cache
        t.insert_row(&["s9", "c9"]).unwrap();
        let _ = t.relation(); // re-fill with the mutated state
        t.delete_row(&["s9", "c9"]).unwrap(); // compensate
        assert_eq!(t.relation(), &before, "compensation restores the merge");
        let fresh = nf2_core::nest::canonical_of_flat(&t.relation().expand(), t.order());
        assert_eq!(t.relation(), &fresh);
        // No-op duplicate insert / missing delete: the cache stays
        // exact (and need not be rebuilt — the state is unchanged).
        assert!(!t.insert_row(&["s1", "c1"]).unwrap());
        assert!(!t.delete_row(&["zz", "zz"]).unwrap());
        assert_eq!(t.relation(), &before);
    }

    #[test]
    fn sharded_checkpoint_restores_spec_and_state() {
        let dir = temp_dir("sharded_ckpt");
        let mut t = sharded_table(3);
        t.checkpoint(&dir).unwrap();
        t.insert_row(&["s9", "c9"]).unwrap();
        t.flush_wal(&dir).unwrap();
        t.write_meta(&meta_path(&dir, "sc")).unwrap();
        let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.shard_count(), 3, "spec survives the round trip");
        assert_eq!(reopened.shard_spec(), t.shard_spec());
        assert_eq!(reopened.relation(), t.relation());
        reopened.sharded().verify().unwrap();
    }

    /// A bulk-loaded table (fresh segments) with clustered values:
    /// `A` ascends with the `B` group so segment zone maps are tight.
    fn segmented_table(shards: usize, rows: usize) -> NfTable {
        let dict = SharedDictionary::new();
        let data: Vec<Vec<String>> = (0..rows)
            .map(|i| vec![format!("a{i:05}"), format!("b{:04}", i / 8)])
            .collect();
        let refs: Vec<Vec<&str>> = data
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let mut t = NfTable::bulk_load_strs_sharded(
            "t",
            &["A", "B"],
            refs,
            NestOrder::identity(2),
            ShardSpec::hash(shards).unwrap(),
            dict,
        )
        .unwrap();
        t.set_segment_rows(16);
        t
    }

    #[test]
    fn zoned_scan_skips_segments_and_counts_them() {
        let t = segmented_table(1, 400);
        let total_segments = t.sharded().shard_segments(0).segment_count();
        assert!(total_segments > 3, "400 rows at 16/segment tile widely");
        // A tight predicate on the non-routing attribute A: values from
        // one narrow window of the clustered layout.
        let vals = ValueSet::new(vec![t.dict().lookup("a00007").unwrap()])
            .expect("looked-up atoms form a set");
        let zones = vec![(0usize, vals)];
        let before = t.stats();
        let full = t.scan_shards(&[0]).count();
        let zoned = t.scan_shards_zoned(&[0], &zones).count();
        let after = t.stats();
        assert!(zoned < full, "zone maps must exclude tuples up front");
        // Probe accounting: the zoned scan charged only what it yielded,
        // and tallied the skipped segments.
        assert_eq!(
            after.units_probed - before.units_probed,
            (full + zoned) as u64
        );
        let skipped = after.segments_skipped - before.segments_skipped;
        assert!(
            skipped as usize * 2 >= total_segments,
            "a point predicate must skip at least half the segments: {skipped}/{total_segments}"
        );
        let counts = t.zone_skip_counts(&[0], &zones);
        assert_eq!(counts, vec![(skipped as usize, total_segments)]);
        // Soundness: the zoned scan still yields every actually-matching
        // tuple (zone maps over-approximate, never under-approximate).
        let target = t.dict().lookup("a00007").unwrap();
        let matches_full = t
            .scan_shards(&[0])
            .filter(|tp| tp.component(0).contains(target))
            .count();
        let zones2 = vec![(
            0usize,
            ValueSet::new(vec![target]).expect("one atom forms a set"),
        )];
        let matches_zoned = t
            .scan_shards_zoned(&[0], &zones2)
            .filter(|tp| tp.component(0).contains(target))
            .count();
        assert_eq!(matches_full, matches_zoned);
    }

    #[test]
    fn stale_segments_fall_back_to_full_scans() {
        let mut t = segmented_table(1, 200);
        let vals = ValueSet::new(vec![t.dict().lookup("a00003").unwrap()])
            .expect("looked-up atoms form a set");
        let zones = vec![(0usize, vals)];
        assert!(t.scan_shards_zoned(&[0], &zones).count() < t.scan_shards(&[0]).count());
        // A point insert breaks segment freshness: the zoned scan must
        // degrade to the full shard, never drop tuples.
        t.insert_row(&["zz", "b0000"]).unwrap();
        assert!(!t.sharded().shard_segments(0).is_fresh());
        let before = t.stats().segments_skipped;
        assert_eq!(
            t.scan_shards_zoned(&[0], &zones).count(),
            t.scan_shards(&[0]).count()
        );
        assert_eq!(
            t.stats().segments_skipped,
            before,
            "stale shards skip nothing"
        );
        assert_eq!(t.zone_skip_counts(&[0], &zones)[0].0, 0);
    }

    #[test]
    fn checkpoint_persists_and_validates_segment_meta() {
        let dir = temp_dir("seg_meta");
        let mut t = segmented_table(2, 300);
        t.checkpoint(&dir).unwrap();
        let reopened = NfTable::open(&dir, "t", SharedDictionary::new()).unwrap();
        assert_eq!(reopened.relation(), t.relation());
        for s in 0..2 {
            let ss = reopened.sharded().shard_segments(s);
            assert!(ss.is_fresh(), "reopen re-derives fresh segments");
            assert_eq!(
                ss.segment_count(),
                t.sharded().shard_segments(s).segment_count(),
                "persisted tiling target survives the round trip"
            );
        }
        // Tamper with the pages: the rebuilt segments no longer match
        // the persisted synopsis and open() must refuse.
        let pages = pages_path(&dir, "t");
        let mut heap = HeapFile::new();
        let mut buf = BytesMut::new();
        for tuple in t.relation().tuples().iter().skip(1) {
            buf.clear();
            encode_nf_tuple(tuple, &mut buf);
            heap.insert(&buf).unwrap();
        }
        heap.save(&pages).unwrap();
        assert!(
            NfTable::open(&dir, "t", SharedDictionary::new()).is_err(),
            "segment synopsis must catch a dropped tuple"
        );
    }

    #[test]
    fn flat_table_baseline_probes_every_row() {
        let mut ft = FlatTable::create("sc", &["Student", "Course"]).unwrap();
        for row in [[0u32, 10], [1, 10], [0, 11], [2, 12]] {
            assert!(ft
                .insert_atoms(row.iter().map(|&v| Atom(v)).collect())
                .unwrap());
        }
        assert_eq!(ft.row_count(), 4);
        let hits = ft.lookup_scan(1, Atom(10));
        assert_eq!(hits.len(), 2);
        assert_eq!(ft.stats().units_probed, 4);
        assert!(ft.delete_atoms(&[Atom(0), Atom(10)]).unwrap());
        assert!(!ft.delete_atoms(&[Atom(0), Atom(10)]).unwrap());
        assert_eq!(ft.row_count(), 3);
    }

    #[test]
    fn flat_table_maintained_index_survives_mutations() {
        let mut ft = FlatTable::create("sc", &["Student", "Course"]).unwrap();
        for row in [[0u32, 10], [1, 10], [0, 11]] {
            ft.insert_atoms(row.iter().map(|&v| Atom(v)).collect())
                .unwrap();
        }
        assert!(ft.lookup_indexed(1, Atom(10)).is_err(), "no index yet");
        ft.create_index(1).unwrap();
        assert_eq!(ft.lookup_indexed(1, Atom(10)).unwrap().len(), 2);
        // The index follows inserts and deletes.
        ft.insert_atoms(vec![Atom(2), Atom(10)]).unwrap();
        ft.delete_atoms(&[Atom(0), Atom(10)]).unwrap();
        assert_eq!(ft.lookup_indexed(1, Atom(10)).unwrap().len(), 2);
        assert!(ft.lookup_indexed(1, Atom(99)).unwrap().is_empty());
        ft.verify_indexes().unwrap();
        // Probe counting: only the posting list is touched.
        let before = ft.stats().units_probed;
        ft.lookup_indexed(1, Atom(11)).unwrap();
        assert_eq!(ft.stats().units_probed - before, 1);
    }

    #[test]
    fn flat_table_rejects_index_on_bad_attr() {
        let mut ft = FlatTable::create("sc", &["A", "B"]).unwrap();
        assert!(ft.create_index(5).is_err());
    }

    #[test]
    fn flat_table_round_trips_relation() {
        let schema = Schema::new("r", &["A", "B"]).unwrap();
        let flat =
            FlatRelation::from_rows(schema, vec![vec![Atom(1), Atom(2)], vec![Atom(3), Atom(4)]])
                .unwrap();
        let ft = FlatTable::from_flat("r", &flat).unwrap();
        assert_eq!(ft.to_flat_relation(), flat);
        assert!(ft.size_bytes() >= crate::page::PAGE_SIZE);
    }
}
