//! Binary encoding of tuples.
//!
//! NF² tuples serialize compactly: for each component, a varint value
//! count followed by delta-encoded varint atom ids (components are sorted,
//! so deltas are small). Flat tuples are the singleton special case. A
//! FNV-1a 64-bit checksum guards page contents.

use bytes::{Buf, BufMut, BytesMut};

use nf2_core::tuple::{FlatTuple, NfTuple, ValueSet};
use nf2_core::value::Atom;

use crate::error::{Result, StorageError};

/// Writes a u64 as LEB128.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 u64.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("varint truncated".into()));
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow".into()));
        }
    }
}

/// Encodes an NF² tuple.
pub fn encode_nf_tuple(t: &NfTuple, out: &mut BytesMut) {
    for comp in t.components() {
        put_varint(out, comp.len() as u64);
        let mut prev = 0u32;
        for (i, a) in comp.iter().enumerate() {
            let delta = if i == 0 { a.0 } else { a.0 - prev };
            put_varint(out, u64::from(delta));
            prev = a.0;
        }
    }
}

/// Decodes an NF² tuple of the given arity.
pub fn decode_nf_tuple(buf: &mut &[u8], arity: usize) -> Result<NfTuple> {
    let mut comps = Vec::with_capacity(arity);
    for attr in 0..arity {
        let count = get_varint(buf)? as usize;
        if count == 0 {
            return Err(StorageError::Corrupt(format!(
                "empty component for attribute {attr}"
            )));
        }
        let mut values = Vec::with_capacity(count);
        let mut prev = 0u32;
        for i in 0..count {
            let raw = get_varint(buf)?;
            let delta = u32::try_from(raw)
                .map_err(|_| StorageError::Corrupt("atom id exceeds u32".into()))?;
            let v = if i == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or_else(|| StorageError::Corrupt("atom id overflow".into()))?
            };
            values.push(Atom(v));
            prev = v;
        }
        comps.push(
            ValueSet::new(values)
                .ok_or_else(|| StorageError::Corrupt("component decoded empty".into()))?,
        );
    }
    Ok(NfTuple::new(comps))
}

/// Encodes a flat tuple (singleton components, counts omitted).
pub fn encode_flat_tuple(t: &[Atom], out: &mut BytesMut) {
    for a in t {
        put_varint(out, u64::from(a.0));
    }
}

/// Decodes a flat tuple of the given arity.
pub fn decode_flat_tuple(buf: &mut &[u8], arity: usize) -> Result<FlatTuple> {
    let mut t = Vec::with_capacity(arity);
    for _ in 0..arity {
        let raw = get_varint(buf)?;
        let v =
            u32::try_from(raw).map_err(|_| StorageError::Corrupt("atom id exceeds u32".into()))?;
        t.push(Atom(v));
    }
    Ok(t)
}

/// FNV-1a 64-bit hash, used as a page checksum.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1 << 40);
        let truncated = &buf[..buf.len() - 1];
        let mut slice = truncated;
        assert!(get_varint(&mut slice).is_err());
    }

    #[test]
    fn varint_rejects_overflow() {
        let bytes = [0xffu8; 11];
        let mut slice: &[u8] = &bytes;
        assert!(get_varint(&mut slice).is_err());
    }

    #[test]
    fn nf_tuple_round_trips() {
        let t = NfTuple::new(vec![vs(&[5, 100, 101]), vs(&[7]), vs(&[0, 1_000_000])]);
        let mut buf = BytesMut::new();
        encode_nf_tuple(&t, &mut buf);
        let mut slice: &[u8] = &buf;
        let decoded = decode_nf_tuple(&mut slice, 3).unwrap();
        assert_eq!(decoded, t);
        assert!(slice.is_empty());
    }

    #[test]
    fn delta_encoding_is_compact() {
        // Dense sorted ids should encode in ~1 byte per value.
        let t = NfTuple::new(vec![vs(&(0..64).collect::<Vec<u32>>())]);
        let mut buf = BytesMut::new();
        encode_nf_tuple(&t, &mut buf);
        assert!(
            buf.len() <= 66,
            "64 dense values should fit ~66 bytes, got {}",
            buf.len()
        );
    }

    #[test]
    fn flat_tuple_round_trips() {
        let t: FlatTuple = vec![Atom(1), Atom(2_000_000), Atom(3)];
        let mut buf = BytesMut::new();
        encode_flat_tuple(&t, &mut buf);
        let mut slice: &[u8] = &buf;
        assert_eq!(decode_flat_tuple(&mut slice, 3).unwrap(), t);
    }

    #[test]
    fn decode_rejects_zero_count() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 0); // component count 0 is invalid
        let mut slice: &[u8] = &buf;
        assert!(decode_nf_tuple(&mut slice, 1).is_err());
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let h1 = fnv1a64(b"nf2");
        assert_eq!(h1, fnv1a64(b"nf2"));
        assert_ne!(h1, fnv1a64(b"nf3"));
        assert_ne!(fnv1a64(b""), 0);
    }
}
