//! Heap files: a growable collection of slotted pages with record ids,
//! plus whole-file persistence.

use std::io::{Read, Write};
use std::path::Path;

use crate::error::{Result, StorageError};
use crate::page::{Page, SlotId, MAX_RECORD, PAGE_SIZE};

/// Stable address of a record inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page index.
    pub page: u32,
    /// Slot within the page.
    pub slot: SlotId,
}

/// An append-friendly file of slotted pages.
#[derive(Debug, Clone, Default)]
pub struct HeapFile {
    pages: Vec<Page>,
}

impl HeapFile {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live records across all pages.
    pub fn record_count(&self) -> usize {
        self.pages.iter().map(Page::live_count).sum()
    }

    /// Total on-disk footprint in bytes (pages are fixed-size frames).
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Inserts a record into the first page with room, appending a new
    /// page when none fits.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordId> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        // First-fit over existing pages (small files; fine for our scale).
        for (i, page) in self.pages.iter_mut().enumerate() {
            if page.fits(record.len()) {
                let slot = page.insert(record)?;
                return Ok(RecordId {
                    page: i as u32,
                    slot,
                });
            }
        }
        let mut page = Page::new(self.pages.len() as u32);
        let slot = page.insert(record)?;
        self.pages.push(page);
        Ok(RecordId {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    /// Reads a record.
    pub fn get(&self, rid: RecordId) -> Result<&[u8]> {
        self.page(rid.page)?.get(rid.slot)
    }

    /// Deletes a record.
    pub fn delete(&mut self, rid: RecordId) -> Result<()> {
        let page = self.pages.get_mut(rid.page as usize).ok_or_else(|| {
            StorageError::InvalidRecord(format!("page {} out of range", rid.page))
        })?;
        page.delete(rid.slot)
    }

    /// Iterates `(rid, record)` over all live records.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(i, page)| {
            page.iter().map(move |(slot, rec)| {
                (
                    RecordId {
                        page: i as u32,
                        slot,
                    },
                    rec,
                )
            })
        })
    }

    /// Compacts every page in place.
    pub fn compact(&mut self) {
        for page in &mut self.pages {
            page.compact();
        }
    }

    /// Drops all pages.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Writes all pages to `path` (fixed-size frames back to back).
    pub fn save(&self, path: &Path) -> Result<()> {
        let mut file = std::fs::File::create(path)?;
        for page in &self.pages {
            file.write_all(&page.to_bytes())?;
        }
        file.flush()?;
        Ok(())
    }

    /// Loads a heap file, verifying every page checksum.
    pub fn load(path: &Path) -> Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() % PAGE_SIZE != 0 {
            return Err(StorageError::Corrupt(format!(
                "heap file length {} is not a multiple of the page size",
                bytes.len()
            )));
        }
        let pages = bytes
            .chunks_exact(PAGE_SIZE)
            .map(Page::from_bytes)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { pages })
    }

    fn page(&self, id: u32) -> Result<&Page> {
        self.pages
            .get(id as usize)
            .ok_or_else(|| StorageError::InvalidRecord(format!("page {id} out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_spills_to_new_pages() {
        let mut h = HeapFile::new();
        let rec = vec![0u8; 3000];
        for _ in 0..10 {
            h.insert(&rec).unwrap();
        }
        assert!(
            h.page_count() >= 4,
            "10 x 3KB records need several 8KB pages"
        );
        assert_eq!(h.record_count(), 10);
    }

    #[test]
    fn get_and_delete_by_rid() {
        let mut h = HeapFile::new();
        let r1 = h.insert(b"one").unwrap();
        let r2 = h.insert(b"two").unwrap();
        assert_eq!(h.get(r1).unwrap(), b"one");
        h.delete(r1).unwrap();
        assert!(h.get(r1).is_err());
        assert_eq!(h.get(r2).unwrap(), b"two");
        assert_eq!(h.record_count(), 1);
    }

    #[test]
    fn iter_covers_live_records() {
        let mut h = HeapFile::new();
        let r1 = h.insert(b"a").unwrap();
        h.insert(b"b").unwrap();
        h.delete(r1).unwrap();
        let contents: Vec<&[u8]> = h.iter().map(|(_, rec)| rec).collect();
        assert_eq!(contents, vec![b"b".as_slice()]);
    }

    #[test]
    fn delete_reuses_space_after_compact() {
        let mut h = HeapFile::new();
        let rids: Vec<RecordId> = (0..8).map(|_| h.insert(&[9u8; 1800]).unwrap()).collect();
        let pages_before = h.page_count();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        h.compact();
        for _ in 0..8 {
            h.insert(&[7u8; 1800]).unwrap();
        }
        assert_eq!(h.page_count(), pages_before, "compacted space is reused");
    }

    #[test]
    fn save_and_load_round_trips() {
        let dir = std::env::temp_dir().join("nf2_heap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.nf2");
        let mut h = HeapFile::new();
        let r1 = h.insert(b"durable").unwrap();
        h.insert(&vec![5u8; 4000]).unwrap();
        h.save(&path).unwrap();
        let loaded = HeapFile::load(&path).unwrap();
        assert_eq!(loaded.record_count(), 2);
        assert_eq!(loaded.get(r1).unwrap(), b"durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let dir = std::env::temp_dir().join("nf2_heap_test_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.nf2");
        let mut h = HeapFile::new();
        h.insert(b"x").unwrap();
        h.save(&path).unwrap();
        // Flip a byte in the payload region.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(HeapFile::load(&path).is_err());
        // And a truncated file.
        std::fs::write(&path, &bytes[..100]).unwrap();
        assert!(HeapFile::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_rids_error() {
        let h = HeapFile::new();
        assert!(h.get(RecordId { page: 0, slot: 0 }).is_err());
        let mut h = HeapFile::new();
        h.insert(b"z").unwrap();
        assert!(h.delete(RecordId { page: 5, slot: 0 }).is_err());
    }
}
