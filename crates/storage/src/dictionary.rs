//! A concurrent, shareable interning dictionary.
//!
//! Wraps the core [`Dictionary`](nf2_core::value::Dictionary) in a
//! `parking_lot::RwLock` behind an `Arc`, so storage tables, query
//! sessions and benchmark threads can share one value space.

use std::sync::Arc;

use parking_lot::RwLock;

use nf2_core::value::{Atom, Dictionary};

/// A thread-safe interning dictionary.
#[derive(Debug, Default, Clone)]
pub struct SharedDictionary {
    inner: Arc<RwLock<Dictionary>>,
}

impl SharedDictionary {
    /// A fresh empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its atom.
    pub fn intern(&self, name: &str) -> Atom {
        // Fast path: read lock only.
        if let Some(atom) = self.inner.read().lookup(name) {
            return atom;
        }
        self.inner.write().intern(name)
    }

    /// Interns a whole row of names.
    pub fn intern_row(&self, names: &[&str]) -> Vec<Atom> {
        names.iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up without interning.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.inner.read().lookup(name)
    }

    /// Resolves an atom to its name (owned, since the lock cannot escape).
    pub fn resolve(&self, atom: Atom) -> Option<String> {
        self.inner.read().resolve(atom).map(str::to_owned)
    }

    /// Resolves with a numeric fallback.
    pub fn resolve_or_id(&self, atom: Atom) -> String {
        self.inner.read().resolve_or_id(atom)
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// A point-in-time copy of the underlying dictionary, for use with
    /// core display helpers that take `&Dictionary`.
    pub fn snapshot(&self) -> Dictionary {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_resolve() {
        let d = SharedDictionary::new();
        let a = d.intern("s1");
        assert_eq!(d.intern("s1"), a);
        assert_eq!(d.resolve(a).as_deref(), Some("s1"));
        assert_eq!(d.lookup("s2"), None);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let d = SharedDictionary::new();
        let d2 = d.clone();
        let a = d.intern("shared");
        assert_eq!(d2.lookup("shared"), Some(a));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let d = SharedDictionary::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut atoms = Vec::new();
                    for i in 0..50 {
                        atoms.push((format!("v{}", i % 10), d.intern(&format!("v{}", i % 10))));
                    }
                    let _ = t;
                    atoms
                })
            })
            .collect();
        let mut seen: std::collections::HashMap<String, Atom> = std::collections::HashMap::new();
        for h in handles {
            for (name, atom) in h.join().unwrap() {
                let prev = seen.entry(name).or_insert(atom);
                assert_eq!(
                    *prev, atom,
                    "same name must intern to the same atom everywhere"
                );
            }
        }
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn snapshot_is_independent() {
        let d = SharedDictionary::new();
        let a = d.intern("x");
        let snap = d.snapshot();
        d.intern("y");
        assert_eq!(snap.resolve(a), Some("x"));
        assert_eq!(snap.len(), 1, "snapshot does not see later interns");
    }
}
