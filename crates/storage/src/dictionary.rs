//! A concurrent, shareable interning dictionary.
//!
//! Wraps the core [`nf2_core::value::Dictionary`] in a
//! `parking_lot::RwLock` behind an `Arc`, so storage tables, query
//! sessions and benchmark threads can share one value space.

use std::sync::Arc;

use parking_lot::RwLock;

use nf2_core::value::{Atom, Dictionary};

#[derive(Debug, Default)]
struct Inner {
    dict: RwLock<Dictionary>,
    /// Cached point-in-time snapshot. The dictionary is append-only, so
    /// a cached snapshot is valid exactly while its length matches the
    /// live dictionary's — no other invalidation is needed.
    snap: RwLock<Option<Arc<Dictionary>>>,
}

/// A thread-safe interning dictionary.
#[derive(Debug, Default, Clone)]
pub struct SharedDictionary {
    inner: Arc<Inner>,
}

impl SharedDictionary {
    /// A fresh empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its atom.
    pub fn intern(&self, name: &str) -> Atom {
        // Fast path: read lock only.
        if let Some(atom) = self.inner.dict.read().lookup(name) {
            return atom;
        }
        self.inner.dict.write().intern(name)
    }

    /// Interns a whole row of names.
    pub fn intern_row(&self, names: &[&str]) -> Vec<Atom> {
        names.iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up without interning.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.inner.dict.read().lookup(name)
    }

    /// Resolves an atom to its name (owned, since the lock cannot escape).
    pub fn resolve(&self, atom: Atom) -> Option<String> {
        self.inner.dict.read().resolve(atom).map(str::to_owned)
    }

    /// Resolves with a numeric fallback.
    pub fn resolve_or_id(&self, atom: Atom) -> String {
        self.inner.dict.read().resolve_or_id(atom)
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.inner.dict.read().len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.dict.read().is_empty()
    }

    /// Whether atom-id order agrees with lexicographic string order —
    /// see [`Dictionary::is_id_ordered`]. While this holds, storage
    /// order (atom codes ascending) ranks values exactly like the query
    /// layer's resolved-string comparator, so `ORDER BY` can stream
    /// straight off sorted segments. Append-only: once `false`, always
    /// `false`, so a `true` answer can only be invalidated by interns
    /// that happen after it — callers that bind a plan against a
    /// dictionary snapshot should consult the snapshot's own flag.
    pub fn is_id_ordered(&self) -> bool {
        self.inner.dict.read().is_id_ordered()
    }

    /// A point-in-time view of the underlying dictionary, for use with
    /// core display helpers that take `&Dictionary` (auto-deref from the
    /// returned `Arc`).
    ///
    /// Cheap on the hot path: because interning is append-only, the copy
    /// is cached and reused until the dictionary grows — result
    /// rendering in a query loop clones an `Arc`, not every string.
    pub fn snapshot(&self) -> Arc<Dictionary> {
        let len = self.inner.dict.read().len();
        if let Some(s) = self.inner.snap.read().as_ref() {
            if s.len() == len {
                return s.clone();
            }
        }
        let fresh = Arc::new(self.inner.dict.read().clone());
        *self.inner.snap.write() = Some(fresh.clone());
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_resolve() {
        let d = SharedDictionary::new();
        let a = d.intern("s1");
        assert_eq!(d.intern("s1"), a);
        assert_eq!(d.resolve(a).as_deref(), Some("s1"));
        assert_eq!(d.lookup("s2"), None);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let d = SharedDictionary::new();
        let d2 = d.clone();
        let a = d.intern("shared");
        assert_eq!(d2.lookup("shared"), Some(a));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let d = SharedDictionary::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut atoms = Vec::new();
                    for i in 0..50 {
                        atoms.push((format!("v{}", i % 10), d.intern(&format!("v{}", i % 10))));
                    }
                    let _ = t;
                    atoms
                })
            })
            .collect();
        let mut seen: std::collections::HashMap<String, Atom> = std::collections::HashMap::new();
        for h in handles {
            for (name, atom) in h.join().unwrap() {
                let prev = seen.entry(name).or_insert(atom);
                assert_eq!(
                    *prev, atom,
                    "same name must intern to the same atom everywhere"
                );
            }
        }
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn snapshot_is_independent() {
        let d = SharedDictionary::new();
        let a = d.intern("x");
        let snap = d.snapshot();
        d.intern("y");
        assert_eq!(snap.resolve(a), Some("x"));
        assert_eq!(snap.len(), 1, "snapshot does not see later interns");
    }

    #[test]
    fn snapshot_is_cached_until_growth() {
        let d = SharedDictionary::new();
        d.intern("x");
        let s1 = d.snapshot();
        let s2 = d.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "no growth → same cached snapshot");
        d.intern("y");
        let s3 = d.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3), "growth invalidates the cache");
        assert_eq!(s3.len(), 2);
    }

    /// Snapshots taken during a concurrent intern storm are never torn:
    /// every entry a snapshot holds resolves to exactly the string it
    /// was interned for, and the whole prefix `0..len` is dense — the
    /// append-only contract means a snapshot of length `n` is *the*
    /// first `n` interns, not an arbitrary subset.
    #[test]
    fn concurrent_snapshots_are_never_torn() {
        let d = SharedDictionary::new();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for w in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        d.intern(&format!("w{w}-{i}"));
                    }
                });
            }
            for _ in 0..4 {
                let d = d.clone();
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut last_len = 0;
                    while !done.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = d.snapshot();
                        assert!(
                            snap.len() >= last_len,
                            "append-only: snapshots grow monotonically"
                        );
                        last_len = snap.len();
                        for id in 0..snap.len() as u32 {
                            let name = snap
                                .resolve(Atom(id))
                                .expect("snapshot prefix is dense — no holes");
                            assert_eq!(
                                snap.lookup(name),
                                Some(Atom(id)),
                                "snapshot maps both directions consistently"
                            );
                        }
                    }
                });
            }
            // Scoped: writer threads finish first, then release readers.
            // (The writer spawns above are joined by the scope only at the
            // end, so flag completion from a dedicated watcher.)
            let d_watch = d.clone();
            let done_w = Arc::clone(&done);
            s.spawn(move || {
                while d_watch.len() < 1000 {
                    std::thread::yield_now();
                }
                done_w.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(d.len(), 1000);
        // After the storm, the cached snapshot settles: two reads at the
        // final length reuse one Arc.
        let s1 = d.snapshot();
        let s2 = d.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "cache reuses the settled snapshot");
        assert_eq!(s1.len(), 1000);
    }

    /// The same-length fast path under concurrency: readers hammering
    /// `snapshot()` while nothing is interned all share one cached Arc.
    #[test]
    fn concurrent_snapshot_reads_share_the_cached_arc() {
        let d = SharedDictionary::new();
        for i in 0..64 {
            d.intern(&format!("v{i}"));
        }
        let base = d.snapshot();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                let base = base.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        let snap = d.snapshot();
                        assert!(
                            Arc::ptr_eq(&snap, &base),
                            "no growth → every thread reuses the cached snapshot"
                        );
                    }
                });
            }
        });
    }
}
