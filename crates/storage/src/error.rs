//! Storage-layer errors.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying NF² model rejected an operation.
    Model(nf2_core::NfError),
    /// A page checksum did not match its contents (corruption).
    ChecksumMismatch {
        /// The page whose checksum failed.
        page_id: u32,
    },
    /// A page or record reference was invalid.
    InvalidRecord(String),
    /// A serialized buffer could not be decoded.
    Corrupt(String),
    /// The record does not fit in a page.
    RecordTooLarge {
        /// Encoded record size.
        size: usize,
        /// Maximum payload a page can hold.
        max: usize,
    },
    /// An I/O error during persistence.
    Io(std::io::Error),
    /// Every buffer-pool frame is pinned; nothing can be evicted.
    PoolExhausted {
        /// Number of frames in the pool, all pinned.
        capacity: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Model(e) => write!(f, "model error: {e}"),
            StorageError::ChecksumMismatch { page_id } => {
                write!(f, "checksum mismatch on page {page_id}")
            }
            StorageError::InvalidRecord(msg) => write!(f, "invalid record: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds page payload capacity {max}"
                )
            }
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::PoolExhausted { capacity } => {
                write!(f, "all {capacity} buffer-pool frames are pinned")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Model(e) => Some(e),
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nf2_core::NfError> for StorageError {
    fn from(e: nf2_core::NfError) -> Self {
        StorageError::Model(e)
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(StorageError, &str)> = vec![
            (
                StorageError::Model(nf2_core::NfError::OverlappingTuples),
                "model error",
            ),
            (StorageError::ChecksumMismatch { page_id: 3 }, "checksum"),
            (StorageError::InvalidRecord("x".into()), "invalid record"),
            (StorageError::Corrupt("y".into()), "corrupt"),
            (
                StorageError::RecordTooLarge {
                    size: 9999,
                    max: 100,
                },
                "exceeds",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle));
        }
    }

    #[test]
    fn conversions() {
        let e: StorageError = nf2_core::NfError::DuplicateFlatTuple.into();
        assert!(matches!(e, StorageError::Model(_)));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
