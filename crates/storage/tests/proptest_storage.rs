//! Property tests for the storage substrate: codecs are bijections,
//! pages never lose live records, heaps and tables round-trip through
//! persistence.

use bytes::BytesMut;
use proptest::prelude::*;

use nf2_core::schema::NestOrder;
use nf2_core::tuple::{FlatTuple, NfTuple, ValueSet};
use nf2_core::value::Atom;
use nf2_storage::codec::{
    decode_flat_tuple, decode_nf_tuple, encode_flat_tuple, encode_nf_tuple, get_varint, put_varint,
};
use nf2_storage::{BufferPool, HashIndex, HeapFile, NfTable, Page, PagedFile, SharedDictionary};

fn arb_nf_tuple() -> impl Strategy<Value = NfTuple> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..10_000, 1..12), 1..5).prop_map(
        |comps| {
            NfTuple::new(
                comps
                    .into_iter()
                    .map(|s| ValueSet::new(s.into_iter().map(Atom).collect()).unwrap())
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, v);
        let mut slice: &[u8] = &buf;
        prop_assert_eq!(get_varint(&mut slice).unwrap(), v);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn nf_tuple_codec_round_trips(t in arb_nf_tuple()) {
        let mut buf = BytesMut::new();
        encode_nf_tuple(&t, &mut buf);
        let mut slice: &[u8] = &buf;
        let decoded = decode_nf_tuple(&mut slice, t.arity()).unwrap();
        prop_assert_eq!(decoded, t);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn flat_tuple_codec_round_trips(vals in proptest::collection::vec(0u32..100_000, 1..8)) {
        let t: FlatTuple = vals.into_iter().map(Atom).collect();
        let mut buf = BytesMut::new();
        encode_flat_tuple(&t, &mut buf);
        let mut slice: &[u8] = &buf;
        prop_assert_eq!(decode_flat_tuple(&mut slice, t.len()).unwrap(), t);
    }

    /// Any insert/delete interleaving on a page keeps exactly the live
    /// records readable, and serialization preserves them.
    #[test]
    fn page_tracks_live_records(
        ops in proptest::collection::vec((any::<bool>(), 1usize..200), 1..40)
    ) {
        let mut page = Page::new(1);
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut counter = 0u8;
        for (is_insert, len) in ops {
            if is_insert || live.is_empty() {
                counter = counter.wrapping_add(1);
                let rec = vec![counter; len];
                if page.fits(rec.len()) {
                    let slot = page.insert(&rec).unwrap();
                    live.retain(|(s, _)| *s != slot);
                    live.push((slot, rec));
                }
            } else {
                let (slot, _) = live.remove(0);
                page.delete(slot).unwrap();
            }
        }
        for (slot, rec) in &live {
            prop_assert_eq!(page.get(*slot).unwrap(), rec.as_slice());
        }
        prop_assert_eq!(page.live_count(), live.len());
        // Round-trip through bytes.
        let restored = Page::from_bytes(&page.to_bytes()).unwrap();
        for (slot, rec) in &live {
            prop_assert_eq!(restored.get(*slot).unwrap(), rec.as_slice());
        }
        // Compaction preserves content too.
        let mut compacted = page.clone();
        compacted.compact();
        for (slot, rec) in &live {
            prop_assert_eq!(compacted.get(*slot).unwrap(), rec.as_slice());
        }
    }

    /// Reads through a tiny buffer pool always return the same bytes as
    /// the backing file, whatever the access pattern and pool size.
    #[test]
    fn buffer_pool_is_transparent(
        accesses in proptest::collection::vec(0u32..6, 1..80),
        capacity in 1usize..5,
        case_id in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join("nf2_pool_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pool_{case_id}.pages"));
        let mut file = PagedFile::create(&path).unwrap();
        let mut slots = Vec::new();
        for id in 0..6u32 {
            file.allocate().unwrap();
            let mut p = file.read_page(id).unwrap();
            let slot = p.insert(format!("payload-{id}").as_bytes()).unwrap();
            file.write_page(&p).unwrap();
            slots.push(slot);
        }
        let mut pool = BufferPool::new(file, capacity);
        for &id in &accesses {
            let expected = format!("payload-{id}");
            let page = pool.fetch(id).unwrap();
            prop_assert_eq!(page.get(slots[id as usize]).unwrap(), expected.as_bytes());
        }
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, accesses.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    /// A hash index maintained through any insert/delete interleaving
    /// stays consistent with the heap (verified by the integrity check)
    /// and answers lookups exactly.
    #[test]
    fn hash_index_tracks_heap_mutations(
        ops in proptest::collection::vec((any::<bool>(), 0u32..5, 0u32..5), 1..60)
    ) {
        let mut heap = HeapFile::new();
        let mut index = HashIndex::new(0);
        let mut live: Vec<(nf2_storage::RecordId, FlatTuple)> = Vec::new();
        let mut buf = BytesMut::new();
        for (is_insert, a, b) in ops {
            if is_insert || live.is_empty() {
                let row: FlatTuple = vec![Atom(a), Atom(b)];
                buf.clear();
                encode_flat_tuple(&row, &mut buf);
                let rid = heap.insert(&buf).unwrap();
                index.insert(row[0], rid);
                live.push((rid, row));
            } else {
                let (rid, row) = live.remove((a as usize + b as usize) % live.len());
                heap.delete(rid).unwrap();
                prop_assert!(index.remove(row[0], rid));
            }
        }
        index.verify_against_flat(&heap, 2).unwrap();
        for value in 0u32..5 {
            let expected = live.iter().filter(|(_, row)| row[0] == Atom(value)).count();
            let got = index.lookup(Atom(value)).map_or(0, |s| s.len());
            prop_assert_eq!(got, expected, "value {}", value);
        }
    }

    /// Heap files keep every inserted record addressable until deleted.
    #[test]
    fn heap_file_is_a_faithful_multimap(
        recs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..30),
        delete_mask in any::<u32>(),
    ) {
        let mut heap = HeapFile::new();
        let rids: Vec<_> = recs.iter().map(|r| heap.insert(r).unwrap()).collect();
        let mut expected = Vec::new();
        for (i, (rid, rec)) in rids.iter().zip(&recs).enumerate() {
            if delete_mask & (1 << (i % 32)) != 0 {
                heap.delete(*rid).unwrap();
            } else {
                expected.push((*rid, rec.clone()));
            }
        }
        prop_assert_eq!(heap.record_count(), expected.len());
        for (rid, rec) in &expected {
            prop_assert_eq!(heap.get(*rid).unwrap(), rec.as_slice());
        }
    }
}

/// Non-proptest: a randomized end-to-end table persistence cycle, kept
/// deterministic by a fixed seed.
#[test]
fn table_checkpoint_cycle_is_lossless() {
    let dir = std::env::temp_dir().join("nf2_proptest_storage");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let dict = SharedDictionary::new();
    let t = NfTable::create("p", &["A", "B", "C"], NestOrder::identity(3), dict).unwrap();
    let mut state = 0x5eedu64;
    for _ in 0..150 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let row = [
            format!("a{}", (state >> 10) % 9),
            format!("b{}", (state >> 20) % 7),
            format!("c{}", (state >> 30) % 5),
        ];
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        if state.is_multiple_of(4) {
            let _ = t.delete_row(&refs).unwrap();
        } else {
            let _ = t.insert_row(&refs).unwrap();
        }
    }
    t.checkpoint(&dir).unwrap();
    let restored = NfTable::open(&dir, "p", SharedDictionary::new()).unwrap();
    assert_eq!(restored.relation(), t.relation());
}
