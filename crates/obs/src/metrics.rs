//! A process-wide registry of named counters and latency histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are cheap `Arc` clones around
//! lock-free atomics: the registry lock is taken only at
//! **get-or-create** time, so hot paths resolve their handles once and
//! then record with plain `Relaxed` atomic adds. Histograms bucket
//! values by log₂ (bucket *i* ≥ 1 covers `[2^(i-1), 2^i)`), which keeps
//! recording allocation-free and makes p50/p95/p99 a cumulative bucket
//! walk at snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registry-owned) — useful in tests.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds the value `0`, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`, so 65 buckets cover all of `u64`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A log₂-bucketed histogram handle (typically of latencies in
/// microseconds). Recording is two atomic adds and one increment;
/// quantiles are estimated at snapshot time as the upper bound of the
/// bucket containing the requested rank.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

/// Bucket index of `value`: 0 for 0, else `64 − leading_zeros`.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `idx` (the quantile estimate).
fn bucket_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// A free-standing histogram (not registry-owned).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let h = &*self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time summary. Like every snapshot of live `Relaxed`
    /// counters, concurrent recordings may tear across the fields
    /// (`count` and `sum` can disagree by in-flight observations); each
    /// field is exact once writers quiesce.
    pub fn summarize(&self) -> HistogramSummary {
        let h = &*self.0;
        let buckets: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum = h.sum.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the requested quantile, 1-based, clamped to count.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (idx, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_bound(idx);
                }
            }
            bucket_bound(BUCKETS - 1)
        };
        let max_bucket = buckets.iter().rposition(|&n| n > 0);
        HistogramSummary {
            count,
            sum,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: max_bucket.map(bucket_bound).unwrap_or(0),
        }
    }
}

/// A histogram's summarized state: totals plus log₂-bucket quantile
/// estimates (each quantile reports its bucket's inclusive upper bound,
/// so estimates are conservative within a factor of 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Upper bound of the highest non-empty bucket.
    pub max: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named registry of counters and histograms.
///
/// One process-wide instance is available through [`global`]; an
/// engine defaults to its own private registry so tests and embedded
/// engines stay hermetic — the series names are identical either way.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter named `name`. The returned handle is a
    /// cheap clone; resolve it once outside hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        map.insert(name.to_owned(), c.clone());
        c
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram::new();
        map.insert(name.to_owned(), h.clone());
        h
    }

    /// A point-in-time snapshot of every series, in name order. Series
    /// tear independently under concurrent recording (see
    /// [`Histogram::summarize`]); take before/after snapshots and
    /// compare deltas rather than re-reading live handles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| (n.clone(), h.summarize()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// The process-wide registry (see [`MetricsRegistry`] for when to
/// prefer a private one).
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A rendered-out registry state: counters and histogram summaries in
/// name order, exportable as aligned text or JSON.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` per histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Appends a counter series (used to merge engine-external series,
    /// e.g. per-table storage stats, into one export).
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Appends a histogram series.
    pub fn push_histogram(&mut self, name: impl Into<String>, summary: HistogramSummary) {
        self.histograms.push((name.into(), summary));
    }

    /// Human-readable rendering: one line per series.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}: count={} sum={} mean={:.1} p50<={} p95<={} p99<={} max<={}\n",
                h.count,
                h.sum,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max
            ));
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// JSON rendering (the shape `repro --json` embeds in BENCH files).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{}:{v}", json_string(n)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                format!(
                    "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                    json_string(n),
                    h.count,
                    h.sum,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            histograms.join(",")
        )
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is >= the value.
        for v in [0u64, 1, 5, 1000, 1 << 40, u64::MAX] {
            assert!(bucket_bound(bucket_of(v)) >= v);
        }
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_buckets() {
        let h = Histogram::new();
        // 90 fast observations (~8us), 10 slow ones (~1000us).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 8 + 10 * 1000);
        assert_eq!(s.p50, bucket_bound(bucket_of(8)), "median is a fast one");
        assert_eq!(s.p99, bucket_bound(bucket_of(1000)), "p99 is a slow one");
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95 && s.max >= s.p99);
        assert!((s.mean() - 107.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = Histogram::new().summarize();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0
            }
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("x").get(), 3, "same underlying atomic");
        reg.histogram("h").record(7);
        reg.histogram("h").record(9);
        assert_eq!(reg.histogram("h").summarize().count, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("x".to_owned(), 3)]);
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn global_registry_is_one_instance() {
        let c = global().counter("obs.test.global");
        let before = c.get();
        global().counter("obs.test.global").incr();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn snapshot_exports_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(4);
        reg.histogram("b.us").record(100);
        let mut snap = reg.snapshot();
        snap.push_counter("table.sc.lookups", 9);
        let text = snap.to_text();
        assert!(text.contains("a.count = 4"));
        assert!(text.contains("table.sc.lookups = 9"));
        assert!(text.contains("b.us: count=1"));
        let json = snap.to_json();
        assert!(json.contains("\"a.count\":4"));
        assert!(json.contains("\"b.us\":{\"count\":1"));
        assert!(json.contains("\"table.sc.lookups\":9"));
        assert_eq!(
            MetricsSnapshot::default().to_json(),
            "{\"counters\":{},\"histograms\":{}}"
        );
    }
}
