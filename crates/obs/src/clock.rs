//! Monotonic timing, confined here.
//!
//! This module is the **only** place outside the bench crate allowed to
//! touch `std::time::Instant` (`cargo xtask lint` enforces the
//! containment lexically). Everything else in the workspace measures
//! time through [`Stopwatch`], so timing policy — what clock, what
//! resolution, what happens on non-monotonic hosts — lives in exactly
//! one file.

use std::time::Instant;

/// A started monotonic stopwatch. Reading it never mutates, so one
/// stopwatch can be sampled repeatedly (each read is the elapsed time
/// since [`Stopwatch::start`]).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed nanoseconds since start (saturating at `u64::MAX`,
    /// ~584 years).
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        let n = self.0.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }

    /// Elapsed microseconds since start.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed_nanos() / 1_000
    }

    /// Elapsed milliseconds since start, fractional.
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_nanos() as f64 / 1e6
    }
}

/// Renders a nanosecond duration human-readably (`412ns`, `3.1us`,
/// `2.45ms`, `1.203s`) — the format EXPLAIN ANALYZE annotations use.
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic_and_samples_repeatedly() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a, "second sample must not go backwards");
        assert!(sw.elapsed_us() <= sw.elapsed_nanos());
    }

    #[test]
    fn format_nanos_picks_the_right_unit() {
        assert_eq!(format_nanos(412), "412ns");
        assert_eq!(format_nanos(3_100), "3.1us");
        assert_eq!(format_nanos(2_450_000), "2.45ms");
        assert_eq!(format_nanos(1_203_000_000), "1.203s");
    }
}
