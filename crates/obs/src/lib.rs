//! # nf2-obs — structured tracing and metrics for the NF² engine
//!
//! A lightweight, dependency-free observability layer (the workspace is
//! offline, so this is vendored in-tree rather than pulled from
//! crates.io), in three pieces:
//!
//! * [`clock`] — [`Stopwatch`], the **only** sanctioned monotonic-time
//!   source outside the bench crate (`cargo xtask lint` confines
//!   `std::time::Instant` here);
//! * [`metrics`] — a [`MetricsRegistry`] of named atomic [`Counter`]s
//!   and log₂-bucketed latency [`Histogram`]s (p50/p95/p99 summaries),
//!   snapshot-exportable as text and JSON;
//! * [`trace`] — [`Span`] guards and structured [`Event`]s dispatched
//!   to a pluggable [`Subscriber`] ([`RingBufferSink`], [`StderrSink`];
//!   silent by default) behind a one-load enabled flag.
//!
//! The engine hangs onto an [`Obs`] hub and threads it through the
//! statement lifecycle; see the README's Observability section for the
//! span taxonomy and metric names.
//!
//! ```
//! use nf2_obs::{Obs, RingBufferSink};
//! use std::sync::Arc;
//!
//! let obs = Obs::new();
//! let lat = obs.registry().histogram("stmt.select.us");
//! {
//!     let _span = obs.span("stmt.select").observe(&lat);
//!     // ... run the statement ...
//! }
//! assert_eq!(lat.summarize().count, 1);
//!
//! let ring = Arc::new(RingBufferSink::new(16));
//! obs.set_subscriber(Some(ring.clone()));
//! obs.event("optimizer.rule", || vec![("rule", "push-select".into())]);
//! assert_eq!(ring.events(), vec!["optimizer.rule{rule=push-select}".to_owned()]);
//! ```

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{format_nanos, Stopwatch};
pub use metrics::{global, Counter, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use trace::{Event, FieldValue, Obs, RingBufferSink, Span, StderrSink, Subscriber};
