//! Structured events, span guards, and pluggable subscribers.
//!
//! The shape follows the DataTracks optimizer exemplar: producers emit
//! named events with key/value fields from inside hot code
//! (per-rewrite-rule applications, statement completions), and a
//! process-chosen [`Subscriber`] consumes them — silently dropped when
//! none is installed. The enabled check is a single `Relaxed` load, so
//! instrumentation left in place costs ~nothing with tracing off.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::clock::Stopwatch;
use crate::metrics::{Histogram, MetricsRegistry};

/// A structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event: a name plus key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name, dot-separated by convention (`stmt.slow`,
    /// `optimizer.rule`).
    pub name: &'static str,
    /// Structured fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Renders `name{k=v, k=v}` — the sink-side text form.
    pub fn render(&self) -> String {
        let mut out = String::from(self.name);
        if !self.fields.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push('}');
        }
        out
    }
}

/// Consumes emitted [`Event`]s. Implementations must be cheap or
/// internally buffered — they run inline on the emitting thread.
pub trait Subscriber: Send + Sync {
    /// Receives one event.
    fn event(&self, event: &Event);
}

/// A subscriber that renders events to stderr as they arrive.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Subscriber for StderrSink {
    fn event(&self, event: &Event) {
        eprintln!("[nf2-obs] {}", event.render());
    }
}

/// A subscriber that keeps the last `capacity` rendered events in a
/// ring buffer — the default consumer for tests and the interactive
/// shell (`\metrics` shows the tail).
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<String>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<String> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl Subscriber for RingBufferSink {
    fn event(&self, event: &Event) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.render());
    }
}

/// The observability hub an engine (or any component) hangs onto: a
/// metrics registry plus an optional subscriber behind a fast enabled
/// flag.
///
/// Two independent switches:
///
/// * the **subscriber** is silent by default — producers check
///   [`enabled`](Obs::enabled) (one `Relaxed` load) before building any
///   event, so tracing left in shipping code costs ~nothing off;
/// * **metrics** recording is on by default and can be killed with
///   [`set_metrics_enabled`](Obs::set_metrics_enabled) — the switch the
///   E22 overhead experiment toggles to price the instrumentation
///   itself.
#[derive(Debug)]
pub struct Obs {
    metrics_enabled: AtomicBool,
    subscriber_enabled: AtomicBool,
    subscriber: RwLock<Option<Arc<dyn Subscriber>>>,
    registry: Arc<MetricsRegistry>,
}

impl fmt::Debug for dyn Subscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Subscriber")
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A hub with its own private registry and no subscriber.
    pub fn new() -> Self {
        Obs::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// A hub recording into `registry` (share one across components, or
    /// pass [`crate::metrics::global`] wrapped in an `Arc` holder).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        Obs {
            metrics_enabled: AtomicBool::new(true),
            subscriber_enabled: AtomicBool::new(false),
            subscriber: RwLock::new(None),
            registry,
        }
    }

    /// The metrics registry this hub records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Whether a subscriber is installed (the producer-side fast path).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.subscriber_enabled.load(Ordering::Relaxed)
    }

    /// Whether metric recording is on (default: yes).
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_enabled.load(Ordering::Relaxed)
    }

    /// Kills or revives metric recording (histogram/counter updates at
    /// instrumentation sites that honor the flag).
    pub fn set_metrics_enabled(&self, on: bool) {
        self.metrics_enabled.store(on, Ordering::Relaxed);
    }

    /// Installs (or removes, with `None`) the subscriber.
    pub fn set_subscriber(&self, subscriber: Option<Arc<dyn Subscriber>>) {
        let mut slot = self.subscriber.write();
        self.subscriber_enabled
            .store(subscriber.is_some(), Ordering::Relaxed);
        *slot = subscriber;
    }

    /// Dispatches an already-built event to the subscriber, if any.
    pub fn emit(&self, event: &Event) {
        if !self.enabled() {
            return;
        }
        if let Some(sub) = self.subscriber.read().as_ref() {
            sub.event(event);
        }
    }

    /// Builds and dispatches an event **only when enabled** — with no
    /// subscriber the closure never runs and nothing allocates.
    #[inline]
    pub fn event(
        &self,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.emit(&Event {
            name,
            fields: fields(),
        });
    }

    /// Opens a timed span guard: on drop it records its duration (µs)
    /// into the histogram set by [`Span::observe`] and emits a
    /// `name{…, us=…}` event when a subscriber is installed.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            obs: self,
            name,
            sw: Stopwatch::start(),
            hist: None,
            fields: Vec::new(),
        }
    }
}

/// A live span: a stopwatch plus structured fields, closed by `Drop`.
/// Fields are only collected while a subscriber is installed.
#[must_use = "a span measures the scope it is held for"]
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    name: &'static str,
    sw: Stopwatch,
    hist: Option<Histogram>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span<'_> {
    /// Attaches a structured field (dropped unless a subscriber is
    /// installed, so producers can annotate unconditionally).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if self.obs.enabled() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Also records the span's duration (µs) into `hist` on drop,
    /// honoring the hub's metrics kill switch.
    pub fn observe(mut self, hist: &Histogram) -> Self {
        if self.obs.metrics_enabled() {
            self.hist = Some(hist.clone());
        }
        self
    }

    /// Elapsed time so far, in nanoseconds.
    pub fn elapsed_nanos(&self) -> u64 {
        self.sw.elapsed_nanos()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let us = self.sw.elapsed_us();
        if let Some(h) = &self.hist {
            h.record(us);
        }
        if self.obs.enabled() {
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("us", FieldValue::U64(us)));
            self.obs.emit(&Event {
                name: self.name,
                fields,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_name_and_fields() {
        let e = Event {
            name: "optimizer.rule",
            fields: vec![
                ("rule", FieldValue::from("push-select")),
                ("delta", FieldValue::from(-12.0f64)),
                ("pass", FieldValue::from(3usize)),
            ],
        };
        assert_eq!(
            e.render(),
            "optimizer.rule{rule=push-select, delta=-12.000, pass=3}"
        );
        assert_eq!(
            Event {
                name: "tick",
                fields: vec![]
            }
            .render(),
            "tick"
        );
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let ring = RingBufferSink::new(2);
        assert!(ring.is_empty());
        for i in 0..3 {
            ring.event(&Event {
                name: "e",
                fields: vec![("i", FieldValue::U64(i))],
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(
            ring.events(),
            vec!["e{i=1}".to_owned(), "e{i=2}".to_owned()]
        );
    }

    #[test]
    fn disabled_hub_drops_events_and_closure_never_runs() {
        let obs = Obs::new();
        assert!(!obs.enabled());
        let mut ran = false;
        obs.event("never", || {
            ran = true;
            vec![]
        });
        assert!(!ran, "field closure must not run with no subscriber");
    }

    #[test]
    fn subscriber_receives_span_and_event() {
        let obs = Obs::new();
        let ring = Arc::new(RingBufferSink::new(8));
        obs.set_subscriber(Some(ring.clone()));
        assert!(obs.enabled());
        obs.event("one", || vec![("k", FieldValue::from("v"))]);
        {
            let _span = obs.span("work").field("rows", 7u64);
        }
        let events = ring.events();
        assert_eq!(events[0], "one{k=v}");
        assert!(events[1].starts_with("work{rows=7, us="), "{}", events[1]);
        obs.set_subscriber(None);
        obs.event("two", Vec::new);
        assert_eq!(ring.len(), 2, "uninstalled subscriber gets nothing");
    }

    #[test]
    fn span_observe_records_into_histogram_honoring_kill_switch() {
        let obs = Obs::new();
        let h = obs.registry().histogram("work.us");
        {
            let _s = obs.span("work").observe(&h);
        }
        assert_eq!(h.summarize().count, 1);
        obs.set_metrics_enabled(false);
        {
            let _s = obs.span("work").observe(&h);
        }
        assert_eq!(h.summarize().count, 1, "killed metrics record nothing");
    }
}
