//! Property-based tests for the NF² core model.
//!
//! These encode the paper's theorems as executable laws over randomly
//! generated relations:
//!
//! * Theorem 1 — `R*` is invariant under composition/decomposition;
//! * Theorem 2 — the nest fixpoint is unique regardless of composition
//!   order;
//! * Def. 5 — canonical forms are irreducible;
//! * §4 — incremental insert/delete equals re-nesting from scratch;
//! * Theorem 5 — a canonical form is fixed on all attributes but the
//!   first-nested one;
//! * D1 — every public operation preserves the partition invariant.

use proptest::prelude::*;

use nf2_core::irreducible::{is_irreducible, reduce, ReduceStrategy};
use nf2_core::maintenance::{CanonicalRelation, CostCounter};
use nf2_core::nest::{canonical_of_flat, nest, nest_pairwise, unnest};
use nf2_core::properties::is_fixed_on;
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::value::Atom;
use std::sync::Arc;

/// A random small flat relation: arity 2–4, values per attribute 1–4,
/// up to 24 rows.
fn arb_flat() -> impl Strategy<Value = FlatRelation> {
    (2usize..=4)
        .prop_flat_map(|arity| {
            let row = proptest::collection::vec(0u32..4, arity);
            proptest::collection::vec(row, 0..24).prop_map(move |rows| (arity, rows))
        })
        .prop_map(|(arity, rows)| {
            let names: Vec<String> = (0..arity).map(|i| format!("E{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let schema = Schema::new("R", &name_refs).unwrap();
            FlatRelation::from_rows(
                schema,
                rows.into_iter().map(|r| {
                    r.into_iter()
                        .enumerate()
                        // Offset values per attribute so domains are disjoint,
                        // mirroring distinct simple domains.
                        .map(|(i, v)| Atom(v + 10 * i as u32))
                        .collect::<Vec<Atom>>()
                }),
            )
            .unwrap()
        })
}

/// A random nest order for a given arity, as a seed-driven permutation.
fn order_from_seed(arity: usize, seed: u64) -> NestOrder {
    let all = NestOrder::all(arity);
    all[(seed as usize) % all.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1: nesting never changes the underlying 1NF relation.
    #[test]
    fn nest_preserves_expansion(flat in arb_flat(), attr_seed in 0usize..4, seed in any::<u64>()) {
        let attr = attr_seed % flat.schema().arity();
        let base = NfRelation::from_flat(&flat);
        let nested = nest(&base, attr);
        prop_assert_eq!(nested.expand(), flat.clone());
        let order = order_from_seed(flat.schema().arity(), seed);
        let canon = canonical_of_flat(&flat, &order);
        prop_assert_eq!(canon.expand(), flat);
    }

    /// Theorem 1 (other direction): unnest restores singleton granularity
    /// without changing R*.
    #[test]
    fn unnest_preserves_expansion(flat in arb_flat(), attr_seed in 0usize..4, seed in any::<u64>()) {
        let attr = attr_seed % flat.schema().arity();
        let order = order_from_seed(flat.schema().arity(), seed);
        let canon = canonical_of_flat(&flat, &order);
        let un = unnest(&canon, attr);
        prop_assert!(un.validate().is_ok());
        prop_assert_eq!(un.expand(), flat);
    }

    /// Theorem 2: the ν_E fixpoint does not depend on the order in which
    /// composable pairs are merged.
    #[test]
    fn theorem2_nest_fixpoint_unique(flat in arb_flat(), attr_seed in 0usize..4, seed in any::<u64>()) {
        let attr = attr_seed % flat.schema().arity();
        let base = NfRelation::from_flat(&flat);
        let expected = nest(&base, attr);
        let mut state = seed | 1;
        let random_pick = move |k: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize % k
        };
        prop_assert_eq!(nest_pairwise(&base, attr, random_pick), expected);
    }

    /// Canonical forms are irreducible (claim inside Def. 5: "it is easy
    /// to show that VP(R) is irreducible").
    #[test]
    fn canonical_forms_are_irreducible(flat in arb_flat(), seed in any::<u64>()) {
        let order = order_from_seed(flat.schema().arity(), seed);
        let canon = canonical_of_flat(&flat, &order);
        prop_assert!(is_irreducible(&canon));
        prop_assert!(canon.validate().is_ok());
    }

    /// Every reduction strategy reaches an irreducible form with the same
    /// R* (Def. 3), and never more tuples than the flat relation.
    #[test]
    fn reductions_reach_irreducible_forms(flat in arb_flat(), seed in any::<u64>()) {
        let base = NfRelation::from_flat(&flat);
        for strategy in [
            ReduceStrategy::FirstFit,
            ReduceStrategy::Random(seed),
            ReduceStrategy::GreedyLargest,
        ] {
            let r = reduce(&base, strategy);
            prop_assert!(is_irreducible(&r));
            prop_assert!(r.validate().is_ok());
            prop_assert_eq!(r.expand(), flat.clone());
            prop_assert!(r.tuple_count() <= flat.len());
        }
    }

    /// §4 insertion: building a canonical relation row by row equals
    /// nesting the final 1NF relation from scratch — for every nest order.
    #[test]
    fn incremental_insert_matches_oracle(flat in arb_flat(), seed in any::<u64>()) {
        let order = order_from_seed(flat.schema().arity(), seed);
        let mut canon = CanonicalRelation::new(flat.schema().clone(), order.clone()).unwrap();
        for r in flat.rows() {
            prop_assert!(canon.insert(r.clone()).unwrap());
        }
        let oracle = canonical_of_flat(&flat, &order);
        prop_assert_eq!(canon.relation(), &oracle);
        prop_assert!(canon.verify().is_ok());
    }

    /// §4 deletion: deleting a random subset incrementally equals nesting
    /// the remaining rows from scratch.
    #[test]
    fn incremental_delete_matches_oracle(
        flat in arb_flat(),
        seed in any::<u64>(),
        keep_mask in any::<u64>(),
    ) {
        let order = order_from_seed(flat.schema().arity(), seed);
        let mut canon = CanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let mut remaining = FlatRelation::new(flat.schema().clone());
        for (i, r) in flat.rows().enumerate() {
            if keep_mask & (1 << (i % 64)) != 0 {
                remaining.insert(r.clone()).unwrap();
            } else {
                prop_assert!(canon.delete(r).unwrap());
            }
        }
        let oracle = canonical_of_flat(&remaining, &order);
        prop_assert_eq!(canon.relation(), &oracle);
    }

    /// Theorem 5: the canonical form is fixed on every attribute set that
    /// excludes the first-nested attribute — in particular on U − E_first.
    #[test]
    fn theorem5_fixed_on_complement_of_first_nested(flat in arb_flat(), seed in any::<u64>()) {
        let arity = flat.schema().arity();
        let order = order_from_seed(arity, seed);
        let canon = canonical_of_flat(&flat, &order);
        let rest: Vec<usize> = (0..arity).filter(|&a| a != order.attr_at(0)).collect();
        prop_assert!(
            is_fixed_on(&canon, &rest),
            "canonical for {} must be fixed on {:?}",
            order,
            rest
        );
    }

    /// Mixed random workload equivalence, the strongest §4 law: any
    /// interleaving of inserts and deletes tracks the from-scratch oracle.
    #[test]
    fn mixed_workload_matches_oracle(
        flat in arb_flat(),
        ops in proptest::collection::vec((any::<bool>(), proptest::collection::vec(0u32..4, 4)), 0..30),
        seed in any::<u64>(),
    ) {
        let arity = flat.schema().arity();
        let order = order_from_seed(arity, seed);
        let mut canon = CanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let mut shadow = flat.clone();
        for (is_insert, raw) in ops {
            let row: Vec<Atom> = raw
                .iter()
                .take(arity)
                .enumerate()
                .map(|(i, &v)| Atom(v + 10 * i as u32))
                .collect();
            if is_insert {
                let expected = !shadow.contains(&row);
                prop_assert_eq!(canon.insert(row.clone()).unwrap(), expected);
                shadow.insert(row).unwrap();
            } else {
                let expected = shadow.contains(&row);
                prop_assert_eq!(canon.delete(&row).unwrap(), expected);
                shadow.remove(&row);
            }
        }
        prop_assert_eq!(canon.relation(), &canonical_of_flat(&shadow, &order));
    }

    /// Cost counters are monotone and structural ops stay plausibly
    /// bounded by the Theorem A-4 budget (loose sanity bound: exponential
    /// in arity, never proportional to rows).
    #[test]
    fn costs_bounded_by_degree_budget(flat in arb_flat(), seed in any::<u64>()) {
        let arity = flat.schema().arity();
        let order = order_from_seed(arity, seed);
        let mut canon = CanonicalRelation::new(flat.schema().clone(), order).unwrap();
        let mut worst = 0u64;
        for r in flat.rows() {
            let mut cost = CostCounter::new();
            canon.insert_counted(r.clone(), &mut cost).unwrap();
            worst = worst.max(cost.structural_ops());
        }
        // Theorem A-4: ops bounded by a function of arity alone. With
        // arity ≤ 4 and domains of 4 values the observed worst case is far
        // below this loose budget; what matters is it cannot scale with
        // rows (24 max here, bound stays fixed as row count grows).
        let budget = 3u64.saturating_pow(arity as u32 + 2);
        prop_assert!(worst <= budget, "worst {} exceeds degree budget {}", worst, budget);
    }

    /// Bulk maintenance: applying a random op stream incrementally, via
    /// the auto strategy, and via the re-nest baseline all land on the
    /// same canonical relation (and it verifies).
    #[test]
    fn bulk_strategies_agree(
        flat in arb_flat(),
        raw_ops in proptest::collection::vec((any::<bool>(), proptest::collection::vec(0u32..4, 4)), 0..30),
        seed in any::<u64>(),
    ) {
        use nf2_core::bulk::{apply_batch, apply_batch_auto, rebuild_batch, Op};
        let arity = flat.schema().arity();
        let order = order_from_seed(arity, seed);
        let base = CanonicalRelation::from_flat(&flat, order).unwrap();
        let ops: Vec<Op> = raw_ops
            .into_iter()
            .map(|(is_insert, vals)| {
                let row: Vec<Atom> = vals
                    .into_iter()
                    .take(arity)
                    .enumerate()
                    .map(|(i, v)| Atom(v + 10 * i as u32))
                    .collect();
                if is_insert { Op::Insert(row) } else { Op::Delete(row) }
            })
            .collect();

        let mut incremental = base.clone();
        let mut cost = CostCounter::new();
        let s1 = apply_batch(&mut incremental, &ops, &mut cost).unwrap();
        incremental.verify().unwrap();

        let mut auto = base.clone();
        let mut cost2 = CostCounter::new();
        let (s2, _) = apply_batch_auto(&mut auto, &ops, &mut cost2).unwrap();

        let rebuilt = rebuild_batch(&base, &ops).unwrap();

        prop_assert_eq!(incremental.relation(), auto.relation());
        prop_assert_eq!(incremental.relation(), rebuilt.relation());
        prop_assert_eq!(s1, s2, "summaries agree across strategies");
    }

    /// `modify` is exactly delete-then-insert, and never touches the
    /// relation when the old row is absent.
    #[test]
    fn modify_matches_delete_insert(
        flat in arb_flat(),
        old_vals in proptest::collection::vec(0u32..4, 4),
        new_vals in proptest::collection::vec(0u32..4, 4),
        seed in any::<u64>(),
    ) {
        use nf2_core::bulk::modify;
        let arity = flat.schema().arity();
        let order = order_from_seed(arity, seed);
        let row = |vals: &[u32]| -> Vec<Atom> {
            vals.iter().take(arity).enumerate().map(|(i, &v)| Atom(v + 10 * i as u32)).collect()
        };
        let (old, new) = (row(&old_vals), row(&new_vals));
        let base = CanonicalRelation::from_flat(&flat, order).unwrap();

        let mut via_modify = base.clone();
        let mut cost = CostCounter::new();
        let hit = modify(&mut via_modify, &old, new.clone(), &mut cost).unwrap();

        let mut via_ops = base.clone();
        if via_ops.contains(&old) {
            prop_assert!(hit);
            via_ops.delete(&old).unwrap();
            via_ops.insert(new).unwrap();
        } else {
            prop_assert!(!hit);
        }
        prop_assert_eq!(via_modify.relation(), via_ops.relation());
        via_modify.verify().unwrap();
    }
}

/// Build of Arc<Schema> must be cheap to clone across relations — sanity
/// compile-time usage of shared schemas in tests.
#[test]
fn shared_schema_across_relations() {
    let schema = Schema::new("R", &["A", "B"]).unwrap();
    let f1 = FlatRelation::new(schema.clone());
    let f2 = FlatRelation::new(schema.clone());
    assert!(Arc::ptr_eq(f1.schema(), f2.schema()));
}
